"""The multi-tier mediation cache (plan / static / rewrite tiers).

One :class:`MediationCache` instance rides inside a
:class:`~repro.mediator.engine.MediationEngine` and owns

* **tier 1 — plans**: fragmentation plans memoized by (canonical PIQL
  text, schema epoch);
* **tier 2 — static**: :class:`~repro.analysis.plancheck.PlanVerdict`
  objects memoized by (plan fingerprint, schema epoch) — a cached
  ``REFUSE`` is replayed identically, which is sound because refusals
  are final (PR 2's invariant) and the fingerprint already pins the
  policy epoch they were decided under;
* **tier 2b — rewrites**: per-source dry-run outcomes, shared with the
  :class:`~repro.analysis.plancheck.PlanAnalyzer` so distinct plans
  touching the same (source, fragment, principal, policy-version) reuse
  the per-source interpretation;
* the **epoch registry** driving tier 3 (the warehouse answer cache) —
  see :mod:`repro.cache.epochs` for the invalidation model.

The one invariant this layer must never weaken: **caching never bypasses
auditing**.  The engine runs ``SequenceGuard.check`` and appends to
``MediatorHistory`` around the cache, not behind it — a cache hit is
charged exactly like a miss.  The cache only ever skips *recomputation*,
never *accounting*; the differential property test in
``tests/cache/test_differential.py`` holds cached and uncached runs to
byte-identical answers, refusals, and history.
"""

from __future__ import annotations

import threading
import time

from repro.cache.epochs import EpochRegistry
from repro.cache.lru import DEFAULT_MAX_ENTRIES, LRUCache
from repro.errors import CacheError
from repro.telemetry import NOOP

#: Epoch names (requester epochs are per-name, see ``requester_key``).
POLICY_EPOCH = "policy"
SCHEMA_EPOCH = "schema"


class MediationCache:
    """Tiers + epochs + probe-novelty tracking for one engine."""

    def __init__(self, max_entries=DEFAULT_MAX_ENTRIES, ttl=None,
                 clock=time.monotonic, max_probe_signatures=512,
                 telemetry=None):
        self._lock = threading.Lock()
        self._telemetry = telemetry or NOOP
        self.plans = LRUCache("plan", max_entries=max_entries, ttl=ttl,
                              clock=clock, telemetry=self._telemetry)
        self.static = LRUCache("static", max_entries=max_entries, ttl=ttl,
                               clock=clock, telemetry=self._telemetry)
        # Rewrite outcomes are per (plan, source): give the tier room for
        # a few sources per cached plan before LRU pressure sets in.
        self.rewrites = LRUCache("rewrite", max_entries=max_entries * 4,
                                 ttl=ttl, clock=clock,
                                 telemetry=self._telemetry)
        self.epochs = EpochRegistry()
        self.epochs.events = self._telemetry.events
        self.max_probe_signatures = max_probe_signatures
        self._probes = {}  # requester → set of seen aggregate probe sigs

    # -- telemetry wiring ----------------------------------------------------

    @property
    def telemetry(self):
        return self._telemetry

    @telemetry.setter
    def telemetry(self, value):
        """Propagate the engine's shared telemetry into every tier.

        The epoch registry gets the event log too, so every bump emits
        ``cache.epoch_bump`` into the deployment's stream (which is
        what lets the persistence sink and observatory subscribe
        instead of polling).
        """
        with self._lock:
            self._telemetry = value
            for tier in (self.plans, self.static, self.rewrites):
                tier.telemetry = value
            self.epochs.events = value.events

    # -- tier 1: fragmentation plans ----------------------------------------

    def plan_for(self, canonical, compute):
        """Memoized fragmentation; returns ``(plan, hit)``.

        Keyed by (canonical text, schema epoch): registering a source
        changes the mediated schema, so older plans become unreachable.
        """
        key = (canonical, self.epochs.current(SCHEMA_EPOCH))
        return self.plans.memoize(key, compute)

    # -- tier 2: static verdicts --------------------------------------------

    def static_verdict(self, fingerprint, compute):
        """Memoized plan-check verdict; returns ``(verdict, hit)``.

        The fingerprint pins query text, principal, and policy epoch;
        the schema epoch is added because the verdict also depends on
        *which* sources the plan fans out to.
        """
        key = (fingerprint, self.epochs.current(SCHEMA_EPOCH))
        return self.static.memoize(key, compute)

    # -- epochs (drive tier 3, the warehouse) --------------------------------

    def note_source_registered(self):
        """A source joined: plans and verdicts must recompute."""
        return self.epochs.bump(SCHEMA_EPOCH)

    def note_probe(self, requester, attributes, signature, is_aggregate):
        """Advance the requester's epoch iff their audit state advances.

        The sequence guard (and the source-side auditors behind it) only
        accumulate state on *distinct* aggregate probe signatures —
        repeating an identical probe is explicitly harmless (see
        ``SequenceGuard``), so repeats keep their cached answers, while
        a novel probe invalidates everything this requester had cached.
        Returns whether the epoch advanced.

        The per-requester signature set is bounded: when it overflows it
        is reset, which can only *over*-invalidate (a stale "novel"
        verdict), never let a genuinely novel probe go unnoticed.
        """
        if not is_aggregate:
            return False
        probe = (tuple(attributes), signature)
        with self._lock:
            seen = self._probes.setdefault(requester, set())
            if probe in seen:
                return False
            if len(seen) >= self.max_probe_signatures:
                seen.clear()
            seen.add(probe)
        epoch = self.epochs.bump(requester_key(requester))
        self._telemetry.events.emit(
            "cache.requester_epoch", requester=requester, epoch=epoch,
        )
        return True

    def restore_probe(self, requester, attributes, signature):
        """Re-seed one seen probe signature WITHOUT bumping (recovery).

        Recovery replays the persisted history to rebuild the novelty
        sets, but the epoch values those probes once bumped are
        floor-restored separately from the persisted bump records —
        re-bumping here would double-count every probe and leave the
        counters ahead of the recorded stream.  Returns whether the
        probe was new to the set.
        """
        probe = (tuple(attributes), signature)
        with self._lock:
            seen = self._probes.setdefault(requester, set())
            if probe in seen:
                return False
            if len(seen) >= self.max_probe_signatures:
                seen.clear()
            seen.add(probe)
            return True

    def requester_epoch(self, requester):
        return self.epochs.current(requester_key(requester))

    def invalidate_requester(self, requester):
        """Budget/audit state advanced out of band: drop their reuse."""
        with self._lock:
            self._probes.pop(requester, None)
        return self.epochs.bump(requester_key(requester))

    def epoch_vector(self, policy_epoch, requester):
        """The vector a tier-3 entry must match to stay servable."""
        return (
            (POLICY_EPOCH, policy_epoch),
            (SCHEMA_EPOCH, self.epochs.current(SCHEMA_EPOCH)),
            ("requester", self.requester_epoch(requester)),
        )

    # -- maintenance ---------------------------------------------------------

    def clear(self):
        """Drop every tier and all probe-novelty state; returns counts."""
        with self._lock:
            self._probes.clear()
        return {
            tier.name: tier.clear()
            for tier in (self.plans, self.static, self.rewrites)
        }

    def stats(self):
        """Per-tier stats snapshot plus the current epoch counters."""
        info = {
            tier.name: tier.snapshot()
            for tier in (self.plans, self.static, self.rewrites)
        }
        info["epochs"] = self.epochs.to_dict()
        return info

    def __repr__(self):
        return (
            f"MediationCache(plans={len(self.plans)}, "
            f"static={len(self.static)}, rewrites={len(self.rewrites)})"
        )


def requester_key(requester):
    """The epoch-counter name for one requester's auditing state."""
    return f"requester:{requester}"


def resolve_cache(cache):
    """Normalize the ``cache`` constructor argument.

    ``True``/``None`` → a fresh :class:`MediationCache` (the default);
    ``False`` → ``None`` (caching disabled; every pose recomputes); a
    :class:`MediationCache` instance passes through, which is how tests
    and benchmarks inject fake clocks and tiny capacities.
    """
    if cache is None or cache is True:
        return MediationCache()
    if cache is False:
        return None
    if isinstance(cache, MediationCache):
        return cache
    raise CacheError(
        "cache must be True, False, None, or a MediationCache, "
        f"not {type(cache).__name__}"
    )
