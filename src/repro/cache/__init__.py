"""Privacy-coherent caching for the mediation hot path.

The ROADMAP names caching as a first-class scaling lever; the catch in a
privacy-preserving integrator is that a cache is only sound when its
keys capture the *policy state* an artifact was computed under —
otherwise reuse launders a query past policies that changed in between.
This package is that key discipline, in three tiers:

* **tier 1 — plan fingerprints** (:mod:`repro.cache.fingerprint`):
  canonical PIQL + requester + role + subjects + policy epoch, hashed
  once per ``pose()``; fragmentation plans memoize behind it;
* **tier 2 — static verdicts and rewrites**
  (:mod:`repro.cache.mediation`): plan-check verdicts (including final
  REFUSEs) and per-source dry-run outcomes;
* **tier 3 — epoch-invalidated answers**: the
  :class:`~repro.mediator.warehouse.Warehouse` stores integrated
  results tagged with the epoch vector (:mod:`repro.cache.epochs`) they
  were computed under; any policy change, source registration, or
  per-requester audit-state advance makes the vector — and the entry —
  stale.

Every tier is a bounded, thread-safe :class:`~repro.cache.lru.LRUCache`
with TTL and per-tier hit/miss/eviction/invalidation stats surfaced as
``mediator.cache.*`` metrics and a ``cache`` section in the explain
ledger.  The load-bearing invariant — **caching never bypasses
auditing** — is documented in ``docs/performance.md`` and enforced by
construction: the engine's guard check, history append, and budget
charging all happen around the cache, never behind it.
"""

from __future__ import annotations

from repro.cache.epochs import EpochRegistry
from repro.cache.fingerprint import canonical_piql, plan_fingerprint
from repro.cache.lru import DEFAULT_MAX_ENTRIES, CacheStats, LRUCache
from repro.cache.mediation import (
    POLICY_EPOCH,
    SCHEMA_EPOCH,
    MediationCache,
    requester_key,
    resolve_cache,
)

__all__ = [
    "CacheStats",
    "DEFAULT_MAX_ENTRIES",
    "EpochRegistry",
    "LRUCache",
    "MediationCache",
    "POLICY_EPOCH",
    "SCHEMA_EPOCH",
    "canonical_piql",
    "plan_fingerprint",
    "requester_key",
    "resolve_cache",
]
