"""Privacy and utility metrics.

Section 4 calls for "reliable metrics for quantifying privacy loss …
probabilistic notions of conditional loss, such as decreasing the range of
values an item could have", plus established anonymity measures, and
Section 2 cites Duncan's R-U confidentiality map.  This package provides:

* :mod:`repro.metrics.privacy_loss` — interval-shrink loss, entropy loss,
  disclosure risk;
* :mod:`repro.metrics.information_loss` — generalization precision loss,
  discernibility, suppression ratio, perturbation distortion;
* :mod:`repro.metrics.ru_map` — risk–utility points and frontier.
"""

from repro.metrics.privacy_loss import (
    disclosure_risk,
    entropy_loss,
    interval_shrink_loss,
)
from repro.metrics.information_loss import (
    discernibility,
    distortion,
    generalization_precision_loss,
    suppression_ratio,
)
from repro.metrics.ru_map import RUPoint, ru_frontier

__all__ = [
    "interval_shrink_loss",
    "entropy_loss",
    "disclosure_risk",
    "generalization_precision_loss",
    "discernibility",
    "suppression_ratio",
    "distortion",
    "RUPoint",
    "ru_frontier",
]
