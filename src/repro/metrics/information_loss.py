"""Information-loss (utility) metrics for privacy transformations."""

from __future__ import annotations

import math

from repro.errors import ReproError


def generalization_precision_loss(node, hierarchies):
    """Sweeney's Prec loss of a lattice node: mean of level/height.

    0 for raw data, 1 for full suppression of every quasi-identifier.
    """
    if len(node) != len(hierarchies):
        raise ReproError("node arity must match hierarchies")
    ratios = []
    for level, hierarchy in zip(node, hierarchies):
        if hierarchy.height == 0:
            ratios.append(0.0)
        else:
            ratios.append(level / hierarchy.height)
    return sum(ratios) / len(ratios)


def discernibility(released_records, quasi_identifiers, suppressed=0, total=None):
    """The discernibility metric DM.

    Each released record costs the size of its equivalence class; each
    suppressed record costs the full table size.  Lower is better.
    """
    from repro.anonymity.kanonymity import equivalence_classes

    released_records = list(released_records)
    total = total if total is not None else len(released_records) + suppressed
    cost = sum(
        len(members) ** 2
        for members in equivalence_classes(
            released_records, quasi_identifiers
        ).values()
    )
    return cost + suppressed * total


def suppression_ratio(n_suppressed, n_total):
    """Fraction of records suppressed by a release."""
    if n_total <= 0:
        raise ReproError("total record count must be positive")
    if not 0 <= n_suppressed <= n_total:
        raise ReproError("suppressed count out of range")
    return n_suppressed / n_total


def distortion(original_values, perturbed_values, relative=True):
    """Root-mean-square distortion between two value sequences.

    With ``relative=True`` the RMSE is normalized by the original values'
    standard deviation, making results comparable across columns.
    """
    original = list(original_values)
    perturbed = list(perturbed_values)
    if len(original) != len(perturbed):
        raise ReproError("value sequences must have equal length")
    if not original:
        raise ReproError("cannot compute distortion of empty sequences")
    mse = sum((o - p) ** 2 for o, p in zip(original, perturbed)) / len(original)
    rmse = math.sqrt(mse)
    if not relative:
        return rmse
    mean = sum(original) / len(original)
    variance = sum((o - mean) ** 2 for o in original) / len(original)
    sigma = math.sqrt(variance)
    if sigma == 0:
        return 0.0 if rmse == 0 else float("inf")
    return rmse / sigma
