"""Privacy-loss metrics.

The paper asks for probabilistic, non-boolean loss notions: the canonical
one here is *interval shrink* — how much a release narrows the range an
adversary can place a confidential value in.  Loss 0 means the adversary
learned nothing beyond the prior; loss 1 means the value is pinned exactly.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ReproError
from repro.kernels import use_scalar_kernels


def compound_loss(losses):
    """Aggregated loss of integrating several releases: ``1 - Π(1 - l_i)``.

    The paper's §5 independent-evidence model: each release independently
    narrows the adversary's uncertainty, so the survival probabilities
    multiply.  ``losses`` is an iterable of per-source losses in [0, 1].
    """
    combined = 1.0
    for loss in losses:
        if not 0.0 <= loss <= 1.0:
            raise ReproError(f"per-source loss out of range: {loss}")
        combined *= 1.0 - loss
    return 1.0 - combined


def budget_fixed_point(per_source_loss, budgets, tolerance=1e-9):
    """Withhold budget-violating sources until the aggregate fits.

    The mediator's §5 enforcement loop, extracted as a pure function so
    the runtime :class:`~repro.mediator.control.PrivacyControl` and the
    static plan analyzer (:mod:`repro.analysis.plancheck`) provably apply
    the *same* fixed point.  Starting from every source in
    ``per_source_loss``, repeatedly drop the highest-loss source whose
    granted budget (``budgets[source]``, default 1.0) is exceeded by the
    aggregated loss of the remaining set, until no budget is violated.

    Returns ``(participating, aggregated, withheld)`` where
    ``participating`` maps the surviving sources to their losses,
    ``aggregated`` is their compound loss (0.0 when none survive), and
    ``withheld`` lists ``(source, aggregated_at_withholding, budget)``
    tuples in withholding order.

    The default implementation iterates a vectorized convergence mask
    over ndarray losses/budgets; ``REPRO_SCALAR_KERNELS=1`` selects the
    scalar reference loop the differential tests pin it against.
    """
    if use_scalar_kernels() or len(per_source_loss) < 2:
        return _budget_fixed_point_scalar(per_source_loss, budgets, tolerance)

    names = list(per_source_loss)
    # Range validation through the scalar reference itself, so an
    # out-of-range loss raises the byte-identical error (first offender
    # in name order) from the same function either way.
    compound_loss(per_source_loss[name] for name in names)
    losses = np.asarray([per_source_loss[name] for name in names], dtype=float)
    granted = np.asarray([budgets.get(name, 1.0) for name in names], dtype=float)
    # Withholding priority is fixed up front — losses never change, so the
    # "highest (loss, name) violator" order can be precomputed once.
    priority = sorted(range(len(names)),
                      key=lambda i: (losses[i], names[i]), reverse=True)

    active = np.ones(len(names), dtype=bool)  # the convergence mask
    withheld = []
    while True:
        aggregated = float(1.0 - np.prod(1.0 - losses[active]))
        violated = active & (aggregated > granted + tolerance)
        if not violated.any():
            break
        # Withhold the highest-loss violating source first and recheck:
        # removing one release may bring the aggregate within the
        # remaining sources' budgets.
        worst = next(i for i in priority if violated[i])
        withheld.append((names[worst], aggregated, float(granted[worst])))
        active[worst] = False
        if not active.any():
            break
    if active.any():
        aggregated = float(1.0 - np.prod(1.0 - losses[active]))
    else:
        aggregated = 0.0
    participating = {
        name: per_source_loss[name]
        for i, name in enumerate(names)
        if active[i]
    }
    return participating, aggregated, withheld


def _budget_fixed_point_scalar(per_source_loss, budgets, tolerance):
    """Scalar reference for :func:`budget_fixed_point` (kept verbatim)."""
    participating = dict(per_source_loss)
    withheld = []
    while True:
        aggregated = compound_loss(participating.values())
        violated = [
            source
            for source in sorted(participating)
            if aggregated > budgets.get(source, 1.0) + tolerance
        ]
        if not violated:
            break
        worst = max(violated, key=lambda s: (participating[s], s))
        withheld.append((worst, aggregated, budgets.get(worst, 1.0)))
        del participating[worst]
        if not participating:
            break
    aggregated = compound_loss(participating.values()) if participating else 0.0
    return participating, aggregated, withheld


def interval_shrink_loss(prior_interval, posterior_interval):
    """1 - posterior width / prior width, clipped to [0, 1].

    ``prior_interval`` is the range the adversary could assume before the
    release (e.g. (0, 100) for a percentage); ``posterior_interval`` the
    inferred feasibility interval afterwards.
    """
    prior_low, prior_high = prior_interval
    post_low, post_high = posterior_interval
    prior_width = prior_high - prior_low
    post_width = post_high - post_low
    if prior_width <= 0:
        raise ReproError("prior interval must have positive width")
    if post_width < 0:
        raise ReproError("posterior interval is inverted")
    return min(1.0, max(0.0, 1.0 - post_width / prior_width))


def aggregate_interval_loss(prior_interval, posterior_intervals):
    """Worst-case (max) interval-shrink loss over many cells.

    This is the mediator's aggregated privacy loss for a release: the
    privacy of the release is only as good as its most-exposed cell.
    """
    if not posterior_intervals:
        return 0.0
    return max(
        interval_shrink_loss(prior_interval, interval)
        for interval in posterior_intervals
    )


def entropy_loss(prior_probabilities, posterior_probabilities):
    """Normalized entropy reduction between two belief distributions.

    Both arguments are probability vectors over the same candidate values.
    Returns ``(H_prior - H_post) / H_prior`` in [0, 1]; 1 when the
    posterior is a point mass.  A uniform prior gives the classic
    "bits revealed / bits available" reading.
    """
    h_prior = _entropy(prior_probabilities)
    h_post = _entropy(posterior_probabilities)
    if h_prior <= 0:
        raise ReproError("prior distribution has zero entropy")
    return min(1.0, max(0.0, (h_prior - h_post) / h_prior))


def disclosure_risk(released_records, quasi_identifiers):
    """Expected re-identification risk of a release: mean of 1/|class|.

    The standard prosecutor-model risk: a record in an equivalence class of
    size ``s`` is re-identified with probability ``1/s``.
    """
    from repro.anonymity.kanonymity import equivalence_classes

    released_records = list(released_records)
    if not released_records:
        return 0.0
    classes = equivalence_classes(released_records, quasi_identifiers)
    total = sum(len(members) * (1.0 / len(members)) for members in classes.values())
    return total / len(released_records)


def _entropy(probabilities):
    probabilities = list(probabilities)
    if not probabilities:
        raise ReproError("empty distribution")
    total = sum(probabilities)
    if total <= 0 or any(p < 0 for p in probabilities):
        raise ReproError("probabilities must be non-negative and sum > 0")
    return -sum(
        (p / total) * math.log2(p / total) for p in probabilities if p > 0
    )
