"""Privacy-loss metrics.

The paper asks for probabilistic, non-boolean loss notions: the canonical
one here is *interval shrink* — how much a release narrows the range an
adversary can place a confidential value in.  Loss 0 means the adversary
learned nothing beyond the prior; loss 1 means the value is pinned exactly.
"""

from __future__ import annotations

import math

from repro.errors import ReproError


def interval_shrink_loss(prior_interval, posterior_interval):
    """1 - posterior width / prior width, clipped to [0, 1].

    ``prior_interval`` is the range the adversary could assume before the
    release (e.g. (0, 100) for a percentage); ``posterior_interval`` the
    inferred feasibility interval afterwards.
    """
    prior_low, prior_high = prior_interval
    post_low, post_high = posterior_interval
    prior_width = prior_high - prior_low
    post_width = post_high - post_low
    if prior_width <= 0:
        raise ReproError("prior interval must have positive width")
    if post_width < 0:
        raise ReproError("posterior interval is inverted")
    return min(1.0, max(0.0, 1.0 - post_width / prior_width))


def aggregate_interval_loss(prior_interval, posterior_intervals):
    """Worst-case (max) interval-shrink loss over many cells.

    This is the mediator's aggregated privacy loss for a release: the
    privacy of the release is only as good as its most-exposed cell.
    """
    if not posterior_intervals:
        return 0.0
    return max(
        interval_shrink_loss(prior_interval, interval)
        for interval in posterior_intervals
    )


def entropy_loss(prior_probabilities, posterior_probabilities):
    """Normalized entropy reduction between two belief distributions.

    Both arguments are probability vectors over the same candidate values.
    Returns ``(H_prior - H_post) / H_prior`` in [0, 1]; 1 when the
    posterior is a point mass.  A uniform prior gives the classic
    "bits revealed / bits available" reading.
    """
    h_prior = _entropy(prior_probabilities)
    h_post = _entropy(posterior_probabilities)
    if h_prior <= 0:
        raise ReproError("prior distribution has zero entropy")
    return min(1.0, max(0.0, (h_prior - h_post) / h_prior))


def disclosure_risk(released_records, quasi_identifiers):
    """Expected re-identification risk of a release: mean of 1/|class|.

    The standard prosecutor-model risk: a record in an equivalence class of
    size ``s`` is re-identified with probability ``1/s``.
    """
    from repro.anonymity.kanonymity import equivalence_classes

    released_records = list(released_records)
    if not released_records:
        return 0.0
    classes = equivalence_classes(released_records, quasi_identifiers)
    total = sum(len(members) * (1.0 / len(members)) for members in classes.values())
    return total / len(released_records)


def _entropy(probabilities):
    probabilities = list(probabilities)
    if not probabilities:
        raise ReproError("empty distribution")
    total = sum(probabilities)
    if total <= 0 or any(p < 0 for p in probabilities):
        raise ReproError("probabilities must be non-negative and sum > 0")
    return -sum(
        (p / total) * math.log2(p / total) for p in probabilities if p > 0
    )
