"""The R-U confidentiality map (Duncan et al.).

A release strategy (e.g. "add noise with scale σ") traces a curve of
(disclosure Risk, data Utility) points as its parameter sweeps; the map
makes the privacy/utility trade-off explicit and lets a data steward pick
an operating point.  Benchmark A5 regenerates this map for the
perturbation substrate.
"""

from __future__ import annotations

from repro.errors import ReproError


class RUPoint:
    """One (risk, utility) operating point, tagged with its parameter."""

    __slots__ = ("parameter", "risk", "utility")

    def __init__(self, parameter, risk, utility):
        if not 0.0 <= risk <= 1.0:
            raise ReproError(f"risk must be in [0, 1], got {risk}")
        self.parameter = parameter
        self.risk = risk
        self.utility = utility

    def __repr__(self):
        return f"RUPoint(param={self.parameter}, R={self.risk:.3f}, U={self.utility:.3f})"

    def __eq__(self, other):
        return (
            isinstance(other, RUPoint)
            and (self.parameter, self.risk, self.utility)
            == (other.parameter, other.risk, other.utility)
        )


def ru_frontier(points):
    """The Pareto frontier of an R-U sweep.

    A point is on the frontier when no other point has both lower risk and
    higher (or equal) utility.  Returned sorted by increasing risk.
    """
    points = list(points)
    frontier = []
    for candidate in points:
        dominated = any(
            other.risk < candidate.risk and other.utility >= candidate.utility
            for other in points
        ) or any(
            other.risk <= candidate.risk and other.utility > candidate.utility
            for other in points
        )
        if not dominated:
            frontier.append(candidate)
    return sorted(frontier, key=lambda p: (p.risk, -p.utility))


def pick_operating_point(points, max_risk):
    """Highest-utility point whose risk is within ``max_risk``.

    Returns ``None`` when no point qualifies — the steward must then
    coarsen the release rather than publish.
    """
    eligible = [p for p in points if p.risk <= max_risk]
    if not eligible:
        return None
    return max(eligible, key=lambda p: p.utility)
