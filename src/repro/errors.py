"""Exception hierarchy for the PRIVATE-IYE reproduction.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class.  Subsystems raise the most specific
subclass that applies; messages always name the offending object (query,
policy, table, ...) to keep failures diagnosable.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class XmlError(ReproError):
    """Malformed XML document or serialization failure."""


class PathError(XmlError):
    """Malformed or unsupported path expression."""


class RelationalError(ReproError):
    """Errors raised by the mini relational engine."""


class SchemaError(RelationalError):
    """Schema definition or validation failure."""


class SqlError(RelationalError):
    """Malformed SQL text or unsupported SQL construct."""


class QueryError(ReproError):
    """Malformed PIQL query or query-processing failure."""


class PolicyError(ReproError):
    """Malformed policy/preference or policy-store failure."""


class AccessDenied(ReproError):
    """An access-control rule (RBAC or MLS) denied the request."""


class PrivacyViolation(ReproError):
    """A release would violate a privacy constraint.

    Raised by the statistical-database guards, the privacy control module,
    and the source-side rewriter when a query cannot be answered at all
    within the applicable policies.
    """


class AuditRefusal(PrivacyViolation):
    """A query was refused by the sequence-of-queries auditor."""


class CryptoError(ReproError):
    """Cryptographic-primitive misuse (bad key, wrong group, ...)."""


class CacheError(ReproError):
    """Cache-layer misuse (bad capacity, bad constructor argument, ...)."""


class PersistenceError(ReproError):
    """Durability-layer failure (corrupt log, broken chain, bad backend).

    Raised by :mod:`repro.persistence` when a write-ahead log cannot be
    appended to, a stored snapshot or log fails to parse on recovery, or
    the recovered audit-journal hash chain does not verify.  Recovery
    treats every one of these as fatal: serving queries on top of
    privacy accounting that may have silently lost releases would void
    the cumulative-disclosure guarantee.
    """


class TransientSourceError(ReproError):
    """A source call failed for a *transport* reason that may heal.

    Network blips, overload shedding, worker restarts — anything where
    retrying the identical fragment is both safe and likely to succeed.
    The fan-out dispatcher retries these with exponential backoff; it
    NEVER retries a :class:`PrivacyViolation` or :class:`PathError`,
    which are final protocol answers, not faults.
    """


class SourceUnavailable(ReproError):
    """A source (or too many sources) stayed unreachable after retries.

    Raised by the fan-out dispatcher when the configured partial-results
    policy (``require_all`` or ``quorum(k)``) cannot be met: deadlines
    expired, transient faults exhausted their retry budget, or a circuit
    breaker was open.  Distinct from :class:`PrivacyViolation` — the
    sources did not *refuse*, they could not be reached.
    """


class IntegrationError(ReproError):
    """Mediation-engine failure (fragmentation, integration, matching)."""


class Refusal:
    """One source's refusal of a query fragment, with its *kind* preserved.

    The mediation engine collects these per source instead of bare
    strings so callers and explain reports can distinguish a policy
    refusal (:class:`PrivacyViolation` — the source *could* answer but
    won't) from a schema error (:class:`PathError` — the fragment doesn't
    resolve against the source at all).  ``str()`` still yields the
    reason, so message formatting over refusal maps is unchanged.
    """

    __slots__ = ("kind", "reason")

    def __init__(self, kind, reason):
        self.kind = kind
        self.reason = reason

    @classmethod
    def from_exception(cls, exc):
        """Build a refusal from the exception a source raised."""
        return cls(type(exc).__name__, str(exc))

    @property
    def is_policy(self):
        """True for privacy/policy refusals (vs schema/path errors)."""
        return self.kind in ("PrivacyViolation", "AuditRefusal",
                             "AccessDenied")

    def __str__(self):
        return self.reason

    def __repr__(self):
        return f"Refusal({self.kind}: {self.reason})"

    def __eq__(self, other):
        if isinstance(other, Refusal):
            return (self.kind, self.reason) == (other.kind, other.reason)
        if isinstance(other, str):
            return self.reason == other  # compat: refusals used to be str
        return NotImplemented

    def __hash__(self):
        return hash((self.kind, self.reason))
