"""Exception hierarchy for the PRIVATE-IYE reproduction.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class.  Subsystems raise the most specific
subclass that applies; messages always name the offending object (query,
policy, table, ...) to keep failures diagnosable.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class XmlError(ReproError):
    """Malformed XML document or serialization failure."""


class PathError(XmlError):
    """Malformed or unsupported path expression."""


class RelationalError(ReproError):
    """Errors raised by the mini relational engine."""


class SchemaError(RelationalError):
    """Schema definition or validation failure."""


class SqlError(RelationalError):
    """Malformed SQL text or unsupported SQL construct."""


class QueryError(ReproError):
    """Malformed PIQL query or query-processing failure."""


class PolicyError(ReproError):
    """Malformed policy/preference or policy-store failure."""


class AccessDenied(ReproError):
    """An access-control rule (RBAC or MLS) denied the request."""


class PrivacyViolation(ReproError):
    """A release would violate a privacy constraint.

    Raised by the statistical-database guards, the privacy control module,
    and the source-side rewriter when a query cannot be answered at all
    within the applicable policies.
    """


class AuditRefusal(PrivacyViolation):
    """A query was refused by the sequence-of-queries auditor."""


class CryptoError(ReproError):
    """Cryptographic-primitive misuse (bad key, wrong group, ...)."""


class IntegrationError(ReproError):
    """Mediation-engine failure (fragmentation, integration, matching)."""
