"""The snooping adversary of Figure 1.

:class:`PublishedAggregates` is exactly what the integrator publishes
(Figures 1(a) and 1(b)): per-measure means and standard deviations across
sources, and per-source average performance.  :class:`SnoopingSource` is a
participating source that knows its own column; :meth:`SnoopingSource.infer`
reproduces Figure 1(d) — the intervals the snooper derives for every other
source's confidential cells.
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.inference.bounds import AggregateConstraints, cell_bounds


class PublishedAggregates:
    """What the integrator releases about a measures × sources matrix."""

    def __init__(self, measures, sources, row_means, row_stds, source_means,
                 precision=1, tolerance=None):
        if len(row_means) != len(measures):
            raise ReproError("one row mean per measure required")
        if row_stds is not None and len(row_stds) != len(measures):
            raise ReproError("one row std per measure required")
        if len(source_means) != len(sources):
            raise ReproError("one average per source required")
        self.measures = list(measures)
        self.sources = list(sources)
        self.row_means = list(row_means)
        # row_stds may be None: a release that withholds the sigmas.
        self.row_stds = list(row_stds) if row_stds is not None else None
        self.source_means = list(source_means)
        self.precision = precision
        self._tolerance = tolerance

    @property
    def tolerance(self):
        """Half-width of the rounding interval of published numbers.

        Derived from ``precision`` unless an explicit ``tolerance`` was
        given (needed when values were rounded to a non-decimal base,
        e.g. nearest 5).
        """
        if self._tolerance is not None:
            return self._tolerance
        return 0.5 * 10 ** (-self.precision)

    @classmethod
    def from_matrix(cls, measures, sources, matrix, precision=1):
        """Publish (rounded) aggregates of a full data matrix.

        ``matrix[i][j]`` is measure i at source j.  Row standard deviations
        are *sample* standard deviations (ddof=1), matching Figure 1.
        """
        import math

        n_cols = len(sources)
        row_means, row_stds = [], []
        for row in matrix:
            if len(row) != n_cols:
                raise ReproError("matrix row width must match sources")
            mean = sum(row) / n_cols
            variance = sum((v - mean) ** 2 for v in row) / (n_cols - 1)
            row_means.append(round(mean, precision))
            row_stds.append(round(math.sqrt(variance), precision))
        source_means = [
            round(sum(matrix[i][j] for i in range(len(measures))) / len(measures),
                  precision)
            for j in range(n_cols)
        ]
        return cls(measures, sources, row_means, row_stds, source_means, precision)

    def table_a(self):
        """Figure 1(a): measure → (published mean, published std or None)."""
        return {
            measure: (
                self.row_means[i],
                self.row_stds[i] if self.row_stds is not None else None,
            )
            for i, measure in enumerate(self.measures)
        }

    def table_b(self):
        """Figure 1(b): source → published average performance."""
        return dict(zip(self.sources, self.source_means))


class SnoopingSource:
    """A source that knows its own column and snoops on the rest."""

    def __init__(self, published, own_source, own_values):
        if own_source not in published.sources:
            raise ReproError(f"{own_source!r} is not a published source")
        if len(own_values) != len(published.measures):
            raise ReproError("own_values must cover every measure")
        self.published = published
        self.own_source = own_source
        self.own_index = published.sources.index(own_source)
        self.own_values = list(own_values)

    def constraints(self, value_range=(0.0, 100.0)):
        """The bound problem this snooper can pose."""
        published = self.published
        column_means = {
            j: published.source_means[j]
            for j in range(len(published.sources))
            if j != self.own_index
        }
        return AggregateConstraints(
            n_rows=len(published.measures),
            n_cols=len(published.sources),
            known_columns={self.own_index: self.own_values},
            row_means=published.row_means,
            row_stds=published.row_stds,
            column_means=column_means,
            value_range=value_range,
            tolerance=published.tolerance,
        )

    def infer(self, starts=6, seed=0, value_range=(0.0, 100.0)):
        """Figure 1(d): inferred intervals per (measure, source).

        Returns ``{(measure_name, source_name): (low, high)}``.
        """
        intervals = cell_bounds(self.constraints(value_range), starts, seed)
        published = self.published
        return {
            (published.measures[i], published.sources[j]): bounds
            for (i, j), bounds in intervals.items()
        }
