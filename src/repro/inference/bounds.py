"""Per-cell feasibility intervals under aggregate constraints.

The matrix view matches Figure 1: rows are measures (tests), columns are
sources (HMOs).  Published knowledge constrains the hidden cells:

* each row's mean over **all** columns equals the published mean (within
  the rounding tolerance of the published precision);
* each row's **sample** standard deviation equals the published sigma
  (Figure 1's sigmas are sample standard deviations — the reproduced
  intervals match the paper's only under ddof=1);
* each hidden column's mean equals that source's published average
  performance;
* every cell lies in the legal value range (percentages: [0, 100]).

For each hidden cell we minimize and maximize its value over the feasible
set with SLSQP from several deterministic starts.  The interval
``[min, max]`` is what a snooper provably learns.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import minimize

from repro.errors import ReproError
from repro.kernels import use_scalar_kernels

DEFAULT_TOLERANCE = 0.05  # published to one decimal place


class AggregateConstraints:
    """The published aggregates + adversary knowledge for one bound problem.

    Parameters
    ----------
    known_columns:
        ``{column_index: [values per row]}`` — columns the adversary knows
        exactly (its own data).
    row_means, row_stds:
        Published per-row mean and *sample* standard deviation over all
        ``n_cols`` columns.  ``row_stds`` may be ``None`` (no sigmas
        published at all) or contain ``None`` entries for rows whose
        sigma has not (yet) been published — the snooper-watch replays
        partially-released workloads, where sigmas arrive one query at a
        time.
    column_means:
        ``{column_index: published average}`` for hidden columns (from the
        per-source performance table).  Columns absent from both mappings
        are unconstrained except by the value range.
    tolerance / column_tolerance:
        Half-width of the rounding interval of published numbers (0.05 for
        one-decimal publication).  ``column_tolerance`` may be a mapping
        per column for mixed precision.
    """

    def __init__(
        self,
        n_rows,
        n_cols,
        known_columns,
        row_means,
        row_stds=None,
        column_means=None,
        value_range=(0.0, 100.0),
        tolerance=DEFAULT_TOLERANCE,
        column_tolerance=None,
    ):
        if n_rows < 1 or n_cols < 2:
            raise ReproError("need at least 1 row and 2 columns")
        if len(row_means) != n_rows:
            raise ReproError("row_means length must equal n_rows")
        if row_stds is not None and len(row_stds) != n_rows:
            raise ReproError("row_stds length must equal n_rows")
        for j, column in known_columns.items():
            if not 0 <= j < n_cols:
                raise ReproError(f"known column index {j} out of range")
            if len(column) != n_rows:
                raise ReproError(f"known column {j} has wrong length")
        self.n_rows = n_rows
        self.n_cols = n_cols
        self.known_columns = {j: list(v) for j, v in known_columns.items()}
        self.row_means = list(row_means)
        self.row_stds = list(row_stds) if row_stds is not None else None
        self.column_means = dict(column_means or {})
        self.value_range = value_range
        self.tolerance = tolerance
        self.column_tolerance = dict(column_tolerance or {})

    @property
    def hidden_cells(self):
        """(row, col) pairs the adversary does not know."""
        return [
            (i, j)
            for i in range(self.n_rows)
            for j in range(self.n_cols)
            if j not in self.known_columns
        ]

    def column_tol(self, j):
        """Rounding tolerance of column j's published mean."""
        return self.column_tolerance.get(j, self.tolerance)


def cell_bounds(constraints, starts=6, seed=0):
    """Feasibility interval of every hidden cell.

    Returns ``{(row, col): (low, high)}``.  Each bound is the best of
    ``starts`` SLSQP runs from deterministic random interior points;
    infeasible problems raise :class:`~repro.errors.ReproError`.
    """
    hidden = constraints.hidden_cells
    if not hidden:
        return {}
    index_of = {cell: k for k, cell in enumerate(hidden)}
    n_vars = len(hidden)
    lo, hi = constraints.value_range
    if use_scalar_kernels():
        scipy_constraints = _build_constraints(constraints, index_of)
    else:
        scipy_constraints = _build_constraints_vector(constraints, index_of)
    bounds = [(lo, hi)] * n_vars
    rng = np.random.default_rng(seed)

    intervals = {}
    for cell in hidden:
        k = index_of[cell]
        low = _optimize(k, +1.0, scipy_constraints, bounds, rng, starts)
        high = _optimize(k, -1.0, scipy_constraints, bounds, rng, starts)
        if low is None or high is None:
            raise ReproError(
                f"bound problem infeasible for cell {cell} "
                "(published aggregates are inconsistent)"
            )
        # Multistart SLSQP can leave local optima crossed on very loose
        # problems; the ordered pair is a conservative sub-interval.
        intervals[cell] = (min(low, high), max(low, high))
    return intervals


def _optimize(var_index, sign, scipy_constraints, bounds, rng, starts):
    lo, hi = bounds[0]
    best = None
    for _ in range(starts):
        x0 = rng.uniform(lo + 0.05 * (hi - lo), hi - 0.05 * (hi - lo), len(bounds))
        result = minimize(
            lambda v: sign * v[var_index],
            x0,
            method="SLSQP",
            bounds=bounds,
            constraints=scipy_constraints,
            options={"maxiter": 300, "ftol": 1e-9},
        )
        if result.success:
            value = result.x[var_index]
            if best is None or sign * value < sign * best:
                best = value
    return best


def propagate_intervals(constraints, sweeps=32, tolerance=1e-12):
    """Cheap per-cell bounds by vectorized interval propagation (no solver).

    Sweeps the row-mean and column-mean constraints as ndarray interval
    arithmetic: each hidden cell's bound is tightened against "row sum
    must land in ``n·(μ±tol)`` given the other cells' current bounds",
    and likewise per constrained column, until a sweep changes nothing
    (convergence checked with an explicit change mask) or ``sweeps`` runs
    out.  Returns ``{(row, col): (low, high)}`` — a conservative superset
    of :func:`cell_bounds` (standard-deviation constraints are not
    propagated), computed ~1000x faster; the observatory uses it for
    always-on exposure estimates where the solver would be too slow.
    Raises :class:`~repro.errors.ReproError` when propagation proves the
    published aggregates inconsistent (an interval crosses).
    """
    hidden = constraints.hidden_cells
    if not hidden:
        return {}
    n_rows, n_cols = constraints.n_rows, constraints.n_cols
    lo, hi = constraints.value_range
    low = np.full((n_rows, n_cols), float(lo))
    high = np.full((n_rows, n_cols), float(hi))
    hidden_mask = np.ones((n_rows, n_cols), dtype=bool)
    for j, column in constraints.known_columns.items():
        low[:, j] = column
        high[:, j] = column
        hidden_mask[:, j] = False

    tol = constraints.tolerance
    row_lo = n_cols * (np.asarray(constraints.row_means, dtype=float) - tol)
    row_hi = n_cols * (np.asarray(constraints.row_means, dtype=float) + tol)
    col_ids = [
        j for j in constraints.column_means if j not in constraints.known_columns
    ]
    if col_ids:
        col_lo = np.asarray([
            n_rows * (constraints.column_means[j] - constraints.column_tol(j))
            for j in col_ids
        ])
        col_hi = np.asarray([
            n_rows * (constraints.column_means[j] + constraints.column_tol(j))
            for j in col_ids
        ])

    for _ in range(sweeps):
        previous_low, previous_high = low.copy(), high.copy()
        # Row sums: v_ij >= row_lo_i - Σ_{k≠j} high_ik (and dually).
        row_high_sum = high.sum(axis=1, keepdims=True)
        row_low_sum = low.sum(axis=1, keepdims=True)
        np.maximum(low, np.where(hidden_mask,
                                 row_lo[:, None] - (row_high_sum - high),
                                 low), out=low)
        np.minimum(high, np.where(hidden_mask,
                                  row_hi[:, None] - (row_low_sum - low),
                                  high), out=high)
        if col_ids:
            sub_low, sub_high = low[:, col_ids], high[:, col_ids]
            col_high_sum = sub_high.sum(axis=0, keepdims=True)
            col_low_sum = sub_low.sum(axis=0, keepdims=True)
            low[:, col_ids] = np.maximum(
                sub_low, col_lo[None, :] - (col_high_sum - sub_high)
            )
            high[:, col_ids] = np.minimum(
                sub_high, col_hi[None, :] - (col_low_sum - low[:, col_ids])
            )
        np.clip(low, lo, hi, out=low)
        np.clip(high, lo, hi, out=high)
        if (low > high + 1e-9).any():
            raise ReproError(
                "interval propagation proves the published aggregates "
                "inconsistent (a cell's bounds crossed)"
            )
        changed = ((np.abs(low - previous_low) > tolerance)
                   | (np.abs(high - previous_high) > tolerance))
        if not changed.any():
            break
    return {
        (i, j): (float(low[i, j]), float(high[i, j])) for i, j in hidden
    }


def _build_constraints_vector(constraints, index_of):
    """One vector-valued SLSQP constraint evaluating every residual at once.

    Encodes exactly the inequalities of :func:`_build_constraints` — same
    residuals in the same order — but computes them with ndarray ops over
    a scatter-filled matrix, so one evaluation replaces the whole list of
    per-constraint Python closures (the solver's finite-difference
    jacobian calls the constraint functions n_vars+1 times per iteration,
    which is where the scalar path burns its time).
    """
    n_rows, n_cols = constraints.n_rows, constraints.n_cols
    cells = sorted(index_of, key=index_of.get)
    hidden_rows = np.array([cell[0] for cell in cells], dtype=np.intp)
    hidden_cols = np.array([cell[1] for cell in cells], dtype=np.intp)
    template = np.zeros((n_rows, n_cols))
    for j, column in constraints.known_columns.items():
        template[:, j] = column
    row_mu = np.asarray(constraints.row_means, dtype=float)
    tol = constraints.tolerance

    if constraints.row_stds is not None:
        std_rows = np.array(
            [i for i, s in enumerate(constraints.row_stds) if s is not None],
            dtype=np.intp,
        )
        sigmas = np.asarray(
            [constraints.row_stds[i] for i in std_rows], dtype=float
        )
    else:
        std_rows = np.empty(0, dtype=np.intp)
        sigmas = np.empty(0)

    col_ids, col_mus, col_tols = [], [], []
    for j, mean in constraints.column_means.items():
        if j in constraints.known_columns:
            continue
        col_ids.append(j)
        col_mus.append(mean)
        col_tols.append(constraints.column_tol(j))
    col_ids = np.array(col_ids, dtype=np.intp)
    col_mus = np.asarray(col_mus, dtype=float)
    col_tols = np.asarray(col_tols, dtype=float)

    # Residual slots mirror the scalar constraint list's order: per row
    # [mean+, mean-, (std+, std-)], then per column-mean [col+, col-].
    slot_mean = np.empty(n_rows, dtype=np.intp)
    slot_std = np.empty(len(std_rows), dtype=np.intp)
    position, next_std = 0, 0
    has_sigma = set(std_rows.tolist())
    for i in range(n_rows):
        slot_mean[i] = position
        position += 2
        if i in has_sigma:
            slot_std[next_std] = position
            next_std += 1
            position += 2
    slot_col = position + 2 * np.arange(len(col_ids), dtype=np.intp)
    n_residuals = position + 2 * len(col_ids)

    def residuals(v):
        matrix = template.copy()
        matrix[hidden_rows, hidden_cols] = v
        out = np.empty(n_residuals)
        means = matrix.mean(axis=1)
        out[slot_mean] = tol - (means - row_mu)
        out[slot_mean + 1] = tol - (row_mu - means)
        if std_rows.size:
            stds = matrix[std_rows].std(axis=1, ddof=1)
            out[slot_std] = tol - (stds - sigmas)
            out[slot_std + 1] = tol - (sigmas - stds)
        if col_ids.size:
            column_means = matrix[:, col_ids].mean(axis=0)
            out[slot_col] = col_tols - (column_means - col_mus)
            out[slot_col + 1] = col_tols - (col_mus - column_means)
        return out

    return [{"type": "ineq", "fun": residuals}]


def _build_constraints(constraints, index_of):
    """SLSQP inequality constraints encoding the published aggregates."""
    cons = []
    n_rows, n_cols = constraints.n_rows, constraints.n_cols

    def row_values(v, i):
        values = np.empty(n_cols)
        for j in range(n_cols):
            if j in constraints.known_columns:
                values[j] = constraints.known_columns[j][i]
            else:
                values[j] = v[index_of[(i, j)]]
        return values

    tol = constraints.tolerance
    for i in range(n_rows):
        mu = constraints.row_means[i]
        cons.append({"type": "ineq", "fun": (
            lambda v, i=i, mu=mu: tol - (np.mean(row_values(v, i)) - mu)
        )})
        cons.append({"type": "ineq", "fun": (
            lambda v, i=i, mu=mu: tol - (mu - np.mean(row_values(v, i)))
        )})
        if (constraints.row_stds is not None
                and constraints.row_stds[i] is not None):
            sigma = constraints.row_stds[i]
            cons.append({"type": "ineq", "fun": (
                lambda v, i=i, sigma=sigma: tol
                - (np.std(row_values(v, i), ddof=1) - sigma)
            )})
            cons.append({"type": "ineq", "fun": (
                lambda v, i=i, sigma=sigma: tol
                - (sigma - np.std(row_values(v, i), ddof=1))
            )})

    for j, mean in constraints.column_means.items():
        if j in constraints.known_columns:
            continue
        col_tol = constraints.column_tol(j)
        indices = [index_of[(i, j)] for i in range(n_rows)]
        cons.append({"type": "ineq", "fun": (
            lambda v, idx=tuple(indices), m=mean, t=col_tol: t
            - (np.mean(v[list(idx)]) - m)
        )})
        cons.append({"type": "ineq", "fun": (
            lambda v, idx=tuple(indices), m=mean, t=col_tol: t
            - (m - np.mean(v[list(idx)]))
        )})
    return cons
