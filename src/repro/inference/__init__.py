"""Inference attacks on published aggregates, and the defensive guard.

This is the machinery behind the paper's Figure 1: an integrator publishes
aggregate tables (row means, row standard deviations, per-source column
averages), and a snooping source combines them with its own values to infer
tight intervals on every other source's confidential cells via non-linear
programming.

* :mod:`repro.inference.bounds` — the constrained min/max solver (scipy
  SLSQP) computing per-cell feasibility intervals.
* :mod:`repro.inference.snooper` — the adversary: builds the bound problem
  from published tables plus its own column.
* :mod:`repro.inference.guard` — the defender: the mediator's privacy
  control runs the same attack *before* releasing aggregates and blocks
  releases whose inferred intervals are too tight.
"""

from repro.inference.bounds import AggregateConstraints, cell_bounds
from repro.inference.snooper import SnoopingSource, PublishedAggregates
from repro.inference.guard import InferenceGuard, ReleaseDecision
from repro.inference.planner import ReleasePlan, ReleasePlanner

__all__ = [
    "ReleasePlanner",
    "ReleasePlan",
    "AggregateConstraints",
    "cell_bounds",
    "SnoopingSource",
    "PublishedAggregates",
    "InferenceGuard",
    "ReleaseDecision",
]
