"""The defensive inference guard.

The paper's requirement: "a data integration system should be able to
detect and limit that type of privacy breach" (Example 1).  The mediator's
privacy control therefore runs the *same* bound inference a snooper would,
once per participating source (each source is modelled as knowing its own
column), before publishing aggregates.  A release is blocked when any
inferred interval is narrower than the protected width — i.e. when
publication would let some participant pin a confidential value down too
tightly.
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.inference.snooper import SnoopingSource


class ReleaseDecision:
    """Outcome of an inference-guard check."""

    def __init__(self, safe, violations, intervals):
        self.safe = safe
        self.violations = violations  # list of (snooper, measure, source, width)
        self.intervals = intervals  # worst-case (narrowest) interval per cell

    def narrowest_width(self):
        """The tightest interval width any snooper achieves."""
        if not self.intervals:
            return float("inf")
        return min(high - low for low, high in self.intervals.values())

    def __repr__(self):
        status = "SAFE" if self.safe else f"BLOCKED ({len(self.violations)} cells)"
        return f"ReleaseDecision({status})"


class InferenceGuard:
    """Checks a proposed aggregate release against snooping inference."""

    def __init__(self, min_interval_width=5.0, starts=4, seed=0):
        if min_interval_width <= 0:
            raise ReproError("min_interval_width must be positive")
        self.min_interval_width = min_interval_width
        self.starts = starts
        self.seed = seed

    def check(self, published, true_matrix):
        """Simulate every source snooping on ``published``.

        ``true_matrix[i][j]`` is the confidential value of measure i at
        source j — the guard (run by the mediator, which integrates all
        sources' data) knows it and uses it to instantiate each would-be
        snooper's own column.
        """
        violations = []
        worst = {}
        for j, source in enumerate(published.sources):
            own_values = [true_matrix[i][j] for i in range(len(published.measures))]
            snooper = SnoopingSource(published, source, own_values)
            intervals = snooper.infer(starts=self.starts, seed=self.seed)
            for (measure, target), (low, high) in intervals.items():
                width = high - low
                key = (measure, target)
                if key not in worst or width < worst[key][1] - worst[key][0]:
                    worst[key] = (low, high)
                if width < self.min_interval_width:
                    violations.append((source, measure, target, width))
        return ReleaseDecision(not violations, violations, worst)
