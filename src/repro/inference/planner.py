"""The release planner: find the most informative *safe* publication.

Example 1's moral is that the integrator should not have published the
tables it did.  The planner answers the constructive question: *what may
it publish instead?*  It walks a ladder of candidate releases in
decreasing utility — full precision with sigmas, then rounded sigmas, then
no sigmas, then rounded means, then base-5 rounding — running the
defensive inference guard on each, and returns the first candidate every
participant's snooping attempt fails against.
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.inference.guard import InferenceGuard
from repro.inference.snooper import PublishedAggregates


class ReleasePlan:
    """A planned release: the aggregates, the decision, a utility score."""

    def __init__(self, label, published, decision, utility):
        self.label = label
        self.published = published
        self.decision = decision
        self.utility = utility

    @property
    def safe(self):
        """Whether the guard approved this release."""
        return self.decision.safe

    def __repr__(self):
        status = "SAFE" if self.safe else "unsafe"
        return f"ReleasePlan({self.label!r}, {status}, utility={self.utility:.2f})"


class ReleasePlanner:
    """Plans the most informative release that survives the guard."""

    def __init__(self, guard=None):
        self.guard = guard or InferenceGuard(min_interval_width=5.0, starts=2)

    def candidates(self, measures, sources, matrix):
        """The utility-ordered ladder of candidate releases."""
        full = PublishedAggregates.from_matrix(measures, sources, matrix,
                                               precision=1)

        def rounded(values, base):
            return [round(v / base) * base for v in values]

        ladder = [
            ("full-precision+sigma", PublishedAggregates(
                measures, sources, full.row_means, full.row_stds,
                full.source_means, precision=1), 1.0),
            ("integer+sigma", PublishedAggregates(
                measures, sources, [round(m) for m in full.row_means],
                [round(s) for s in full.row_stds],
                [round(m) for m in full.source_means], precision=0), 0.8),
            ("full-precision-no-sigma", PublishedAggregates(
                measures, sources, full.row_means, None,
                full.source_means, precision=1), 0.6),
            ("integer-no-sigma", PublishedAggregates(
                measures, sources, [round(m) for m in full.row_means], None,
                [round(m) for m in full.source_means], precision=0), 0.5),
            ("base5-no-sigma", PublishedAggregates(
                measures, sources, rounded(full.row_means, 5), None,
                rounded(full.source_means, 5), precision=0,
                tolerance=2.5), 0.3),
        ]
        return ladder

    def plan(self, measures, sources, matrix):
        """The highest-utility safe release (plus everything it rejected).

        Returns ``(chosen ReleasePlan or None, [rejected ReleasePlan])``.
        ``None`` means even base-5 means are unsafe — the data must not be
        published at all at this granularity.
        """
        if not matrix or len(matrix) != len(measures):
            raise ReproError("matrix must have one row per measure")
        rejected = []
        for label, published, utility in self.candidates(
            measures, sources, matrix
        ):
            decision = self.guard.check(published, matrix)
            plan = ReleasePlan(label, published, decision, utility)
            if plan.safe:
                return plan, rejected
            rejected.append(plan)
        return None, rejected
