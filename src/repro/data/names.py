"""Name pools for record-linkage workloads."""

from __future__ import annotations

from repro.data.rng import make_rng

FIRST_NAMES = (
    "james", "mary", "john", "patricia", "robert", "jennifer", "michael",
    "linda", "william", "elizabeth", "david", "barbara", "richard", "susan",
    "joseph", "jessica", "thomas", "sarah", "charles", "karen", "wei",
    "mei", "hiroshi", "yuki", "raj", "priya", "ahmed", "fatima", "carlos",
    "maria", "ivan", "olga", "kwame", "amara", "lars", "ingrid",
)

LAST_NAMES = (
    "smith", "johnson", "williams", "brown", "jones", "garcia", "miller",
    "davis", "rodriguez", "martinez", "hernandez", "lopez", "gonzalez",
    "wilson", "anderson", "thomas", "taylor", "moore", "jackson", "martin",
    "lee", "tanaka", "suzuki", "chen", "wang", "patel", "singh", "khan",
    "ali", "nguyen", "kim", "park", "ivanov", "petrov", "larsen", "berg",
)

_TYPO_OPS = ("swap", "drop", "double", "replace")


def person_names(count, seed=0):
    """``count`` deterministic (first, last) name pairs."""
    rng = make_rng(seed)
    return [
        (rng.choice(FIRST_NAMES), rng.choice(LAST_NAMES)) for _ in range(count)
    ]


def introduce_typo(text, rng):
    """One realistic typo: swap, drop, double, or replace a character."""
    if len(text) < 2:
        return text + "x"
    position = rng.randrange(len(text) - 1)
    operation = rng.choice(_TYPO_OPS)
    if operation == "swap":
        chars = list(text)
        chars[position], chars[position + 1] = chars[position + 1], chars[position]
        return "".join(chars)
    if operation == "drop":
        return text[:position] + text[position + 1:]
    if operation == "double":
        return text[:position] + text[position] + text[position:]
    replacement = rng.choice("abcdefghijklmnopqrstuvwxyz")
    return text[:position] + replacement + text[position + 1:]
