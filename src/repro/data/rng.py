"""Seeded randomness helpers.

Every generator in the library takes an explicit seed and derives
independent child streams from it, so whole experiments replay exactly.
"""

from __future__ import annotations

import random

from repro.errors import ReproError


def make_rng(seed):
    """A :class:`random.Random` for ``seed`` (int or an existing Random)."""
    if isinstance(seed, random.Random):
        return seed
    if isinstance(seed, int):
        return random.Random(seed)
    raise ReproError(
        f"seed must be an int or random.Random, got {type(seed).__name__}"
    )


def child_rng(rng, label):
    """An independent child stream of ``rng`` keyed by ``label``.

    Draws one 64-bit value from the parent and mixes it with the label, so
    distinct labels give decorrelated streams and the derivation replays
    deterministically.
    """
    return random.Random(f"{rng.getrandbits(64)}:{label}")
