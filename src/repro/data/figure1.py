"""The literal numbers of the paper's Figure 1.

Figure 1 publishes 2001 diabetes test-compliance aggregates over four HMOs
(PHC4 data via Boyens–Krishnan–Padman): table (a) per-test mean and
standard deviation, table (b) per-HMO average performance, table (c) the
snooping HMO1's knowledge, and table (d) the intervals HMO1 infers.

``CONSISTENT_MATRIX`` is a full measures × HMOs matrix that reproduces
every published aggregate within its rounding interval (found by
constrained optimization; the paper never reveals the true values, so any
consistent matrix is an equally valid ground truth for experiments).
"""

from __future__ import annotations


class _Figure1:
    """Immutable bundle of Figure 1 constants."""

    measures = ("HbA1c", "Lipid Profile", "Eye Exam")
    sources = ("HMO1", "HMO2", "HMO3", "HMO4")

    # Figure 1(a)/(c): per-test mean and *sample* standard deviation over
    # the four HMOs, published to one decimal.
    row_means = (83.0, 54.1, 45.4)
    row_stds = (5.7, 4.7, 2.0)

    # Figure 1(b)/(c): per-HMO average over the three tests.
    source_means = (58.0, 65.0, 60.0, 60.3)

    # Figure 1(c): the snooping HMO1's own compliance rates.
    hmo1_values = (75.0, 56.0, 43.0)

    # Figure 1(d): the intervals the paper reports HMO1 infers.
    paper_intervals = {
        ("HbA1c", "HMO2"): (87.2, 88.5),
        ("HbA1c", "HMO3"): (82.8, 86.4),
        ("HbA1c", "HMO4"): (82.9, 86.7),
        ("Lipid Profile", "HMO2"): (58.6, 59.8),
        ("Lipid Profile", "HMO3"): (48.1, 52.3),
        ("Lipid Profile", "HMO4"): (48.6, 53.1),
        ("Eye Exam", "HMO2"): (46.8, 47.9),
        ("Eye Exam", "HMO3"): (44.5, 47.2),
        ("Eye Exam", "HMO4"): (44.5, 47.4),
    }

    # A full matrix (measures × HMOs) consistent with every published
    # aggregate within one-decimal rounding — synthetic ground truth.
    consistent_matrix = (
        (75.0, 88.1874, 85.8624, 82.7544),
        (56.0, 59.0041, 47.7814, 53.8104),
        (43.0, 47.6615, 46.3271, 44.4691),
    )

    precision = 1  # published numbers have one decimal place


FIGURE1 = _Figure1()
