"""Synthetic clinical data calibrated to the paper's Example 1.

Generates per-HMO patient populations whose test-compliance rates hit a
target measures × HMOs matrix (default: the Figure-1-consistent matrix), so
publishing aggregates over the synthetic microdata reproduces Figure 1(a)
and 1(b) up to sampling error.  Also plants cross-HMO duplicate patients
(with optional typos) for the record-linkage and result-integration
workloads.
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.data.figure1 import FIGURE1
from repro.data.names import introduce_typo, person_names
from repro.data.rng import child_rng, make_rng
from repro.relational import Catalog, Table


class HealthcareGenerator:
    """Deterministic generator of multi-HMO clinical microdata."""

    def __init__(
        self,
        patients_per_hmo=200,
        measures=FIGURE1.measures,
        sources=FIGURE1.sources,
        target_matrix=FIGURE1.consistent_matrix,
        overlap_fraction=0.1,
        typo_rate=0.3,
        seed=2006,
    ):
        if len(target_matrix) != len(measures):
            raise ReproError("target matrix must have one row per measure")
        if any(len(row) != len(sources) for row in target_matrix):
            raise ReproError("target matrix must have one column per source")
        if not 0.0 <= overlap_fraction < 1.0:
            raise ReproError("overlap_fraction must be in [0, 1)")
        self.patients_per_hmo = patients_per_hmo
        self.measures = list(measures)
        self.sources = list(sources)
        self.target_matrix = [list(row) for row in target_matrix]
        self.overlap_fraction = overlap_fraction
        self.typo_rate = typo_rate
        self.seed = seed

    # -- patient-level data -----------------------------------------------

    def patients(self):
        """``{hmo: [patient records]}`` with planted cross-HMO duplicates.

        Each record has ``id, first, last, dob, zip, age`` plus one boolean
        per measure (``compliant_<i>``); compliance frequencies match the
        target matrix *exactly* (quota sampling, not Bernoulli, so the
        published aggregates land on the calibrated values).
        """
        rng = make_rng(self.seed)
        names = person_names(
            len(self.sources) * self.patients_per_hmo, seed=self.seed + 1
        )
        name_iter = iter(names)
        by_hmo = {}
        roster = []  # (hmo, record) for duplicate planting
        for j, hmo in enumerate(self.sources):
            hmo_rng = child_rng(rng, f"hmo-{j}")
            records = []
            for p in range(self.patients_per_hmo):
                first, last = next(name_iter)
                record = {
                    "id": f"{hmo}-p{p:04d}",
                    "first": first,
                    "last": last,
                    "dob": self._dob(hmo_rng),
                    "zip": hmo_rng.choice(("15213", "15217", "15090", "15108")),
                    "age": hmo_rng.randint(18, 90),
                    "hmo": hmo,
                }
                records.append(record)
            for i, _measure in enumerate(self.measures):
                quota = round(self.target_matrix[i][j] / 100.0 * len(records))
                order = list(range(len(records)))
                hmo_rng.shuffle(order)
                compliant = set(order[:quota])
                for index, record in enumerate(records):
                    record[f"compliant_{i}"] = index in compliant
            by_hmo[hmo] = records
            roster.extend((hmo, record) for record in records)

        self._plant_duplicates(by_hmo, roster, rng)
        return by_hmo

    def _plant_duplicates(self, by_hmo, roster, rng):
        """Copy a fraction of patients into another HMO, possibly with typos."""
        dup_rng = child_rng(rng, "duplicates")
        n_duplicates = int(self.overlap_fraction * len(roster))
        for _ in range(n_duplicates):
            source_hmo, original = dup_rng.choice(roster)
            target_hmo = dup_rng.choice(
                [h for h in self.sources if h != source_hmo]
            )
            clone = dict(original)
            clone["id"] = f"{target_hmo}-dup-{original['id']}"
            clone["hmo"] = target_hmo
            if dup_rng.random() < self.typo_rate:
                field = dup_rng.choice(("first", "last"))
                clone[field] = introduce_typo(clone[field], dup_rng)
            by_hmo[target_hmo].append(clone)

    def _dob(self, rng):
        year = rng.randint(1920, 2000)
        month = rng.randint(1, 12)
        day = rng.randint(1, 28)
        return f"{year:04d}-{month:02d}-{day:02d}"

    # -- aggregate / relational views ---------------------------------------

    def compliance_matrix(self, patients=None):
        """Measured measures × HMOs compliance percentages.

        Computed over the *original* (non-duplicate) patients so the quota
        calibration is exact.
        """
        patients = patients or self.patients()
        matrix = []
        for i in range(len(self.measures)):
            row = []
            for hmo in self.sources:
                originals = [
                    p for p in patients[hmo] if not p["id"].startswith(f"{hmo}-dup")
                ]
                compliant = sum(1 for p in originals if p[f"compliant_{i}"])
                row.append(100.0 * compliant / len(originals))
            matrix.append(row)
        return matrix

    def catalogs(self, patients=None):
        """One relational :class:`~repro.relational.Catalog` per HMO."""
        patients = patients or self.patients()
        catalogs = {}
        for hmo, records in patients.items():
            catalog = Catalog(hmo)
            catalog.add(Table.from_dicts("patients", records))
            catalogs[hmo] = catalog
        return catalogs
