"""Synthetic SARS-like outbreak surveillance data (Example 2).

A discrete SEIR-flavoured epidemic seeds one region and spreads to others
with travel delays; each region's health authority is a separate source
holding its own case records.  The mediator-side mining experiments look
for exactly the trends the paper motivates: epidemic curves, inter-region
lag, and case-fatality patterns.
"""

from __future__ import annotations

import math

from repro.errors import ReproError
from repro.data.rng import child_rng, make_rng
from repro.relational import Catalog, Table

DEFAULT_REGIONS = ("guangdong", "hongkong", "singapore", "toronto", "hanoi")


class OutbreakGenerator:
    """Deterministic multi-region epidemic generator."""

    def __init__(
        self,
        regions=DEFAULT_REGIONS,
        days=120,
        r0=2.8,
        initial_cases=4,
        infectious_days=6.0,
        mortality=0.10,
        travel_delay=12,
        intervention_day=45,
        intervention_factor=0.35,
        seed=2003,
    ):
        if days < 10:
            raise ReproError("outbreak needs at least 10 days")
        if not regions:
            raise ReproError("outbreak needs at least one region")
        self.regions = list(regions)
        self.days = days
        self.r0 = r0
        self.initial_cases = initial_cases
        self.infectious_days = infectious_days
        self.mortality = mortality
        self.travel_delay = travel_delay
        self.intervention_day = intervention_day
        self.intervention_factor = intervention_factor
        self.seed = seed

    def daily_counts(self):
        """``{region: [new cases per day]}`` from a stochastic SIR chain."""
        rng = make_rng(self.seed)
        counts = {}
        for index, region in enumerate(self.regions):
            region_rng = child_rng(rng, f"region-{region}")
            start = index * self.travel_delay
            seed_cases = max(1, round(self.initial_cases * (0.7 ** index)))
            counts[region] = self._epidemic_curve(region_rng, start, seed_cases)
        return counts

    def _epidemic_curve(self, rng, start_day, seed_cases):
        population = 50000
        susceptible = population
        infectious = 0.0
        curve = [0] * self.days
        for day in range(self.days):
            if day == start_day:
                infectious += seed_cases
                curve[day] += seed_cases
                susceptible -= seed_cases
            if infectious <= 0 or day < start_day:
                continue
            beta = self.r0 / self.infectious_days
            if day - start_day >= self.intervention_day:
                beta *= self.intervention_factor
            expected = beta * infectious * susceptible / population
            new_cases = min(susceptible, _poisson(rng, expected))
            curve[day] += new_cases
            susceptible -= new_cases
            infectious += new_cases - infectious / self.infectious_days
        return curve

    def case_records(self, counts=None):
        """``{region: [case records]}`` with demographics and outcomes."""
        counts = counts or self.daily_counts()
        rng = make_rng(self.seed + 7)
        records = {}
        for region in self.regions:
            region_rng = child_rng(rng, f"cases-{region}")
            cases = []
            serial = 0
            for day, new_cases in enumerate(counts[region]):
                for _ in range(new_cases):
                    age = min(95, max(1, int(region_rng.gauss(42, 18))))
                    died = region_rng.random() < self.mortality * (
                        2.0 if age >= 65 else 0.8
                    )
                    cases.append({
                        "case_id": f"{region}-{serial:05d}",
                        "region": region,
                        "onset_day": day,
                        "age": age,
                        "sex": region_rng.choice(("f", "m")),
                        "healthcare_worker": region_rng.random() < 0.2,
                        "outcome": "died" if died else "recovered",
                    })
                    serial += 1
            records[region] = cases
        return records

    def catalogs(self, records=None):
        """One relational catalog (source) per regional health authority."""
        records = records or self.case_records()
        catalogs = {}
        for region, cases in records.items():
            catalog = Catalog(region)
            if cases:
                catalog.add(Table.from_dicts("cases", cases))
            catalogs[region] = catalog
        return catalogs

    def peak_day(self, counts=None):
        """``{region: day of peak incidence}`` — the trend miners look for."""
        counts = counts or self.daily_counts()
        return {
            region: max(range(self.days), key=lambda d: series[d])
            for region, series in counts.items()
        }


def _poisson(rng, lam):
    """Poisson sample via inversion (Knuth) with a normal tail for big λ."""
    if lam <= 0:
        return 0
    if lam > 30:
        return max(0, int(round(rng.gauss(lam, math.sqrt(lam)))))
    threshold = math.exp(-lam)
    k, product = 0, rng.random()
    while product > threshold:
        k += 1
        product *= rng.random()
    return k
