"""Synthetic data generators.

The paper's motivating workloads are clinical data integration (Example 1)
and multi-source disease-outbreak surveillance (Example 2).  Neither
dataset is public, so we generate statistically equivalent synthetic data
(see DESIGN.md, substitutions):

* :mod:`repro.data.figure1` — the literal numbers of Figure 1 plus a
  calibrated full matrix consistent with them;
* :mod:`repro.data.healthcare` — HMOs, patients, tests, compliance;
* :mod:`repro.data.outbreak` — a SARS-like epidemic across regions;
* :mod:`repro.data.names` — name pools for record-linkage workloads;
* :mod:`repro.data.rng` — seeded determinism helpers.
"""

from repro.data.figure1 import FIGURE1
from repro.data.healthcare import HealthcareGenerator
from repro.data.outbreak import OutbreakGenerator
from repro.data.names import person_names

__all__ = [
    "FIGURE1",
    "HealthcareGenerator",
    "OutbreakGenerator",
    "person_names",
]
