"""Role-based access control.

Permissions pair an action with a resource pattern; resources are
dot-separated names (``patients.dob``) and patterns may end in ``.*`` or be
the global ``*``.  Roles may inherit from other roles (a senior role holds
every permission of its juniors).  :class:`RbacPolicy` assigns roles to
subjects and answers access checks, raising
:class:`~repro.errors.AccessDenied` from :meth:`RbacPolicy.require`.
"""

from __future__ import annotations

from repro.errors import AccessDenied, ReproError

ACTIONS = ("read", "write", "aggregate")


class Permission:
    """``action`` on resources matching ``pattern``."""

    __slots__ = ("action", "pattern")

    def __init__(self, action, pattern):
        if action not in ACTIONS:
            raise ReproError(f"unknown action {action!r} (use {ACTIONS})")
        if not pattern:
            raise ReproError("empty resource pattern")
        self.action = action
        self.pattern = pattern

    def matches(self, action, resource):
        """Whether this permission grants ``action`` on ``resource``."""
        if action != self.action:
            return False
        if self.pattern == "*":
            return True
        if self.pattern.endswith(".*"):
            prefix = self.pattern[:-2]
            return resource == prefix or resource.startswith(prefix + ".")
        return resource == self.pattern

    def __repr__(self):
        return f"Permission({self.action} {self.pattern})"

    def __eq__(self, other):
        return (
            isinstance(other, Permission)
            and (self.action, self.pattern) == (other.action, other.pattern)
        )

    def __hash__(self):
        return hash((self.action, self.pattern))


class Role:
    """A named bundle of permissions, optionally inheriting other roles."""

    def __init__(self, name, permissions=(), parents=()):
        if not name:
            raise ReproError("role needs a name")
        self.name = name
        self.permissions = set(permissions)
        self.parents = list(parents)

    def all_permissions(self):
        """This role's permissions including everything inherited."""
        collected = set()
        stack, seen = [self], set()
        while stack:
            role = stack.pop()
            if role.name in seen:
                continue
            seen.add(role.name)
            collected |= role.permissions
            stack.extend(role.parents)
        return collected

    def grants(self, action, resource):
        """Whether this role (or an ancestor) permits the access."""
        return any(p.matches(action, resource) for p in self.all_permissions())

    def __repr__(self):
        return f"Role({self.name!r}, {len(self.permissions)} perms)"


class RbacPolicy:
    """Subject → roles assignment with access checks."""

    def __init__(self):
        self._roles = {}
        self._assignments = {}

    def add_role(self, role):
        """Register a role (names must be unique)."""
        if role.name in self._roles:
            raise ReproError(f"role {role.name!r} already registered")
        self._roles[role.name] = role
        return role

    def role(self, name):
        """Look up a registered role."""
        if name not in self._roles:
            raise ReproError(f"unknown role {name!r}")
        return self._roles[name]

    def assign(self, subject, role_name):
        """Give ``subject`` the role named ``role_name``."""
        role = self.role(role_name)
        self._assignments.setdefault(subject, set()).add(role.name)

    def roles_of(self, subject):
        """Names of the roles assigned to ``subject``."""
        return sorted(self._assignments.get(subject, ()))

    def check(self, subject, action, resource):
        """True when any assigned role grants the access."""
        return any(
            self._roles[name].grants(action, resource)
            for name in self._assignments.get(subject, ())
        )

    def require(self, subject, action, resource):
        """Raise :class:`AccessDenied` unless the access is granted."""
        if not self.check(subject, action, resource):
            raise AccessDenied(
                f"{subject!r} may not {action} {resource!r} "
                f"(roles: {self.roles_of(subject) or 'none'})"
            )
