"""Multilevel security (Bell–LaPadula).

Labels combine a linear classification level with a compartment set; label
A *dominates* B when A's level is at least B's and A's compartments contain
B's.  The two BLP rules:

* **no read up** — a subject may read an object only if the subject's
  label dominates the object's;
* **no write down** — a subject may write an object only if the object's
  label dominates the subject's.

The paper notes (§2) that two queries at different levels may legitimately
get different answers over the same database; the source-side rewriter
realizes that by filtering rows/columns whose label the requester does not
dominate.
"""

from __future__ import annotations

import enum
from functools import total_ordering

from repro.errors import ReproError


@total_ordering
class Level(enum.Enum):
    """Linear classification levels."""

    UNCLASSIFIED = 0
    CONFIDENTIAL = 1
    SECRET = 2
    TOP_SECRET = 3

    def __lt__(self, other):
        if not isinstance(other, Level):
            return NotImplemented
        return self.value < other.value


class SecurityLabel:
    """A classification level plus a compartment set."""

    __slots__ = ("level", "compartments")

    def __init__(self, level, compartments=()):
        if isinstance(level, str):
            try:
                level = Level[level.upper().replace("-", "_")]
            except KeyError as exc:
                raise ReproError(f"unknown security level {level!r}") from exc
        if not isinstance(level, Level):
            raise ReproError("level must be a Level or its name")
        self.level = level
        self.compartments = frozenset(compartments)

    def dominates(self, other):
        """Whether this label dominates ``other``."""
        return (
            self.level >= other.level
            and self.compartments >= other.compartments
        )

    def __repr__(self):
        tags = f" {sorted(self.compartments)}" if self.compartments else ""
        return f"SecurityLabel({self.level.name}{tags})"

    def __eq__(self, other):
        return (
            isinstance(other, SecurityLabel)
            and (self.level, self.compartments)
            == (other.level, other.compartments)
        )

    def __hash__(self):
        return hash((self.level, self.compartments))


def can_read(subject_label, object_label):
    """BLP simple security: no read up."""
    return subject_label.dominates(object_label)


def can_write(subject_label, object_label):
    """BLP star property: no write down."""
    return object_label.dominates(subject_label)
