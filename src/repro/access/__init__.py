"""Access control: RBAC and multilevel security.

Section 2 positions these as necessary-but-insufficient building blocks —
they gate *who* reads *what*, while the privacy framework limits what can
be inferred afterwards.  The source-side query rewriter consults both.

* :mod:`repro.access.rbac` — roles, permissions, role hierarchy.
* :mod:`repro.access.mls` — Bell–LaPadula multilevel labels.
"""

from repro.access.rbac import Permission, RbacPolicy, Role
from repro.access.mls import Level, SecurityLabel, can_read, can_write

__all__ = [
    "Permission",
    "Role",
    "RbacPolicy",
    "Level",
    "SecurityLabel",
    "can_read",
    "can_write",
]
