"""Apriori frequent-itemset mining and association rules.

The mining workload the distributed protocol (and the warehouse analytics
examples) run.  Transactions are iterables of hashable items; supports are
fractions of the transaction count.
"""

from __future__ import annotations

from itertools import combinations

from repro.errors import ReproError


def apriori(transactions, min_support):
    """All itemsets with support ≥ ``min_support``.

    Returns ``{frozenset: support}`` with support as a fraction.
    """
    if not 0.0 < min_support <= 1.0:
        raise ReproError("min_support must be in (0, 1]")
    transactions = [frozenset(t) for t in transactions]
    if not transactions:
        raise ReproError("no transactions to mine")
    n = len(transactions)
    threshold = min_support * n

    counts = {}
    for transaction in transactions:
        for item in transaction:
            key = frozenset([item])
            counts[key] = counts.get(key, 0) + 1
    current = {k for k, c in counts.items() if c >= threshold}
    frequent = {k: counts[k] / n for k in current}

    size = 1
    while current:
        size += 1
        candidates = _generate_candidates(current, size)
        if not candidates:
            break
        counts = dict.fromkeys(candidates, 0)
        for transaction in transactions:
            if len(transaction) < size:
                continue
            for candidate in candidates:
                if candidate <= transaction:
                    counts[candidate] += 1
        current = {k for k, c in counts.items() if c >= threshold}
        frequent.update({k: counts[k] / n for k in current})
    return frequent


def _generate_candidates(frequent_prev, size):
    """Apriori join + prune: candidates of ``size`` from (size-1)-itemsets."""
    frequent_prev = list(frequent_prev)
    candidates = set()
    for i, a in enumerate(frequent_prev):
        for b in frequent_prev[i + 1:]:
            union = a | b
            if len(union) != size:
                continue
            prev_set = set(frequent_prev)
            if all(
                frozenset(subset) in prev_set
                for subset in combinations(union, size - 1)
            ):
                candidates.add(union)
    return candidates


def itemset_support(transactions, itemset):
    """Support fraction of one itemset."""
    transactions = [frozenset(t) for t in transactions]
    if not transactions:
        raise ReproError("no transactions")
    itemset = frozenset(itemset)
    hits = sum(1 for t in transactions if itemset <= t)
    return hits / len(transactions)


def association_rules(frequent, min_confidence):
    """Rules ``antecedent → consequent`` meeting ``min_confidence``.

    ``frequent`` is the output of :func:`apriori`.  Returns a list of
    ``(antecedent, consequent, support, confidence, lift)`` sorted by
    descending confidence then lexicographically (deterministic).
    """
    if not 0.0 < min_confidence <= 1.0:
        raise ReproError("min_confidence must be in (0, 1]")
    rules = []
    for itemset, support in frequent.items():
        if len(itemset) < 2:
            continue
        for r in range(1, len(itemset)):
            for antecedent in combinations(sorted(itemset), r):
                antecedent = frozenset(antecedent)
                consequent = itemset - antecedent
                if antecedent not in frequent or consequent not in frequent:
                    continue  # (possible when called with a partial map)
                confidence = support / frequent[antecedent]
                if confidence >= min_confidence:
                    lift = confidence / frequent[consequent]
                    rules.append(
                        (antecedent, consequent, support, confidence, lift)
                    )
    rules.sort(
        key=lambda rule: (-rule[3], sorted(rule[0]), sorted(rule[1]))
    )
    return rules
