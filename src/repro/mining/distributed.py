"""Privacy-preserving distributed association-rule mining.

Kantarcioglu–Clifton (ref [30]) over horizontally partitioned data: each
site holds its own transactions; the sites jointly compute the globally
frequent itemsets without revealing which candidate came from which site or
any site's local supports.

Protocol, as implemented here:

1. **Secure union of locally frequent itemsets** — every site encodes its
   candidates into the shared group and encrypts with its commutative key;
   ciphertexts pass through every other site (gaining one layer each);
   fully-encrypted values are deduplicated (commutativity makes equal
   itemsets collide regardless of origin) and then peeled by every site in
   turn, revealing the union but not attribution.
2. **Secure global support count** — for each candidate the sites run a
   masked-ring secure sum of local support counts; only the global total is
   revealed, and only its comparison against the global threshold matters.
"""

from __future__ import annotations

import random

from repro.errors import ReproError
from repro.crypto.commutative import CommutativeKey
from repro.crypto.modmath import MODP_1024
from repro.crypto.secure_sum import secure_sum
from repro.mining.apriori import apriori, association_rules


def _encode_itemset(itemset):
    return "|".join(sorted(str(item) for item in itemset))


def secure_union(site_itemsets, group=None, rng=None):
    """Union of the sites' itemset collections, without attribution.

    ``site_itemsets`` is a list (one entry per site) of iterables of
    frozensets.  Returns the union as a sorted list of frozensets, plus the
    number of ciphertexts that crossed the wire (for the overhead bench).
    """
    if len(site_itemsets) < 2:
        raise ReproError("secure union needs at least two sites")
    group = group or MODP_1024
    rng = rng or random.Random()
    keys = [
        CommutativeKey(group, rng=random.Random(rng.getrandbits(64)))
        for _ in site_itemsets
    ]
    # Each site knows the (hashed-element → itemset) mapping of its own
    # candidates; pooled at the end to decode the revealed union.
    element_to_itemset = {}
    wire_messages = 0

    fully_encrypted = set()
    for site_index, itemsets in enumerate(site_itemsets):
        layer = []
        for itemset in itemsets:
            element = group.hash_into(_encode_itemset(itemset))
            element_to_itemset[element] = frozenset(itemset)
            layer.append(keys[site_index].encrypt(element))
        # Pass through every *other* site for its layer.
        for other_index in range(len(site_itemsets)):
            if other_index == site_index:
                continue
            layer = [keys[other_index].encrypt(value) for value in layer]
            wire_messages += len(layer)
        fully_encrypted.update(layer)

    # Peel all layers (order irrelevant by commutativity).
    decrypted = list(fully_encrypted)
    for key in keys:
        decrypted = [key.decrypt(value) for value in decrypted]

    union = sorted(
        (element_to_itemset[element] for element in decrypted),
        key=lambda s: (len(s), sorted(str(i) for i in s)),
    )
    return union, wire_messages


class PartitionedMiner:
    """Association-rule mining across horizontally partitioned sites."""

    def __init__(self, site_transactions, min_support, group=None, rng=None):
        if len(site_transactions) < 2:
            raise ReproError("need at least two sites")
        if not 0.0 < min_support <= 1.0:
            raise ReproError("min_support must be in (0, 1]")
        self.sites = [
            [frozenset(t) for t in transactions]
            for transactions in site_transactions
        ]
        if any(not site for site in self.sites):
            raise ReproError("every site needs at least one transaction")
        self.min_support = min_support
        self.group = group or MODP_1024
        self.rng = rng or random.Random()
        self.union_wire_messages = 0
        self.secure_sums_run = 0

    @property
    def total_transactions(self):
        """Global transaction count (public in this protocol)."""
        return sum(len(site) for site in self.sites)

    def globally_frequent(self):
        """``{itemset: global support}`` for globally frequent itemsets.

        A globally frequent itemset is locally frequent at ≥ 1 site
        (standard Apriori distributed property), so the secure union of
        locally frequent sets is a superset of the answer; secure sums then
        filter it.
        """
        local_frequent = [
            set(apriori(site, self.min_support)) for site in self.sites
        ]
        candidates, self.union_wire_messages = secure_union(
            local_frequent, self.group, self.rng
        )
        n_total = self.total_transactions
        threshold = self.min_support * n_total

        frequent = {}
        for itemset in candidates:
            local_counts = [
                sum(1 for t in site if itemset <= t) for site in self.sites
            ]
            global_count = secure_sum(
                local_counts + [0] if len(local_counts) < 2 else local_counts,
                rng=self.rng,
            )
            self.secure_sums_run += 1
            if global_count >= threshold:
                frequent[itemset] = global_count / n_total
        return frequent

    def rules(self, min_confidence):
        """Globally valid association rules."""
        return association_rules(self.globally_frequent(), min_confidence)
