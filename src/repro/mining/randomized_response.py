"""Warner's randomized response.

Each respondent reports the truth with probability ``p`` and the opposite
with probability ``1 - p`` (``p != 0.5``).  Individual reports are
deniable, yet the population proportion is recoverable without bias:

    pi_hat = (lambda + p - 1) / (2p - 1)

where ``lambda`` is the observed "yes" proportion.  The categorical variant
keeps a value with probability ``p`` and otherwise replaces it with a
uniform draw from the domain.
"""

from __future__ import annotations

import random

from repro.errors import ReproError


class RandomizedResponse:
    """A configured randomized-response mechanism."""

    def __init__(self, p=0.8, rng=None):
        if not 0.0 < p < 1.0 or abs(p - 0.5) < 1e-9:
            raise ReproError("p must be in (0, 1) and != 0.5")
        self.p = p
        self.rng = rng or random.Random()

    # -- binary -----------------------------------------------------------

    def randomize_bool(self, value):
        """Report ``value`` truthfully with probability p, else flipped."""
        if not isinstance(value, bool):
            raise ReproError("randomize_bool needs a bool")
        return value if self.rng.random() < self.p else not value

    def randomize_bools(self, values):
        """Randomize a sequence of booleans."""
        return [self.randomize_bool(v) for v in values]

    def estimate_proportion(self, reported):
        """Unbiased estimate of the true 'True' proportion.

        May fall outside [0, 1] on small samples — callers that need a
        proportion should clip; we return the raw unbiased value so
        downstream corrections stay unbiased.
        """
        reported = list(reported)
        if not reported:
            raise ReproError("cannot estimate from zero reports")
        observed = sum(1 for r in reported if r) / len(reported)
        return (observed + self.p - 1.0) / (2.0 * self.p - 1.0)

    def estimate_count(self, reported):
        """Unbiased estimate of the true 'True' count."""
        reported = list(reported)
        return self.estimate_proportion(reported) * len(reported)

    # -- categorical ---------------------------------------------------------

    def randomize_category(self, value, domain):
        """Keep ``value`` with probability p, else uniform over ``domain``."""
        domain = list(domain)
        if value not in domain:
            raise ReproError(f"value {value!r} not in domain")
        if self.rng.random() < self.p:
            return value
        return self.rng.choice(domain)

    def estimate_category_counts(self, reported, domain):
        """Unbiased per-category count estimates from randomized reports.

        With keep-probability p and uniform replacement, a report of
        category c arises from a true c with probability
        ``p + (1-p)/|D|`` and from any other true value with probability
        ``(1-p)/|D|``; inverting the linear system gives the estimator.
        """
        domain = list(domain)
        if not domain:
            raise ReproError("empty category domain")
        reported = list(reported)
        n = len(reported)
        if n == 0:
            raise ReproError("cannot estimate from zero reports")
        d = len(domain)
        noise = (1.0 - self.p) / d
        observed = {c: 0 for c in domain}
        for report in reported:
            if report not in observed:
                raise ReproError(f"report {report!r} outside domain")
            observed[report] += 1
        estimates = {}
        for category in domain:
            estimates[category] = (observed[category] - n * noise) / self.p
        return estimates
