"""Privacy-preserving data-mining substrate.

Section 2 groups PPDM into two families the framework must support:
distributed protocols and randomization.  This package implements both:

* :mod:`repro.mining.randomized_response` — Warner's randomized response
  and its unbiased estimators (Du–Zhan, ref [19]);
* :mod:`repro.mining.reconstruction` — Agrawal–Srikant Bayesian/EM
  distribution reconstruction from additively perturbed values (ref [5]);
* :mod:`repro.mining.apriori` — frequent itemsets and association rules
  (the mining workload itself);
* :mod:`repro.mining.distributed` — Kantarcioglu–Clifton association-rule
  mining over horizontally partitioned sources using commutative-cipher
  secure union and secure sum (ref [30]);
* :mod:`repro.mining.naive_bayes` — classification over
  randomized-response data with corrected class statistics.
"""

from repro.mining.randomized_response import RandomizedResponse
from repro.mining.reconstruction import reconstruct_distribution
from repro.mining.apriori import apriori, association_rules
from repro.mining.distributed import (
    PartitionedMiner,
    secure_union,
)
from repro.mining.naive_bayes import RRNaiveBayes

__all__ = [
    "RandomizedResponse",
    "reconstruct_distribution",
    "apriori",
    "association_rules",
    "PartitionedMiner",
    "secure_union",
    "RRNaiveBayes",
]
