"""Agrawal–Srikant distribution reconstruction (the EM/Bayes iteration).

Sources perturb numeric values by adding noise of a **known** distribution
before sharing; the miner reconstructs the *distribution* of the original
values (never the values themselves) by iterating Bayes' rule over a
histogram::

    f_next(a) = (1/n) * sum_i  fY(w_i - a) f(a) / sum_b fY(w_i - b) f(b)

where ``w_i`` are the perturbed observations and ``fY`` the noise density.
Stops when successive estimates differ by less than ``tol`` in L1.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ReproError


class ReconstructedDistribution:
    """A reconstructed histogram over ``bins`` with probabilities ``probs``."""

    def __init__(self, bin_edges, probs, iterations):
        self.bin_edges = np.asarray(bin_edges, dtype=float)
        self.probs = np.asarray(probs, dtype=float)
        self.iterations = iterations

    @property
    def bin_centers(self):
        """Midpoints of the histogram bins."""
        return 0.5 * (self.bin_edges[:-1] + self.bin_edges[1:])

    def mean(self):
        """Mean of the reconstructed distribution."""
        return float(np.dot(self.bin_centers, self.probs))

    def std(self):
        """Standard deviation of the reconstructed distribution."""
        centers = self.bin_centers
        mean = self.mean()
        return float(math.sqrt(np.dot(self.probs, (centers - mean) ** 2)))

    def l1_error(self, true_values):
        """L1 distance between this histogram and ``true_values``' histogram."""
        true_hist, _ = np.histogram(true_values, bins=self.bin_edges)
        total = true_hist.sum()
        if total == 0:
            raise ReproError("no true values fall inside the bins")
        return float(np.abs(self.probs - true_hist / total).sum())


def reconstruct_distribution(
    perturbed, noise_sigma, bins=40, value_range=None, max_iter=200, tol=1e-4
):
    """Reconstruct the original distribution from perturbed values.

    ``perturbed`` are observations ``x_i + N(0, noise_sigma²)``.  Returns a
    :class:`ReconstructedDistribution`.
    """
    observations = np.asarray(list(perturbed), dtype=float)
    if observations.size == 0:
        raise ReproError("no observations to reconstruct from")
    if noise_sigma <= 0:
        raise ReproError("noise sigma must be positive")
    if bins < 2:
        raise ReproError("need at least two bins")

    if value_range is None:
        pad = 2.0 * noise_sigma
        value_range = (observations.min() - pad, observations.max() + pad)
    low, high = value_range
    if high <= low:
        raise ReproError("empty value range")
    edges = np.linspace(low, high, bins + 1)
    centers = 0.5 * (edges[:-1] + edges[1:])

    # noise density at (observation_i - center_b): n × bins matrix
    diffs = observations[:, None] - centers[None, :]
    density = np.exp(-0.5 * (diffs / noise_sigma) ** 2) / (
        noise_sigma * math.sqrt(2.0 * math.pi)
    )

    probs = np.full(bins, 1.0 / bins)
    iterations = 0
    for iterations in range(1, max_iter + 1):
        weighted = density * probs[None, :]
        denominators = weighted.sum(axis=1)
        # Guard observations far outside the support of the current estimate.
        safe = denominators > 0
        posterior = np.zeros_like(weighted)
        posterior[safe] = weighted[safe] / denominators[safe, None]
        updated = posterior.sum(axis=0)
        total = updated.sum()
        if total <= 0:
            raise ReproError("reconstruction collapsed; widen the value range")
        updated /= total
        if np.abs(updated - probs).sum() < tol:
            probs = updated
            break
        probs = updated
    return ReconstructedDistribution(edges, probs, iterations)
