"""Naive Bayes over randomized-response data.

Demonstrates the paper's point that mining can proceed on privatized data:
features are boolean attributes randomized per
:class:`~repro.mining.randomized_response.RandomizedResponse`; training
corrects the per-class feature frequencies with the unbiased estimator
before fitting, so accuracy approaches the plaintext model as data grows.
"""

from __future__ import annotations

import math

from repro.errors import ReproError


class RRNaiveBayes:
    """Bernoulli naive Bayes trained on randomized boolean features."""

    def __init__(self, mechanism, smoothing=1.0):
        self.mechanism = mechanism
        self.smoothing = smoothing
        self._classes = []
        self._priors = {}
        self._feature_probs = {}  # class → list of P(feature=True | class)
        self._n_features = None

    def fit(self, randomized_rows, labels):
        """Fit from randomized feature rows and (public) class labels."""
        rows = [list(r) for r in randomized_rows]
        labels = list(labels)
        if not rows or len(rows) != len(labels):
            raise ReproError("rows and labels must align and be non-empty")
        self._n_features = len(rows[0])
        if any(len(r) != self._n_features for r in rows):
            raise ReproError("ragged feature rows")
        self._classes = sorted(set(labels), key=str)

        p = self.mechanism.p
        for cls in self._classes:
            class_rows = [r for r, label in zip(rows, labels) if label == cls]
            self._priors[cls] = len(class_rows) / len(rows)
            probs = []
            for feature in range(self._n_features):
                observed = sum(1 for r in class_rows if r[feature])
                n = len(class_rows)
                # Unbiased Warner correction, then Laplace smoothing.
                corrected = (observed / n + p - 1.0) / (2.0 * p - 1.0)
                corrected = min(max(corrected, 0.0), 1.0)
                smoothed = (corrected * n + self.smoothing) / (
                    n + 2.0 * self.smoothing
                )
                probs.append(smoothed)
            self._feature_probs[cls] = probs
        return self

    def predict(self, features):
        """Most probable class for one plaintext feature row."""
        if self._n_features is None:
            raise ReproError("fit must be called before predict")
        features = list(features)
        if len(features) != self._n_features:
            raise ReproError("feature arity mismatch")
        best_class, best_score = None, -math.inf
        for cls in self._classes:
            score = math.log(self._priors[cls]) if self._priors[cls] > 0 else -math.inf
            for value, prob in zip(features, self._feature_probs[cls]):
                score += math.log(prob if value else 1.0 - prob)
            if score > best_score:
                best_class, best_score = cls, score
        return best_class

    def accuracy(self, rows, labels):
        """Fraction of ``rows`` classified as ``labels``."""
        rows, labels = list(rows), list(labels)
        if not rows:
            raise ReproError("cannot score an empty test set")
        hits = sum(
            1 for row, label in zip(rows, labels) if self.predict(row) == label
        )
        return hits / len(rows)
