"""Experiment A5b: the "safer perturbation" the paper asks for (§2).

Sweeps the Laplace mechanism's epsilon over a protected statistical
database and reports (a) the relative error of legitimate departmental
averages and (b) how far off a tracker attack lands.  The paper's open
problem — perturbation that is "safer and more efficient" than ad-hoc
noise — is answered by the mechanism's two structural properties, both
asserted here: memoization kills averaging attacks, and the epsilon
budget hard-stops sequence probing.
"""

import random

import pytest

from repro.errors import PrivacyViolation
from repro.relational import Comparison, Table
from repro.statdb import (
    LaplaceMechanism,
    PrivacyBudget,
    ProtectedStatDB,
    StatQuery,
    individual_tracker_attack,
)
from repro.statdb.tracker import true_value

EPSILONS = [0.1, 0.5, 2.0, 10.0]
N_ROWS = 300


def salary_table():
    rows = [
        {"id": i, "dept": ["sales", "eng", "hr"][i % 3],
         "salary": 900.0 + 37.0 * (i % 50)}
        for i in range(N_ROWS)
    ]
    return Table.from_dicts("salaries", rows)


def protected_db(epsilon, seed=5):
    mechanism = LaplaceMechanism(
        epsilon, sensitivity=1.0, rng=random.Random(seed)
    )
    return ProtectedStatDB(salary_table(), output_perturbation=mechanism)


def utility_error(epsilon, trials=30):
    """Mean relative error of departmental counts across fresh DBs."""
    errors = []
    for trial in range(trials):
        db = protected_db(epsilon, seed=trial)
        for dept in ("sales", "eng", "hr"):
            query = StatQuery("count", predicate=Comparison("dept", "=", dept))
            truth = len(db.query_set(query.predicate))
            noisy = db.answer(query)
            errors.append(abs(noisy - truth) / truth)
    return sum(errors) / len(errors)


def attack_error(epsilon, trials=20):
    """Mean absolute tracker error on a count of one victim (truth: 1)."""
    errors = []
    for trial in range(trials):
        db = ProtectedStatDB(
            salary_table(),
            min_set_size=3,
            restrict_complement=False,
            output_perturbation=LaplaceMechanism(
                epsilon, sensitivity=1.0, rng=random.Random(100 + trial)
            ),
        )
        victim = Comparison("id", "=", trial)
        result = individual_tracker_attack(
            db, victim, Comparison("dept", "=", "sales"), func="count"
        )
        truth = true_value(db, victim, func="count")
        errors.append(abs(result.inferred_value - truth))
    return sum(errors) / len(errors)


@pytest.mark.parametrize("epsilon", EPSILONS)
def test_laplace_query_cost(benchmark, epsilon):
    db = protected_db(epsilon)
    query = StatQuery("count", predicate=Comparison("dept", "=", "sales"))
    benchmark(db.answer, query)


def test_epsilon_sweep_report(benchmark, report):
    def sweep():
        return [
            (epsilon, utility_error(epsilon), attack_error(epsilon))
            for epsilon in EPSILONS
        ]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        f"=== A5b: Laplace mechanism sweep ({N_ROWS} records) ===",
        f"{'epsilon':>8s} {'legit rel. error':>17s} {'tracker abs. error':>19s}",
    )
    for epsilon, legit, attack in rows:
        report(f"{epsilon:8.1f} {legit:17.3f} {attack:19.2f}")
    legit_errors = [legit for _e, legit, _a in rows]
    attack_errors = [attack for _e, _l, attack in rows]
    assert legit_errors == sorted(legit_errors, reverse=True)
    # the attacker's advantage also grows with epsilon — and at small
    # epsilon the inferred count is useless (error >> 1 person)
    assert attack_errors[0] > 3.0
    assert attack_errors[0] > attack_errors[-1]


def test_budget_hard_stops_probing(benchmark, report):
    def probe_until_refused():
        budget = PrivacyBudget(2.0)
        mechanism = LaplaceMechanism(
            0.5, sensitivity=1.0, budget=budget, rng=random.Random(9)
        )
        db = ProtectedStatDB(salary_table(), output_perturbation=mechanism)
        answered = 0
        for i in range(20):
            try:
                db.answer(
                    StatQuery("count", predicate=Comparison("id", "<", 50 + i)),
                    requester="snoop",
                )
                answered += 1
            except PrivacyViolation:
                break
        return answered

    answered = benchmark.pedantic(probe_until_refused, rounds=1, iterations=1)
    report(
        "=== A5b: epsilon budget (total 2.0, 0.5/query) ===",
        f"novel probes answered before refusal: {answered} (expected 4)",
    )
    assert answered == 4
