"""Experiment KERN: vectorized kernels and the batched pose pipeline.

Every hot kernel behind the :mod:`repro.kernels` gate is timed twice on
the same seeded input — scalar reference vs vectorized — and the
end-to-end ``pose_many`` batch pipeline is raced against the identical
workload through a looped ``query()``.  The differential suites
(``tests/kernels/``, ``tests/mediator/test_pose_many.py``) pin the two
paths to identical *outputs*; this bench publishes what the vectorized
paths buy (``BENCH_kernels.json``, the KERN table of EXPERIMENTS.md).

Acceptance: ≥5x on the solver constraint sweep and the k-anonymity
class counting, ≥3x end-to-end for ``pose_many`` over a 256-query
workload, at identical outcomes.
"""

import gc
import os
import random
import time
from contextlib import contextmanager

import numpy as np
import pytest

from repro.anonymity.hierarchy import interval_hierarchy
from repro.anonymity.kanonymity import FullDomainGeneralizer, class_sizes
from repro.inference.bounds import (
    AggregateConstraints,
    cell_bounds,
    propagate_intervals,
)
from repro.kernels import SCALAR_ENV
from repro.metrics.privacy_loss import budget_fixed_point
from repro.statdb.laplace import LaplaceMechanism
from repro.testing.faults import build_flaky_system


@contextmanager
def kernel_env(scalar):
    previous = os.environ.get(SCALAR_ENV)
    os.environ[SCALAR_ENV] = "1" if scalar else ""
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(SCALAR_ENV, None)
        else:
            os.environ[SCALAR_ENV] = previous


def best_of(fn, repeats):
    """Best wall time over ``repeats`` runs, in ms, with GC paused.

    The scalar reference arms are allocation-heavy (dicts of tuples), so
    a collection landing inside one run skews the ratio; pausing GC
    during timing removes that noise source for both arms equally.
    """
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        best = float("inf")
        for _ in range(max(1, repeats)):
            started = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - started)
    finally:
        if was_enabled:
            gc.enable()
    return best * 1000.0  # ms


def both_modes(fn, repeats):
    with kernel_env(scalar=True):
        scalar_ms = best_of(fn, repeats)
    with kernel_env(scalar=False):
        vectorized_ms = best_of(fn, repeats)
    return {
        "scalar_ms": round(scalar_ms, 3),
        "vectorized_ms": round(vectorized_ms, 3),
        "speedup": round(scalar_ms / vectorized_ms, 2),
    }


# -- kernel inputs (seeded, shared by timing and smoke tests) -----------------

def solver_problem():
    """A 4x6 bound problem: 24 unknowns, stds + column-mean constraints.

    Larger than Figure 1's 3x4 so the per-cell sweep dominates — the
    shape where the scalar per-constraint closures hurt most.
    """
    rng = random.Random(1)
    n_rows, n_cols = 4, 6
    table = [[rng.uniform(20.0, 90.0) for _ in range(n_cols)]
             for _ in range(n_rows)]
    return AggregateConstraints(
        n_rows, n_cols, {0: [row[0] for row in table]},
        row_means=[sum(row) / n_cols for row in table],
        row_stds=[float(np.std(row, ddof=1)) for row in table],
        column_means={1: sum(row[1] for row in table) / n_rows},
    )


def propagation_problem():
    rng = random.Random(2)
    n_rows, n_cols = 24, 10
    table = [[rng.uniform(0.0, 100.0) for _ in range(n_cols)]
             for _ in range(n_rows)]
    return AggregateConstraints(
        n_rows, n_cols, {0: [row[0] for row in table]},
        row_means=[sum(row) / n_cols for row in table],
        column_means={
            j: sum(row[j] for row in table) / n_rows for j in (1, 2, 3)
        },
    )


def qi_table(n=100_000):
    rng = random.Random(3)
    return [
        {"age": rng.randrange(100), "zip": rng.randrange(30),
         "sex": rng.randrange(2)}
        for _ in range(n)
    ]


def lattice_records(n=800):
    rng = random.Random(4)
    return [
        {"age": rng.randrange(20, 80), "visits": rng.randrange(10)}
        for _ in range(n)
    ]


def loss_profile(n=300):
    rng = random.Random(5)
    losses = {f"s{i}": rng.random() * 0.2 for i in range(n)}
    budgets = {f"s{i}": 0.5 + rng.random() * 0.5 for i in range(0, n, 2)}
    return losses, budgets


POSE_QUERIES = 256
POSE_REQUESTERS = 8


def pose_workload():
    """256 queries over 8 requesters: 45 MAXLOSS variants per requester."""
    per_requester = POSE_QUERIES // POSE_REQUESTERS
    return {
        f"r{r:02d}": [
            f"SELECT //patient/age PURPOSE research MAXLOSS 0.{50 + i % 45:02d}"
            for i in range(per_requester)
        ]
        for r in range(POSE_REQUESTERS)
    }


def run_pose_looped(system, workload):
    rows = 0
    for requester, queries in workload.items():
        for text in queries:
            rows += len(system.query(text, requester=requester).rows)
    return rows


def run_pose_batched(system, workload):
    rows = 0
    for requester, queries in workload.items():
        for outcome in system.pose_many(queries, requester=requester):
            rows += len(outcome.unwrap().rows)
    return rows


def pose_lane(repeats):
    workload = pose_workload()
    looped_ms, batched_ms = float("inf"), float("inf")
    looped_rows = batched_rows = None
    for _ in range(max(1, repeats)):
        looped_system, _ = build_flaky_system(4, seed=7)
        looped_ms = min(looped_ms, best_of(
            lambda: run_pose_looped(looped_system, workload), 1
        ))
        looped_rows = run_pose_looped(looped_system, workload)

        batched_system, _ = build_flaky_system(4, seed=7)
        batched_ms = min(batched_ms, best_of(
            lambda: run_pose_batched(batched_system, workload), 1
        ))
        batched_rows = run_pose_batched(batched_system, workload)
    assert batched_rows == looped_rows  # identical outcomes, or no lane
    return {
        "queries": POSE_QUERIES,
        "sources": 4,
        "requesters": POSE_REQUESTERS,
        "rows": looped_rows,
        "looped_ms_per_query": round(looped_ms / POSE_QUERIES, 3),
        "pose_many_ms_per_query": round(batched_ms / POSE_QUERIES, 3),
        "speedup": round(looped_ms / batched_ms, 2),
    }


def solver_lane(repeats):
    solver = solver_problem()
    return both_modes(
        lambda: cell_bounds(solver, starts=2, seed=0), repeats
    )


def kanon_lane(repeats):
    records = qi_table()
    return both_modes(
        lambda: class_sizes(records, ("age", "zip", "sex")), repeats
    )


def lattice_lane(repeats):
    generalizer = FullDomainGeneralizer([
        interval_hierarchy("age", [5, 10, 20]),
        interval_hierarchy("visits", [2, 4]),
    ])
    lattice = lattice_records()
    return both_modes(
        lambda: generalizer.anonymize(lattice, 3, max_suppressed=10),
        repeats,
    )


def laplace_lane(repeats):
    return both_modes(
        lambda: LaplaceMechanism(0.5, rng=11).answer_many(
            [0.0] * 50_000, range(50_000)
        ),
        repeats,
    )


def fixed_point_lane(repeats):
    losses, budgets = loss_profile()
    return both_modes(
        lambda: budget_fixed_point(losses, budgets), repeats
    )


def propagation_lane(repeats):
    propagation = propagation_problem()
    with kernel_env(scalar=False):
        return {
            "vectorized_ms": round(
                best_of(lambda: propagate_intervals(propagation), repeats), 3
            ),
            "note": "no scalar reference: vectorized-only observatory path",
        }


#: Lane name -> callable(repeats) -> JSON cell.  The regression check
#: re-measures individual lanes through this registry.
LANES = {
    "solver_sweep": solver_lane,
    "kanon_counting": kanon_lane,
    "lattice_search": lattice_lane,
    "laplace_batch": laplace_lane,
    "loss_fixed_point": fixed_point_lane,
    "interval_propagation": propagation_lane,
    "pose_many": pose_lane,
}


def collect_results(repeats=1):
    """Every kernel lane as a JSON-serializable dict (for run_all)."""
    return {name: lane(repeats) for name, lane in LANES.items()}


# -- pytest smoke lanes --------------------------------------------------------

def test_kernel_speedups(report):
    results = collect_results(repeats=2)
    report(
        "=== KERN: vectorized kernels vs scalar references ===",
        f"{'lane':20s} {'scalar ms':>10s} {'vector ms':>10s} {'speedup':>8s}",
    )
    for lane, cell in results.items():
        if "speedup" not in cell:
            continue
        scalar = cell.get("scalar_ms", cell.get("looped_ms_per_query"))
        vector = cell.get("vectorized_ms",
                          cell.get("pose_many_ms_per_query"))
        report(f"{lane:20s} {scalar:>10.3f} {vector:>10.3f} "
               f"{cell['speedup']:>7.2f}x")
    assert results["solver_sweep"]["speedup"] >= 5.0
    assert results["kanon_counting"]["speedup"] >= 5.0
    assert results["pose_many"]["speedup"] >= 3.0


def test_pose_many_matches_looped_rows(report):
    lane = pose_lane(repeats=1)
    report(
        "=== KERN: pose_many batch lane ===",
        f"{lane['queries']} queries, {lane['sources']} sources: "
        f"{lane['looped_ms_per_query']:.3f} -> "
        f"{lane['pose_many_ms_per_query']:.3f} ms/query "
        f"({lane['speedup']:.2f}x)",
    )
    assert lane["rows"] > 0


def check_regressions(results, baseline, tolerance):
    """Lanes whose fresh speedup regressed >``tolerance`` vs committed.

    Compares speedups, not milliseconds: both arms of a lane run on the
    same machine in the same process, so the ratio cancels absolute
    machine speed and only a genuine kernel regression (or severe CI
    noise) moves it.
    """
    failures = []
    for lane, cell in baseline.items():
        committed = cell.get("speedup")
        fresh = results.get(lane, {}).get("speedup")
        if committed is None or fresh is None:
            continue
        floor = committed * (1.0 - tolerance)
        if fresh < floor:
            failures.append(
                f"{lane}: speedup {fresh:.2f}x < {floor:.2f}x "
                f"(committed {committed:.2f}x - {tolerance:.0%})"
            )
    return failures


def main(argv=None):
    import argparse
    import json
    import sys

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI setting: force repeats=1")
    parser.add_argument("--repeats", type=int, default=3,
                        help="best-of repeats per lane")
    parser.add_argument("--check", metavar="BASELINE.json",
                        help="fail when a lane's speedup regresses past "
                             "--tolerance vs this committed baseline")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="allowed relative speedup regression "
                             "(default 0.10)")
    args = parser.parse_args(argv)
    repeats = 1 if args.smoke else args.repeats

    results = collect_results(repeats=repeats)
    if args.check:
        with open(args.check) as handle:
            payload = json.load(handle)
        baseline = payload.get("results", payload)  # run_all wraps results
        failures = check_regressions(results, baseline, args.tolerance)
        if failures and repeats < 3:
            # Smoke timings are single-shot: before failing CI, re-run
            # just the regressed lanes at best-of-3 — scheduler noise
            # shrinks with repeats, a real kernel regression does not.
            for failure in failures:
                lane = failure.split(":", 1)[0]
                results[lane] = LANES[lane](3)
            failures = check_regressions(results, baseline, args.tolerance)
        print(json.dumps(results, indent=2))
        for failure in failures:
            print(f"REGRESSION {failure}", file=sys.stderr)
        return 1 if failures else 0
    print(json.dumps(results, indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
