"""Experiment A9: distributed association mining with secure union (paper §2).

Horizontally partitioned prescription baskets across three sites, mined
two ways: centralized Apriori over pooled plaintext (the baseline the
paper says privacy concerns forbid) and the Kantarcioglu–Clifton protocol
(commutative-cipher secure union + masked secure sums).

Expected shape: identical rule sets; the privacy overhead is a constant
factor dominated by modular exponentiations, scaling with the number of
locally frequent itemsets.
"""

import random

import pytest

from repro.crypto import TEST_GROUP
from repro.mining import PartitionedMiner, apriori, association_rules

N_PER_SITE = 150
MIN_SUPPORT = 0.25
MIN_CONFIDENCE = 0.7
ITEMS = ["metformin", "insulin", "statin", "aspirin", "lisinopril",
         "warfarin", "atenolol"]


def site_baskets(seed, n=N_PER_SITE):
    rng = random.Random(seed)
    baskets = []
    for _ in range(n):
        basket = {i for i in ITEMS if rng.random() < 0.25}
        if rng.random() < 0.45:
            basket |= {"metformin", "statin"}
        if rng.random() < 0.35:
            basket |= {"aspirin", "atenolol"}
        baskets.append(basket or {"aspirin"})
    return baskets


@pytest.fixture(scope="module")
def sites():
    return [site_baskets(seed) for seed in (71, 72, 73)]


def centralized(sites):
    pooled = [b for site in sites for b in site]
    frequent = apriori(pooled, MIN_SUPPORT)
    return frequent, association_rules(frequent, MIN_CONFIDENCE)


def distributed(sites):
    miner = PartitionedMiner(
        sites, MIN_SUPPORT, group=TEST_GROUP, rng=random.Random(99)
    )
    frequent = miner.globally_frequent()
    return frequent, association_rules(frequent, MIN_CONFIDENCE), miner


def test_centralized_cost(benchmark, sites):
    benchmark(centralized, sites)


def test_distributed_cost(benchmark, sites):
    benchmark.pedantic(distributed, args=(sites,), rounds=1, iterations=1)


def test_same_rules_report(benchmark, report, sites):
    import time

    def run_both():
        start = time.perf_counter()
        central_frequent, central_rules = centralized(sites)
        central_elapsed = time.perf_counter() - start
        start = time.perf_counter()
        dist_frequent, dist_rules, miner = distributed(sites)
        dist_elapsed = time.perf_counter() - start
        return (central_frequent, central_rules, central_elapsed,
                dist_frequent, dist_rules, dist_elapsed, miner)

    (central_frequent, central_rules, central_elapsed,
     dist_frequent, dist_rules, dist_elapsed, miner) = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    report(
        f"=== A9: distributed vs centralized mining "
        f"({len(sites)} sites x {N_PER_SITE} baskets) ===",
        f"frequent itemsets: centralized={len(central_frequent)} "
        f"distributed={len(dist_frequent)}",
        f"rules:             centralized={len(central_rules)} "
        f"distributed={len(dist_rules)}",
        f"time:              centralized={central_elapsed * 1e3:.1f} ms "
        f"distributed={dist_elapsed * 1e3:.1f} ms "
        f"(overhead {dist_elapsed / central_elapsed:.0f}x)",
        f"protocol cost:     {miner.union_wire_messages} union ciphertexts, "
        f"{miner.secure_sums_run} secure sums",
    )
    for a, c, support, confidence, _lift in dist_rules[:4]:
        report(f"   rule: {sorted(a)} → {sorted(c)} "
               f"(s={support:.2f}, c={confidence:.2f})")

    assert set(dist_frequent) == set(central_frequent)
    for itemset, support in dist_frequent.items():
        assert support == pytest.approx(central_frequent[itemset])
    assert [
        (tuple(sorted(a)), tuple(sorted(c))) for a, c, *_ in dist_rules
    ] == [
        (tuple(sorted(a)), tuple(sorted(c))) for a, c, *_ in central_rules
    ]
