"""Durability tax and recovery cost of the persistence layer.

Two questions an operator asks before turning on
``PrivateIye(persistence=...)``:

* **poses/sec** — what does the write-ahead append cost per pose,
  backend by backend, against the in-memory baseline?  The fsynced
  JSONL WAL and ``synchronous=FULL`` sqlite pay one disk barrier per
  pose (the price of surviving power loss); their relaxed settings
  (``fsync=False``, ``synchronous=NORMAL``) show the share of the tax
  that is the barrier rather than the serialization.
* **recovery time vs log length** — how long is the restart window?
  ``recover()`` replays snapshot + log and re-verifies the journal's
  sha256 chain, so the cost is linear in the un-compacted tail.

Representative numbers (this container, 20-row source, best of 3)::

    BENCH_PERSISTENCE write-ahead durability tax
        backend      poses/sec   vs memory
           none         1050/s           -
         memory          990/s       1.00x
    wal-nofsync          940/s       0.95x
     sqlite-....          610/s       0.62x
            wal          180/s       0.18x

Usage::

    PYTHONPATH=src python benchmarks/bench_persistence.py           # full
    PYTHONPATH=src python benchmarks/bench_persistence.py --smoke   # CI

``--smoke`` runs one small cell per backend and exits non-zero unless
recovery reproduces the live run's cumulative disclosure exactly and
the journal chain verifies — the correctness gate; throughput is
reported but never gated (CI disks are too noisy).
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

from repro import PrivateIye
from repro.persistence import PersistenceSink
from repro.persistence.sqlite import SqliteBackend
from repro.persistence.wal import WalBackend
from repro.relational import Table

POLICIES = """
VIEW s1_private { PRIVATE //patient/hba1c FORM aggregate; }

POLICY s1 DEFAULT deny {
    ALLOW //patient/hba1c FOR research FORM aggregate MAXLOSS 0.9;
}
"""

AGGREGATE = "SELECT AVG(//patient/hba1c) AS mean PURPOSE research"
REQUESTER = "bench-persistence"


def make_sink(backend_name, directory):
    """A fresh sink for ``backend_name`` under ``directory`` (or None)."""
    if backend_name == "none":
        return None
    if backend_name == "memory":
        return True
    root = Path(directory)
    if backend_name == "wal":
        return PersistenceSink(WalBackend(root / "wal"))
    if backend_name == "wal-nofsync":
        return PersistenceSink(WalBackend(root / "wal-nofsync",
                                          fsync=False))
    if backend_name == "sqlite-full":
        return PersistenceSink(SqliteBackend(root / "full.sqlite"))
    if backend_name == "sqlite-normal":
        return PersistenceSink(SqliteBackend(root / "normal.sqlite",
                                             synchronous="NORMAL"))
    raise ValueError(f"unknown backend {backend_name!r}")


def build(persistence):
    system = PrivateIye(telemetry=True, observatory=True,
                        persistence=persistence)
    system.load_policies(POLICIES, view_source={"s1_private": "s1"})
    rows = [{"hba1c": 60.0 + i} for i in range(20)]
    system.add_relational_source("s1", Table.from_dicts("patients", rows))
    return system


def time_poses(system, poses):
    started = time.perf_counter()
    for _ in range(poses):
        system.query(AGGREGATE, requester=REQUESTER)
    return time.perf_counter() - started


def run_throughput_cell(backend_name, poses, repeats):
    """Best-of-``repeats`` poses/sec for one backend."""
    best = float("inf")
    for _ in range(repeats):
        with tempfile.TemporaryDirectory() as scratch:
            system = build(make_sink(backend_name, scratch))
            elapsed = time_poses(system, poses)
            if system.persistence is not None:
                system.persistence.close()
            best = min(best, elapsed)
    return {
        "backend": backend_name,
        "poses": poses,
        "elapsed_s": best,
        "poses_per_sec": poses / max(best, 1e-9),
    }


def run_recovery_cell(backend_name, poses, repeats, snapshot_every=None):
    """Recovery wall-clock and correctness for one log length.

    Builds a deployment, poses ``poses`` times, simulates the crash
    (close, discard), rebuilds, and times ``recover()``.  Returns the
    timing plus the correctness verdict: recovered cumulative loss must
    equal the live run's, and the journal chain must verify.
    """
    best = float("inf")
    verdicts = []
    for _ in range(repeats):
        with tempfile.TemporaryDirectory() as scratch:
            if backend_name == "wal":
                make = lambda: PersistenceSink(
                    WalBackend(Path(scratch) / "wal"),
                    snapshot_every=snapshot_every,
                )
            else:
                make = lambda: PersistenceSink(
                    SqliteBackend(Path(scratch) / "store.sqlite"),
                    snapshot_every=snapshot_every,
                )
            system = build(make())
            for _ in range(poses):
                system.query(AGGREGATE, requester=REQUESTER)
            expected = system.audit_journal().cumulative_loss(REQUESTER)
            system.persistence.close()

            rebuilt = build(make())
            started = time.perf_counter()
            report = rebuilt.recover()
            elapsed = time.perf_counter() - started
            best = min(best, elapsed)
            journal = rebuilt.audit_journal()
            verdicts.append(
                report.chain_valid
                and journal.verify_chain() == (True, None)
                and abs(journal.cumulative_loss(REQUESTER) - expected)
                < 1e-12
            )
            rebuilt.persistence.close()
    return {
        "backend": backend_name,
        "poses": poses,
        "snapshot_every": snapshot_every,
        "recovery_ms": best * 1000.0,
        "recovered_exactly": all(verdicts),
    }


def print_throughput(cells):
    print("BENCH_PERSISTENCE write-ahead durability tax")
    baseline = next(
        (c["poses_per_sec"] for c in cells if c["backend"] == "none"), None
    )
    print(f"{'backend':>14} {'poses/sec':>12} {'vs none':>10}")
    for cell in cells:
        ratio = (f"{cell['poses_per_sec'] / baseline:>9.2f}x"
                 if baseline else f"{'-':>10}")
        print(f"{cell['backend']:>14} {cell['poses_per_sec']:>10.0f}/s "
              f"{ratio}")


def print_recovery(cells):
    print("BENCH_PERSISTENCE recovery time vs log length")
    print(f"{'backend':>14} {'poses':>7} {'snapshot':>9} "
          f"{'recovery':>11} {'exact':>6}")
    for cell in cells:
        cadence = (str(cell["snapshot_every"])
                   if cell["snapshot_every"] else "off")
        print(f"{cell['backend']:>14} {cell['poses']:>7} {cadence:>9} "
              f"{cell['recovery_ms']:>9.1f}ms "
              f"{'yes' if cell['recovered_exactly'] else 'NO':>6}")


#: Backends in the throughput sweep, baseline first.
THROUGHPUT_BACKENDS = ("none", "memory", "wal-nofsync", "wal",
                       "sqlite-normal", "sqlite-full")


def collect_results(repeats=3):
    """The acceptance cells as a JSON-serializable dict (for run_all)."""
    throughput = [run_throughput_cell(name, poses=20, repeats=repeats)
                  for name in THROUGHPUT_BACKENDS]
    recovery = [run_recovery_cell(name, poses, repeats=repeats)
                for name in ("wal", "sqlite")
                for poses in (20, 60)]
    recovery.append(run_recovery_cell("wal", 60, repeats=repeats,
                                      snapshot_every=16))
    return {"throughput": throughput, "recovery": recovery}


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small cells; gate on recovery correctness")
    parser.add_argument("--repeats", type=int, default=3,
                        help="take the best of this many runs per cell")
    parser.add_argument("--json", action="store_true",
                        help="emit the results dict as JSON instead")
    args = parser.parse_args(argv)

    if args.smoke:
        throughput = [run_throughput_cell(name, poses=5, repeats=1)
                      for name in THROUGHPUT_BACKENDS]
        recovery = [run_recovery_cell(name, poses=10, repeats=1)
                    for name in ("wal", "sqlite")]
        if args.json:
            print(json.dumps({"throughput": throughput,
                              "recovery": recovery}, indent=2))
        else:
            print_throughput(throughput)
            print_recovery(recovery)
        broken = [c["backend"] for c in recovery
                  if not c["recovered_exactly"]]
        if broken:
            print(f"SMOKE FAIL: recovery diverged on {broken}",
                  file=sys.stderr)
            return 1
        print("SMOKE OK: both backends recovered the exact accounting")
        return 0

    results = collect_results(repeats=args.repeats)
    if args.json:
        print(json.dumps(results, indent=2))
    else:
        print_throughput(results["throughput"])
        print()
        print_recovery(results["recovery"])
    return 0


if __name__ == "__main__":
    sys.exit(main())
