"""Experiment A7: private deduplication in the result integrator (paper §5).

Duplicate-laden two-source patient records (with typos) are linked three
ways: plaintext Fellegi–Sunter (the non-private baseline), Bloom-filter
encodings, and exact PSI.  We report precision/recall and cost.

Expected shape: Bloom linkage matches plaintext accuracy (both tolerate
typos) at modest extra cost; PSI is exact-only (misses typos, perfect
precision) and costs the most; the private methods never expose plaintext
identifiers to the matcher.
"""

import random

import pytest

from repro.crypto import TEST_GROUP
from repro.data.names import introduce_typo, person_names
from repro.linkage import (
    BloomRecordEncoder,
    FellegiSunter,
    FieldComparison,
    bloom_link,
    link_tables,
    psi_link_exact,
)

N_SHARED = 30
N_UNIQUE = 40
TYPO_RATE = 0.3


def rosters(seed=21):
    rng = random.Random(seed)
    names = person_names(N_SHARED + 2 * N_UNIQUE, seed=seed)
    shared = [
        {"pid": i, "first": f, "last": l,
         "dob": f"19{40 + i % 60:02d}-0{1 + i % 9}-15"}
        for i, (f, l) in enumerate(names[:N_SHARED])
    ]
    a_only = [
        {"pid": 1000 + i, "first": f, "last": l, "dob": "1960-01-01"}
        for i, (f, l) in enumerate(names[N_SHARED:N_SHARED + N_UNIQUE])
    ]
    b_only = [
        {"pid": 2000 + i, "first": f, "last": l, "dob": "1970-02-02"}
        for i, (f, l) in enumerate(names[N_SHARED + N_UNIQUE:])
    ]
    side_a = shared + a_only
    side_b = [dict(p) for p in shared] + b_only
    n_typos = 0
    for record in side_b[:N_SHARED]:
        if rng.random() < TYPO_RATE:
            record["last"] = introduce_typo(record["last"], rng)
            n_typos += 1
    return side_a, side_b, n_typos


def truth_pairs(side_a, side_b):
    return {
        (a["pid"], b["pid"])
        for a in side_a for b in side_b if a["pid"] == b["pid"]
    }


def plaintext_links(side_a, side_b):
    classifier = FellegiSunter(
        [FieldComparison("first", m=0.95, u=0.03),
         FieldComparison("last", m=0.95, u=0.03),
         FieldComparison("dob", m=0.98, u=0.01,
                         similarity=lambda a, b: float(a == b), threshold=1.0)],
        upper=4.0,
    )
    return {
        (a["pid"], b["pid"]) for a, b, _s in link_tables(side_a, side_b, classifier)
    }


def bloom_links(side_a, side_b):
    encoder = BloomRecordEncoder(
        ["first", "last", "dob"], size=512, num_hashes=4, secret="a7"
    )
    return {
        (a["pid"], b["pid"])
        for a, b, _s in bloom_link(side_a, side_b, encoder, threshold=0.8)
    }


def psi_links(side_a, side_b):
    digests_a = {}
    shared, matched_a, matched_b = psi_link_exact(
        side_a, side_b, ["first", "last", "dob"],
        group=TEST_GROUP, rng=random.Random(9),
    )
    del digests_a, shared
    return {(a["pid"], b["pid"]) for a, b in zip(matched_a, matched_b)}


def precision_recall(found, truth):
    if not found:
        return 0.0, 0.0
    true_positives = len(found & truth)
    return true_positives / len(found), true_positives / len(truth)


METHODS = {
    "plaintext-FS": plaintext_links,
    "bloom": bloom_links,
    "psi-exact": psi_links,
}


@pytest.mark.parametrize("name", list(METHODS))
def test_dedup_method_cost(benchmark, name):
    side_a, side_b, _typos = rosters()
    benchmark.pedantic(
        METHODS[name], args=(side_a, side_b), rounds=1, iterations=1
    )


def test_accuracy_report(benchmark, report):
    side_a, side_b, n_typos = rosters()
    truth = truth_pairs(side_a, side_b)

    def run_all():
        return {name: fn(side_a, side_b) for name, fn in METHODS.items()}

    found = benchmark.pedantic(run_all, rounds=1, iterations=1)
    report(
        f"=== A7: private dedup ({N_SHARED} true duplicates, "
        f"{n_typos} with typos) ===",
        f"{'method':>14s} {'precision':>10s} {'recall':>8s}",
    )
    scores = {}
    for name, pairs in found.items():
        precision, recall = precision_recall(pairs, truth)
        scores[name] = (precision, recall)
        report(f"{name:>14s} {precision:10.2f} {recall:8.2f}")

    assert scores["plaintext-FS"][1] >= 0.95   # near-perfect baseline
    assert scores["bloom"][1] >= scores["plaintext-FS"][1] - 0.1
    assert scores["psi-exact"][0] == 1.0       # exact: no false positives
    expected_psi_recall = (N_SHARED - n_typos) / N_SHARED
    assert scores["psi-exact"][1] == pytest.approx(expected_psi_recall, abs=0.01)
