"""Always-on observatory overhead on the Figure-1 pose workload.

The acceptance cell for the performance-observatory PR: the same
8-source mediation workload (the Figure 1 healthcare deployment shape,
real ``RemoteSource`` pipelines, no simulated latency so mediation cost
dominates) is driven twice —

* **off**: telemetry enabled (spans, events, metrics — the baseline
  every prior PR already pays), observatory **not** running;
* **on**: a :class:`~repro.telemetry.obs.PerfObservatory` running the
  whole time — sampling profiler at ``--hz``, SLO engine ticking on its
  own thread, flight recorder attached to the event log.

The headline number is the **overhead fraction** ``(on - off) / off``
over process CPU time, the median over ``--repeats`` matched pairs
(each pair interleaves best-of-3 off/on drives; see :func:`run_pair`
and :func:`timed_drive` for why CPU time and why pairs).  The
observatory's design budget is 5%:
the profiler folds samples into a bounded table, the recorder listener
is test-and-return, and the SLO engine reads instruments that already
exist — none of it adds work to the pose path itself.

Each run also exercises the anomaly path once: a forced flight dump at
the end writes ``flight-0001.json`` into ``--bundle-dir`` (default
``benchmarks/results/flight/``), which CI uploads as the sample-bundle
artifact.

Usage::

    PYTHONPATH=src python benchmarks/bench_obs.py            # full cell
    PYTHONPATH=src python benchmarks/bench_obs.py --smoke    # CI gate
    PYTHONPATH=src python benchmarks/bench_obs.py --json benchmarks/BENCH_obs.json

``--smoke`` runs a smaller pose count and exits non-zero when the
overhead fraction exceeds ``--max-overhead`` (default 0.05) — the CI
gate that keeps the observatory honest about measuring itself.
"""

from __future__ import annotations

import argparse
import gc
import json
import sys
import time
from pathlib import Path

from repro.telemetry.obs import PerfObservatory
from repro.testing import build_flaky_system

HERE = Path(__file__).resolve().parent

QUERY = "SELECT //patient/age PURPOSE research MAXLOSS 0.9"
N_SOURCES = 8
#: The committed overhead budget: always-on observation may cost at most
#: this fraction of the bare-telemetry pose workload.
MAX_OVERHEAD = 0.05


def build():
    """A fresh 8-source Figure-1-shaped deployment with telemetry on."""
    system, _ = build_flaky_system(N_SOURCES, telemetry=True, seed=42)
    return system


def drive(system, poses):
    """Pose the workload ``poses`` times; returns wall-clock ms.

    ``use_warehouse=False`` forces full mediation every time (fragment,
    static-check, fan out, integrate, store) — the path the profiler
    must attribute and the observatory must not slow down.  Requesters
    rotate so no single history grows unboundedly.
    """
    engine = system.engine
    started = time.perf_counter()
    for index in range(poses):
        engine.pose(QUERY, requester=f"bench-obs-{index % 16}",
                    use_warehouse=False)
    return (time.perf_counter() - started) * 1000.0


def timed_drive(system, poses):
    """One measured drive; returns ``(cpu_ms, wall_ms)``.

    The overhead gate runs on **process CPU time**, not wall-clock: CPU
    time sums over every thread, so it charges the profiler's own
    sampling work honestly, while staying blind to co-tenant stalls —
    on this container wall-clock drifts ±15% between identical runs,
    which would drown a 5% budget.  The collector is forced and then
    paused so a GC cycle lands in neither mode's account.
    """
    gc.collect()
    gc.disable()
    try:
        cpu_started = time.process_time()
        wall_ms = drive(system, poses)
        cpu_ms = (time.process_time() - cpu_started) * 1000.0
    finally:
        gc.enable()
    return cpu_ms, wall_ms


def run_pair(poses, hz, bundle_dir, inner=3):
    """One matched off/on measurement; returns ``(off_ms, on_ms, info)``.

    Both deployments are built up front and warmed, then the timed
    drives alternate off/on ``inner`` times each, taking the best of
    each mode.  Interleaving is the point: this container's wall-clock
    drifts by ±15% between runs (CPU frequency, co-tenants), which
    swamps the overhead being measured — alternating modes within one
    pair exposes both to the same drift, and best-of discards the
    stalls.
    """
    system_off = build()
    system_on = build()
    obs = PerfObservatory(system_on.telemetry, hz=hz,
                          bundle_dir=bundle_dir, slo_interval=0.5)
    obs.start()
    try:
        drive(system_off, 4)  # warm both code paths before timing
        drive(system_on, 4)
        off = {"cpu": float("inf"), "wall": float("inf")}
        on = {"cpu": float("inf"), "wall": float("inf")}
        # ABBA ordering: a stall spanning consecutive drives lands on
        # both modes instead of biasing whichever always ran second.
        for index in range(inner):
            first, second = ((system_off, system_on) if index % 2 == 0
                             else (system_on, system_off))
            for system in (first, second):
                cpu_ms, wall_ms = timed_drive(system, poses)
                bucket = off if system is system_off else on
                bucket["cpu"] = min(bucket["cpu"], cpu_ms)
                bucket["wall"] = min(bucket["wall"], wall_ms)
    finally:
        obs.slo.tick()
        bundle = obs.recorder.dump(reason="bench-obs", force=True)
        obs.stop()
    profile = obs.profiler
    info = {
        "samples": profile.sample_count,
        "overflowed": profile.overflowed,
        "stage_totals": profile.stage_totals(),
        "slo": {name: entry["breached"]
                for name, entry in obs.slo.status().items()},
        "bundle_spans": len(bundle["spans"]),
        "bundle_events": len(bundle["events"]),
    }
    return off, on, info


def run_cell(poses, repeats, hz, bundle_dir):
    """``repeats`` matched pairs; the headline is the median overhead."""
    pairs = []
    info = {}
    for _ in range(repeats):
        off, on, info = run_pair(poses, hz, bundle_dir)
        pairs.append((off, on))
    ranked = sorted(
        ((on["cpu"] - off["cpu"]) / off["cpu"], off, on)
        for off, on in pairs
    )
    overheads = [entry[0] for entry in ranked]
    median, off, on = ranked[len(ranked) // 2]
    overhead = max(0.0, median)
    return {
        "sources": N_SOURCES,
        "poses": poses,
        "repeats": repeats,
        "hz": hz,
        "off_cpu_ms": round(off["cpu"], 3),
        "on_cpu_ms": round(on["cpu"], 3),
        "off_wall_ms": round(off["wall"], 3),
        "on_wall_ms": round(on["wall"], 3),
        "pair_overheads": [round(value, 4) for value in overheads],
        "overhead_fraction": round(overhead, 4),
        "budget_fraction": MAX_OVERHEAD,
        "within_budget": overhead <= MAX_OVERHEAD,
        "observatory": info,
    }


def collect_results(repeats=3, poses=None, hz=50.0, bundle_dir=None):
    """The acceptance cell as a JSON-serializable dict (for run_all)."""
    if poses is None:
        poses = 40 if repeats == 1 else 80
    if bundle_dir is None:
        bundle_dir = HERE / "results" / "flight"
    return run_cell(poses, repeats, hz, str(bundle_dir))


def print_table(cell):
    print("BENCH_OBS always-on observatory overhead "
          f"({cell['sources']} sources, {cell['poses']} poses, "
          f"{cell['hz']:g}Hz)")
    print(f" {'mode':>10} {'cpu':>12} {'wall-clock':>12}")
    print(f" {'off':>10} {cell['off_cpu_ms']:>10.1f}ms "
          f"{cell['off_wall_ms']:>10.1f}ms")
    print(f" {'on':>10} {cell['on_cpu_ms']:>10.1f}ms "
          f"{cell['on_wall_ms']:>10.1f}ms")
    pair_pct = ", ".join(f"{value * 100:+.1f}%"
                         for value in cell["pair_overheads"])
    print(f" overhead {cell['overhead_fraction'] * 100:.2f}% "
          f"(budget {cell['budget_fraction'] * 100:.0f}%; "
          f"pairs {pair_pct})  "
          f"samples={cell['observatory'].get('samples', 0)}")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI gate: small cell, enforce --max-overhead")
    parser.add_argument("--poses", type=int, default=None,
                        help="poses per run (default 80; 40 under --smoke)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="best-of repeats per mode")
    parser.add_argument("--hz", type=float, default=50.0,
                        help="profiler sampling rate")
    parser.add_argument("--max-overhead", type=float, default=MAX_OVERHEAD,
                        help="gate threshold as a fraction (smoke only)")
    parser.add_argument("--bundle-dir", type=Path,
                        default=HERE / "results" / "flight",
                        help="where the sample flight bundle lands")
    parser.add_argument("--json", type=Path, default=None,
                        help="also write the run_all-style JSON artifact")
    args = parser.parse_args(argv)
    repeats = args.repeats
    poses = args.poses
    if poses is None:
        poses = 40 if args.smoke else 80

    cell = run_cell(poses, repeats, args.hz, str(args.bundle_dir))
    print_table(cell)
    if args.json is not None:
        payload = {"bench": "obs", "generated_at": time.time(),
                   "results": cell}
        args.json.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {args.json}")
    if args.smoke and cell["overhead_fraction"] > args.max_overhead:
        print(f"SMOKE FAIL: overhead {cell['overhead_fraction']:.4f} > "
              f"budget {args.max_overhead:.4f}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
