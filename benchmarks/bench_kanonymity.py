"""Experiment A6: k-anonymity information loss vs k (paper §4's metric).

Sweeps k over a synthetic patient table and reports, for both full-domain
generalization (Samarati) and multidimensional Mondrian: precision /
information loss, discernibility, suppression, and measured disclosure
risk.

Expected shape: loss grows with k for both algorithms; Mondrian loses far
less information than full-domain generalization at every k; risk is
bounded by 1/k.
"""

import random

import pytest

from repro.anonymity import (
    FullDomainGeneralizer,
    interval_hierarchy,
    mdav_microaggregate,
    mondrian_partition,
    sse_information_loss,
)
from repro.anonymity.mondrian import anonymized_records
from repro.metrics import (
    disclosure_risk,
    discernibility,
    generalization_precision_loss,
)

KS = [2, 5, 10, 25, 50]
N_RECORDS = 400
QI = ["age", "income"]


def records(seed=8):
    rng = random.Random(seed)
    return [
        {"age": rng.randint(20, 80), "income": rng.randint(10, 150),
         "disease": rng.choice(["flu", "hiv", "cancer", "diabetes"])}
        for _ in range(N_RECORDS)
    ]


def hierarchies():
    return [
        interval_hierarchy("age", [5, 10, 20, 40]),
        interval_hierarchy("income", [10, 25, 50, 100]),
    ]


def full_domain(rows, k):
    generalizer = FullDomainGeneralizer(hierarchies())
    result = generalizer.anonymize(rows, k, max_suppressed=len(rows) // 10)
    loss = generalization_precision_loss(result.node, generalizer.lattice.hierarchies)
    return result.records, len(result.suppressed), loss


def mondrian(rows, k):
    partitions = mondrian_partition(rows, QI, k)
    released = anonymized_records(partitions, QI)
    # Mondrian's precision loss: mean normalized range width per partition.
    spans = {a: (min(r[a] for r in rows), max(r[a] for r in rows)) for a in QI}
    total, count = 0.0, 0
    for ranges, members in partitions:
        for attribute in QI:
            low, high = ranges[attribute]
            global_low, global_high = spans[attribute]
            width = (high - low) / max(1, global_high - global_low)
            total += width * len(members)
            count += len(members)
    return released, 0, total / count


@pytest.mark.parametrize("k", KS)
def test_full_domain_cost(benchmark, k):
    rows = records()
    benchmark.pedantic(full_domain, args=(rows, k), rounds=1, iterations=1)


@pytest.mark.parametrize("k", KS)
def test_mondrian_cost(benchmark, k):
    rows = records()
    benchmark.pedantic(mondrian, args=(rows, k), rounds=1, iterations=1)


@pytest.mark.parametrize("k", KS)
def test_mdav_cost(benchmark, k):
    rows = records()
    benchmark.pedantic(
        mdav_microaggregate, args=(rows, QI, k), rounds=1, iterations=1
    )


def test_loss_vs_k_report(benchmark, report):
    rows = records()

    def sweep():
        table = []
        for k in KS:
            fd_released, fd_suppressed, fd_loss = full_domain(rows, k)
            mo_released, _zero, mo_loss = mondrian(rows, k)
            md_released, _groups = mdav_microaggregate(rows, QI, k)
            table.append({
                "k": k,
                "fd_loss": fd_loss,
                "fd_dm": discernibility(fd_released, QI, fd_suppressed,
                                        len(rows)),
                "fd_suppressed": fd_suppressed,
                "fd_risk": disclosure_risk(fd_released, QI),
                "mo_loss": mo_loss,
                "mo_dm": discernibility(mo_released, QI),
                "mo_risk": disclosure_risk(mo_released, QI),
                "md_loss": sse_information_loss(rows, md_released, QI),
                "md_risk": disclosure_risk(md_released, QI),
            })
        return table

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        f"=== A6: anonymization loss vs k ({N_RECORDS} records) ===",
        f"{'k':>3s} | {'FD loss':>8s} {'FD DM':>8s} {'FD supp':>8s} "
        f"{'FD risk':>8s} | {'MO loss':>8s} {'MO DM':>8s} {'MO risk':>8s} "
        f"| {'MDAV loss':>9s} {'MDAV risk':>9s}",
    )
    for row in table:
        report(
            f"{row['k']:>3d} | {row['fd_loss']:8.3f} {row['fd_dm']:8d} "
            f"{row['fd_suppressed']:8d} {row['fd_risk']:8.3f} | "
            f"{row['mo_loss']:8.3f} {row['mo_dm']:8d} {row['mo_risk']:8.3f} "
            f"| {row['md_loss']:9.3f} {row['md_risk']:9.3f}"
        )
    fd_losses = [row["fd_loss"] for row in table]
    mo_losses = [row["mo_loss"] for row in table]
    md_losses = [row["md_loss"] for row in table]
    assert fd_losses == sorted(fd_losses)          # loss grows with k
    assert mo_losses == sorted(mo_losses)
    assert md_losses == sorted(md_losses)
    for row in table:
        assert row["mo_loss"] <= row["fd_loss"]    # Mondrian loses less
        assert row["md_loss"] <= row["fd_loss"]    # so does MDAV
        assert row["fd_risk"] <= 1.0 / row["k"] + 1e-9
        assert row["mo_risk"] <= 1.0 / row["k"] + 1e-9
        assert row["md_risk"] <= 1.0 / row["k"] + 1e-9
