"""Experiment A5: the R-U confidentiality map of the perturbation substrate.

Paper §2 cites Duncan's Risk-Utility map as the way to reason about
perturbation trade-offs.  We sweep the additive-noise scale sigma:

* **risk** — probability an adversary seeing the perturbed value pins the
  true value within ±2.5 units (measured empirically);
* **utility** — how well the Agrawal–Srikant reconstruction recovers the
  original distribution (1 − L1 histogram error).

Expected shape: a monotone frontier — risk falls and utility falls as
sigma grows; the map makes the operating-point choice explicit.
"""

import random

import pytest

from repro.metrics import RUPoint, ru_frontier
from repro.metrics.ru_map import pick_operating_point
from repro.mining import reconstruct_distribution
from repro.statdb import additive_noise

SIGMAS = [0.5, 1.0, 2.0, 4.0, 8.0, 16.0]
N_VALUES = 3000


def true_values(seed=3):
    rng = random.Random(seed)
    return [rng.gauss(60.0, 8.0) for _ in range(N_VALUES)]


def measure_point(sigma, values, seed=4):
    rng = random.Random(seed)
    noisy = additive_noise(values, sigma, rng)
    within = sum(
        1 for original, observed in zip(values, noisy)
        if abs(observed - original) <= 2.5
    )
    risk = within / len(values)
    reconstructed = reconstruct_distribution(
        noisy, sigma, bins=40, value_range=(20.0, 100.0)
    )
    utility = max(0.0, 1.0 - reconstructed.l1_error(values))
    return RUPoint(sigma, risk, utility)


@pytest.mark.parametrize("sigma", SIGMAS)
def test_ru_point_cost(benchmark, sigma):
    values = true_values()
    benchmark.pedantic(
        measure_point, args=(sigma, values), rounds=1, iterations=1
    )


def test_ru_map_report(benchmark, report):
    values = true_values()
    points = benchmark.pedantic(
        lambda: [measure_point(s, values) for s in SIGMAS],
        rounds=1, iterations=1,
    )
    report(
        f"=== A5: R-U confidentiality map (additive noise, "
        f"{N_VALUES} values) ===",
        f"{'sigma':>6s} {'risk':>7s} {'utility':>8s}",
    )
    for point in points:
        report(f"{point.parameter:6.1f} {point.risk:7.3f} {point.utility:8.3f}")

    risks = [p.risk for p in points]
    assert risks == sorted(risks, reverse=True)  # risk falls with sigma
    assert points[0].utility > points[-1].utility  # so does utility

    frontier = ru_frontier(points)
    chosen = pick_operating_point(points, max_risk=0.5)
    report(
        f"frontier size: {len(frontier)}/{len(points)}",
        f"steward's pick at max risk 0.5: sigma={chosen.parameter} "
        f"(risk {chosen.risk:.3f}, utility {chosen.utility:.3f})",
    )
    assert chosen.risk <= 0.5
