"""Sequential vs concurrent source fan-out — wall-clock comparison.

Runs the *same* mediation deployment (real `RemoteSource` pipelines
wrapped in deterministic `FlakySource` delay schedules) under the
blocking sequential dispatcher and the concurrent fan-out, across source
counts and fault rates.  Sequential wall-clock grows linearly with the
number of sources (latencies sum); concurrent wall-clock tracks the
slowest source (latencies max), which is the whole argument for the
dispatch layer.

Usage::

    PYTHONPATH=src python benchmarks/bench_fanout.py            # full grid
    PYTHONPATH=src python benchmarks/bench_fanout.py --smoke    # CI gate

``--smoke`` runs the acceptance configuration only — an 8-source plan
with 50 ms simulated per-source latency — and exits non-zero unless
concurrent dispatch is at least ``--min-speedup`` (default 3×) faster
than sequential, so CI catches any regression that serializes the
fan-out again.

Results print as a BENCH_FANOUT table; each cell is the best of
``--repeats`` runs to damp scheduler noise.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.mediator.dispatch import DispatchPolicy
from repro.testing import FaultSchedule, build_flaky_system

QUERY = "SELECT //patient/age PURPOSE research"


def delay_schedule_factory(latency_s, fault_rate, calls=64):
    """Per-source schedules: constant latency + seeded transient faults."""

    def schedule_for(name, index):
        if fault_rate <= 0.0:
            return FaultSchedule([("delay", latency_s)] * calls)
        seeded = FaultSchedule.seeded(
            seed=1000 + index, calls=calls,
            transient_rate=fault_rate, delay_rate=1.0 - fault_rate,
            delay_s=latency_s,
        )
        return seeded

    return schedule_for


def build(mode, n_sources, latency_s, fault_rate):
    policy = DispatchPolicy(
        mode=mode, retries=2, backoff_base_s=0.005, backoff_max_s=0.05,
        partial="best_effort",
    )
    system, _ = build_flaky_system(
        n_sources,
        schedule_for=delay_schedule_factory(latency_s, fault_rate),
        dispatch=policy,
        seed=42,
    )
    return system


def time_pose(system, repeats):
    """Best-of-``repeats`` wall-clock for one warehouse-bypassing pose."""
    best = float("inf")
    rows = None
    for attempt in range(repeats):
        query = f"{QUERY} MAXLOSS 0.9"
        started = time.perf_counter()
        result = system.engine.pose(
            query, requester=f"bench-{attempt}", use_warehouse=False
        )
        elapsed = time.perf_counter() - started
        best = min(best, elapsed)
        rows = len(result.rows)
    return best * 1000.0, rows


def run_cell(n_sources, latency_ms, fault_rate, repeats):
    latency_s = latency_ms / 1000.0
    sequential_system = build("sequential", n_sources, latency_s, fault_rate)
    concurrent_system = build("concurrent", n_sources, latency_s, fault_rate)
    sequential_ms, sequential_rows = time_pose(sequential_system, repeats)
    concurrent_ms, concurrent_rows = time_pose(concurrent_system, repeats)
    assert sequential_rows == concurrent_rows, (
        f"row mismatch: sequential={sequential_rows} "
        f"concurrent={concurrent_rows}"
    )
    return {
        "sources": n_sources,
        "latency_ms": latency_ms,
        "fault_rate": fault_rate,
        "sequential_ms": sequential_ms,
        "concurrent_ms": concurrent_ms,
        "speedup": sequential_ms / max(concurrent_ms, 1e-9),
    }


def print_table(cells):
    header = (
        f"{'sources':>8} {'latency':>8} {'faults':>7} "
        f"{'sequential':>12} {'concurrent':>12} {'speedup':>8}"
    )
    print("BENCH_FANOUT sequential vs concurrent dispatch wall-clock")
    print(header)
    for cell in cells:
        print(
            f"{cell['sources']:>8} {cell['latency_ms']:>6.0f}ms "
            f"{cell['fault_rate']:>7.2f} "
            f"{cell['sequential_ms']:>10.1f}ms "
            f"{cell['concurrent_ms']:>10.1f}ms "
            f"{cell['speedup']:>7.1f}x"
        )


def collect_results(repeats=3):
    """The acceptance cell as a JSON-serializable dict (for run_all)."""
    return {"cells": [run_cell(n_sources=8, latency_ms=50.0, fault_rate=0.0,
                               repeats=repeats)]}


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="acceptance cell only; gate on --min-speedup")
    parser.add_argument("--min-speedup", type=float, default=3.0,
                        help="smoke: required sequential/concurrent ratio")
    parser.add_argument("--repeats", type=int, default=3,
                        help="take the best of this many runs per cell")
    args = parser.parse_args(argv)

    if args.smoke:
        cell = run_cell(n_sources=8, latency_ms=50.0, fault_rate=0.0,
                        repeats=args.repeats)
        print_table([cell])
        if cell["speedup"] < args.min_speedup:
            print(
                f"SMOKE FAIL: speedup {cell['speedup']:.1f}x < "
                f"{args.min_speedup:.1f}x",
                file=sys.stderr,
            )
            return 1
        print(f"SMOKE OK: speedup {cell['speedup']:.1f}x "
              f">= {args.min_speedup:.1f}x")
        return 0

    cells = []
    for n_sources in (2, 4, 8):
        for fault_rate in (0.0, 0.2):
            cells.append(
                run_cell(n_sources, latency_ms=50.0, fault_rate=fault_rate,
                         repeats=args.repeats)
            )
    print_table(cells)
    return 0


if __name__ == "__main__":
    sys.exit(main())
