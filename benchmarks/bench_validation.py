"""Residual risk per defense: the adversary zoo as a benchmark.

Two questions an operator asks before trusting an ablation:

* **residual risk** — for each adversary in the zoo (view composition,
  constraint-aware, colluding requesters) and each single defense
  (k-anonymity, Laplace perturbation, inference guard, audit refusal),
  how much of the confidential Figure 1 matrix can the adversary still
  measure?  The headline is ``residual_risk`` — the mean of
  re-identification risk and per-cell disclosure — and the zoo's core
  claim is that every armed defense strictly lowers it against the
  all-off baseline.
* **scoring latency** — what does one full adversary run plus metric
  scoring cost?  The matrix is CI-sized, but the bound solver (SLSQP
  multistarts) dominates, so the latency cell tracks regressions there.

Representative numbers (this container, starts=1)::

    BENCH_VALIDATION residual risk per defense
        adversary      none   kanon  laplace   guard  refusal
      composition     0.999   0.583    0.770   0.875    0.778
 constraint_aware     0.999   0.583    0.903   0.875    0.897
        colluders     0.999   0.583    0.744   0.875    0.778

Usage::

    PYTHONPATH=src python benchmarks/bench_validation.py           # full
    PYTHONPATH=src python benchmarks/bench_validation.py --smoke   # CI

``--smoke`` runs one adversary against every defense and exits non-zero
unless each defense strictly reduces residual risk — the correctness
gate; latency is reported but never gated.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.validation import (
    CompositionAttacker,
    ZooDefenses,
    default_adversaries,
    run_adversary,
)

STARTS = 1  # bound-solver multistarts; 1 keeps the sweep CI-sized
LABELS = ("none",) + ZooDefenses.NAMES


def _defenses(label):
    return ZooDefenses() if label == "none" else ZooDefenses.single(label)


def run_cell(adversary, label, starts=STARTS):
    """One adversary × defense run as a flat JSON-serializable dict."""
    started = time.perf_counter()
    outcome = run_adversary(adversary, _defenses(label), starts=starts)
    elapsed = time.perf_counter() - started
    return {
        "adversary": outcome.adversary,
        "defense": label,
        "residual_risk": outcome.residual_risk,
        "cell_disclosure": outcome.cell_disclosure,
        "reidentification_risk":
            outcome.summary["anonymity"]["reidentification_risk"],
        "reconstruction_error":
            outcome.summary["statdb"]["reconstruction_error"],
        "interval_tightness":
            outcome.summary["inference"]["interval_tightness"],
        "refusals": len(outcome.view.refusals),
        "pooled_budget": outcome.view.pooled_budget,
        "elapsed_s": elapsed,
    }


def run_latency_cell(repeats):
    """Best-of-``repeats`` wall-clock for one baseline composition run."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        run_adversary(CompositionAttacker(), ZooDefenses(), starts=STARTS)
        best = min(best, time.perf_counter() - started)
    return {"adversary": "composition", "defense": "none",
            "starts": STARTS, "best_s": best}


def collect_results(repeats=3):
    """The acceptance cells as a JSON-serializable dict (for run_all)."""
    matrix = [
        run_cell(adversary, label)
        for adversary in default_adversaries()
        for label in LABELS
    ]
    return {
        "starts": STARTS,
        "matrix": matrix,
        "latency": run_latency_cell(repeats),
    }


def print_matrix(cells):
    print("BENCH_VALIDATION residual risk per defense")
    rows = {}
    for cell in cells:
        rows.setdefault(cell["adversary"], {})[cell["defense"]] = cell
    print(f"{'adversary':>17} " + " ".join(f"{l:>8}" for l in LABELS))
    for adversary, row in rows.items():
        print(f"{adversary:>17} " + " ".join(
            f"{row[l]['residual_risk']:>8.3f}" if l in row else f"{'-':>8}"
            for l in LABELS
        ))


def gate(cells):
    """Every defense must strictly lower risk vs its own baseline."""
    rows = {}
    for cell in cells:
        rows.setdefault(cell["adversary"], {})[cell["defense"]] = (
            cell["residual_risk"]
        )
    broken = [
        (adversary, defense)
        for adversary, row in rows.items()
        for defense in row
        if defense != "none" and row[defense] >= row["none"]
    ]
    return broken


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="one adversary; gate on strict risk drops")
    parser.add_argument("--repeats", type=int, default=3,
                        help="best-of repeats for the latency cell")
    parser.add_argument("--json", action="store_true",
                        help="emit the results dict as JSON instead")
    args = parser.parse_args(argv)

    if args.smoke:
        cells = [run_cell(CompositionAttacker(), label)
                 for label in LABELS]
        if args.json:
            print(json.dumps({"starts": STARTS, "matrix": cells},
                             indent=2))
        else:
            print_matrix(cells)
        broken = gate(cells)
        if broken:
            print(f"SMOKE FAIL: no strict risk drop for {broken}",
                  file=sys.stderr)
            return 1
        print("SMOKE OK: every defense strictly reduced residual risk")
        return 0

    results = collect_results(repeats=args.repeats)
    if args.json:
        print(json.dumps(results, indent=2))
    else:
        print_matrix(results["matrix"])
        latency = results["latency"]
        print(f"latency: one composition run at starts={STARTS}: "
              f"{latency['best_s']:.2f}s (best of {args.repeats})")
        broken = gate(results["matrix"])
        if broken:
            print(f"WARNING: no strict risk drop for {broken}",
                  file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
