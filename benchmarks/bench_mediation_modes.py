"""Experiment A4: virtual vs warehouse vs hybrid mediation (paper §5).

"We take the hybrid approach due to the quick-response needed during
emergency situations."  A surveillance workload runs 60 logical days: a
daily situation report (repeated query), occasional novel analyst queries,
and emergency checks during the outbreak peak.  We report total source
calls (cost/latency proxy), mean answer staleness, and the staleness of
the *emergency* answers specifically.

Expected shape: virtual is freshest but most expensive; warehouse is cheap
but serves stale emergency answers; hybrid matches warehouse cost closely
while keeping emergency answers fresh.
"""

import random

import pytest

from repro.mediator import Warehouse

DAYS = 60
EMERGENCY_DAYS = {30, 31, 32, 40, 41}


def run_workload(mode, seed=5, telemetry=None):
    rng = random.Random(seed)
    warehouse = Warehouse(mode=mode, refresh_interval=7, max_staleness=3,
                          telemetry=telemetry)
    compute_calls = {"n": 0}

    def compute():
        compute_calls["n"] += 1
        return f"snapshot@{warehouse.clock}"

    staleness_all = []
    staleness_emergency = []
    for day in range(DAYS):
        warehouse.tick()
        emergency = day in EMERGENCY_DAYS
        _result, stats = warehouse.answer(
            "daily-situation-report", compute, n_sources=5,
            emergency=emergency,
        )
        staleness_all.append(stats.staleness)
        if emergency:
            staleness_emergency.append(stats.staleness)
        if rng.random() < 0.2:  # a novel analyst query
            warehouse.answer(
                f"analyst-{day}", compute, n_sources=5, emergency=False
            )
    mean_staleness = sum(staleness_all) / len(staleness_all)
    mean_emergency = (
        sum(staleness_emergency) / len(staleness_emergency)
        if staleness_emergency else 0.0
    )
    return {
        "source_calls": warehouse.total_source_calls,
        "mean_staleness": mean_staleness,
        "emergency_staleness": mean_emergency,
    }


def collect_results(repeats=1):
    """All three mediation modes as a JSON-serializable dict (for run_all).

    The workload is seeded and deterministic, so ``repeats`` is accepted
    for driver uniformity but does not change the numbers.
    """
    return {"days": DAYS,
            "modes": {mode: run_workload(mode)
                      for mode in ("virtual", "warehouse", "hybrid")}}


@pytest.mark.parametrize("mode", ["virtual", "warehouse", "hybrid"])
def test_mode_workload_cost(benchmark, mode):
    benchmark(run_workload, mode)


def test_modes_report(benchmark, report):
    results = benchmark.pedantic(
        lambda: {m: run_workload(m) for m in ("virtual", "warehouse", "hybrid")},
        rounds=1, iterations=1,
    )
    report(
        f"=== A4: mediation modes over a {DAYS}-day surveillance workload ===",
        f"{'mode':>10s} {'source calls':>13s} {'mean staleness':>15s} "
        f"{'emergency staleness':>20s}",
    )
    for mode, stats in results.items():
        report(
            f"{mode:>10s} {stats['source_calls']:>13d} "
            f"{stats['mean_staleness']:>15.2f} "
            f"{stats['emergency_staleness']:>20.2f}"
        )
    virtual, warehouse, hybrid = (
        results["virtual"], results["warehouse"], results["hybrid"],
    )
    assert virtual["source_calls"] > hybrid["source_calls"]
    assert virtual["mean_staleness"] == 0.0
    assert warehouse["emergency_staleness"] > 0.0
    assert hybrid["emergency_staleness"] == 0.0  # the paper's requirement
    assert hybrid["source_calls"] < virtual["source_calls"]


def test_modes_telemetry_counters(benchmark, report):
    """The same A4 hybrid workload, accounted through warehouse metrics."""
    from repro.telemetry import Telemetry

    telemetry = Telemetry(enabled=True)
    benchmark.pedantic(
        lambda: run_workload("hybrid", telemetry=telemetry),
        rounds=1, iterations=1,
    )
    counters = telemetry.metrics_snapshot()["counters"]
    staleness = telemetry.metrics_snapshot()["histograms"][
        "warehouse.staleness"
    ]
    report(
        "=== A4: hybrid-mode warehouse telemetry ===",
        f"   hits={counters['warehouse.hits']} "
        f"misses={counters['warehouse.misses']} "
        f"source_calls={counters['warehouse.source_calls']} "
        f"staleness p50/p95={staleness['p50']:.1f}/{staleness['p95']:.1f}",
    )
    assert counters["warehouse.hits"] > 0
    assert counters["warehouse.misses"] > 0
    assert counters["warehouse.source_calls"] == counters[
        "warehouse.misses"
    ] * 5
