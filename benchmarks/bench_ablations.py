"""Design-choice ablations (the knobs DESIGN.md calls out).

* **cluster radius** — the Cluster Matching module's leader radius trades
  KB consultations (expensive breach inference) against technique
  precision: radius 0 degenerates to per-query KB calls, a huge radius to
  one cluster for everything.
* **Bloom encoding parameters** — filter size trades linkage accuracy
  against privacy (bits-per-item; smaller filters leak less structure but
  collide more).
* **bound-solver multistarts** — the inference guard's SLSQP restarts
  trade interval tightness (soundness of the guard) against cost.
* **defense residual risk** — the adversary zoo's measured view: how much
  of the confidential matrix a composition attacker still recovers under
  each single defense, scored by ``repro.validation``.
"""

import random

import pytest

from repro.data import FIGURE1
from repro.inference import SnoopingSource
from repro.linkage import BloomRecordEncoder, bloom_link
from repro.data.names import introduce_typo, person_names
from repro.policy import DisclosureForm, PrivacyView
from repro.query import extract_features, parse_piql
from repro.source import QueryClusterer
from repro.testing import figure1_published


# --- cluster radius -----------------------------------------------------------

RADII = [0.05, 0.4, 0.8, 2.0]


def query_stream(n=60, seed=17):
    rng = random.Random(seed)
    texts = []
    for _ in range(n):
        kind = rng.random()
        if kind < 0.4:
            texts.append(
                f"SELECT AVG(//patient/hba1c) WHERE //patient/age > {rng.randint(20, 70)} "
                "PURPOSE research"
            )
        elif kind < 0.6:
            texts.append("SELECT COUNT(*) PURPOSE research")
        elif kind < 0.8:
            texts.append("SELECT //patient/age, //patient/zip PURPOSE research")
        else:
            texts.append("SELECT //patient/id, //patient/hba1c PURPOSE research")
    return texts


def run_clusterer(radius, texts):
    view = PrivacyView("v", [("//hba1c", DisclosureForm.AGGREGATE)])
    clusterer = QueryClusterer(radius=radius)
    for text in texts:
        clusterer.match(extract_features(parse_piql(text), view))
    return clusterer


@pytest.mark.parametrize("radius", RADII)
def test_cluster_radius_cost(benchmark, radius):
    texts = query_stream()
    benchmark.pedantic(run_clusterer, args=(radius, texts),
                       rounds=2, iterations=1)


def test_cluster_radius_report(benchmark, report):
    texts = query_stream()
    results = benchmark.pedantic(
        lambda: {r: run_clusterer(r, texts) for r in RADII},
        rounds=1, iterations=1,
    )
    report(
        f"=== ablation: cluster radius over {len(texts)} queries ===",
        f"{'radius':>7s} {'clusters':>9s} {'KB consultations':>17s}",
    )
    for radius, clusterer in results.items():
        report(f"{radius:7.2f} {len(clusterer.clusters):9d} "
               f"{clusterer.kb_derivations:17d}")
    consultations = [results[r].kb_derivations for r in RADII]
    assert consultations == sorted(consultations, reverse=True)
    assert results[RADII[-1]].kb_derivations <= 3  # coarse: few clusters
    assert results[RADII[0]].kb_derivations >= len(
        results[RADII[-1]].clusters
    )


# --- Bloom parameters ---------------------------------------------------------

BLOOM_SIZES = [64, 128, 256, 1024]


def linkage_workload(seed=23, n=40, typo_rate=0.4):
    rng = random.Random(seed)
    names = person_names(2 * n, seed=seed)
    left = [
        {"first": f, "last": l, "dob": f"19{40 + i % 55:02d}-01-01"}
        for i, (f, l) in enumerate(names[:n])
    ]
    right = [dict(r) for r in left]
    for record in right:
        if rng.random() < typo_rate:
            record["last"] = introduce_typo(record["last"], rng)
    distractors = [
        {"first": f, "last": l, "dob": "1999-09-09"}
        for f, l in names[n:]
    ]
    return left, right + distractors


def bloom_accuracy(size):
    left, right = linkage_workload()
    encoder = BloomRecordEncoder(
        ["first", "last", "dob"], size=size, num_hashes=4, secret="abl"
    )
    links = bloom_link(left, right, encoder, threshold=0.8)
    true_pairs = {
        (a["first"], a["dob"]) for a in left
    }
    found_true = sum(
        1 for a, b, _s in links
        if (a["first"], a["dob"]) == (b["first"], b["dob"])
    )
    precision = found_true / len(links) if links else 0.0
    recall = found_true / len(true_pairs)
    return precision, recall


@pytest.mark.parametrize("size", BLOOM_SIZES)
def test_bloom_size_cost(benchmark, size):
    benchmark.pedantic(bloom_accuracy, args=(size,), rounds=1, iterations=1)


def test_bloom_size_report(benchmark, report):
    rows = benchmark.pedantic(
        lambda: [(s, *bloom_accuracy(s)) for s in BLOOM_SIZES],
        rounds=1, iterations=1,
    )
    report(
        "=== ablation: Bloom filter size (linkage accuracy) ===",
        f"{'bits':>6s} {'precision':>10s} {'recall':>8s}",
    )
    for size, precision, recall in rows:
        report(f"{size:>6d} {precision:10.2f} {recall:8.2f}")
    recalls = {size: recall for size, _p, recall in rows}
    assert recalls[1024] >= recalls[64]  # bigger filters collide less
    precisions = {size: p for size, p, _r in rows}
    assert precisions[1024] >= 0.9


# --- inference-guard multistarts ---------------------------------------------

START_COUNTS = [1, 2, 4, 8]


def interval_width_sum(starts):
    snooper = SnoopingSource(figure1_published(), "HMO1", FIGURE1.hmo1_values)
    intervals = snooper.infer(starts=starts, seed=1)
    return sum(high - low for low, high in intervals.values())


@pytest.mark.parametrize("starts", [1, 4])
def test_guard_starts_cost(benchmark, starts):
    benchmark.pedantic(interval_width_sum, args=(starts,),
                       rounds=1, iterations=1)


def test_guard_starts_report(benchmark, report):
    import time

    def sweep():
        rows = []
        for starts in START_COUNTS:
            begin = time.perf_counter()
            width = interval_width_sum(starts)
            rows.append((starts, width, time.perf_counter() - begin))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        "=== ablation: bound-solver multistarts (Figure 1 problem) ===",
        f"{'starts':>7s} {'total interval width':>21s} {'time (s)':>9s}",
    )
    for starts, width, elapsed in rows:
        report(f"{starts:>7d} {width:21.2f} {elapsed:9.2f}")
    widths = [width for _s, width, _t in rows]
    # More restarts can only widen (i.e. improve) the recovered intervals.
    assert all(b >= a - 0.5 for a, b in zip(widths, widths[1:]))


# --- defense residual risk ----------------------------------------------------

DEFENSE_LABELS = ("none", "kanon", "laplace", "guard", "refusal")


def residual_risk_sweep():
    from repro.validation import (
        CompositionAttacker,
        ZooDefenses,
        run_adversary,
    )

    rows = []
    for label in DEFENSE_LABELS:
        defenses = (ZooDefenses() if label == "none"
                    else ZooDefenses.single(label))
        outcome = run_adversary(CompositionAttacker(), defenses, starts=1)
        rows.append((label, outcome.residual_risk,
                     outcome.cell_disclosure,
                     outcome.summary["anonymity"]["reidentification_risk"]))
    return rows


def test_defense_residual_risk_report(benchmark, report):
    rows = benchmark.pedantic(residual_risk_sweep, rounds=1, iterations=1)
    report(
        "=== ablation: measured residual risk per defense "
        "(composition attacker) ===",
        f"{'defense':>8s} {'residual':>9s} {'disclosure':>11s} "
        f"{'reid risk':>10s}",
    )
    for label, residual, disclosure, reid in rows:
        report(f"{label:>8s} {residual:9.3f} {disclosure:11.3f} "
               f"{reid:10.3f}")
    risks = dict((label, residual) for label, residual, _d, _r in rows)
    # The zoo's core claim: every armed defense strictly reduces the
    # adversary's measured residual risk against the all-off baseline.
    for label in DEFENSE_LABELS[1:]:
        assert risks[label] < risks["none"]
