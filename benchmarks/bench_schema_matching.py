"""Experiment A8: privacy-preserving vs open schema matching (paper §5).

Synthetic schema pairs: a canonical clinical schema vs a renamed variant
(synonyms, camelCase/snake flips, abbreviations), with instance data.  We
compare the open baseline (raw names through the loose matcher) against
the private matcher (hashed tokens + coarse instance profiles only).

Expected shape: the private matcher recovers at least the open matcher's
accuracy — hashed synonym tokens plus coarse instance profiles carry the
same (or more) signal than raw-name similarity, so privacy costs little to
nothing on this workload.
"""

import random

import pytest

from repro.mediator import PrivateSchemaMatcher, open_name_matcher_score
from repro.mediator.schema_matching import describe_attribute
from repro.xmlkit.loose import LoosePathMatcher

SECRET = "a8-secret"

# canonical name → (variant name, value generator kind)
SCHEMA_PAIRS = {
    "dob": ("dateOfBirth", "date"),
    "ssn": ("socialSecurityNumber", "ssn"),
    "zip": ("postal_code", "zip"),
    "hba1c": ("HbA1cResult", "percent"),
    "ldl": ("cholesterol_ldl", "number"),
    "first_name": ("givenName", "name"),
    "last_name": ("surname", "name"),
    "phone": ("telephoneNumber", "phone"),
    "weight": ("body_weight_kg", "number"),
    "diagnosis": ("dx_code", "code"),
}


def values_of(kind, rng, n=60):
    if kind == "date":
        return [f"19{rng.randint(30, 99)}-0{rng.randint(1, 9)}-1{rng.randint(0, 9)}"
                for _ in range(n)]
    if kind == "ssn":
        return [f"{rng.randint(100, 999)}-{rng.randint(10, 99)}-{rng.randint(1000, 9999)}"
                for _ in range(n)]
    if kind == "zip":
        return [f"{rng.randint(10000, 99999)}" for _ in range(n)]
    if kind == "percent":
        return [round(rng.uniform(40, 95), 1) for _ in range(n)]
    if kind == "number":
        return [round(rng.uniform(50, 250), 1) for _ in range(n)]
    if kind == "name":
        return [rng.choice(["smith", "jones", "garcia", "chen", "patel"])
                for _ in range(n)]
    if kind == "phone":
        return [f"{rng.randint(200, 999)}-555-{rng.randint(1000, 9999)}"
                for _ in range(n)]
    return [f"ICD{rng.randint(100, 999)}" for _ in range(n)]


def build_sides(seed=31):
    rng = random.Random(seed)
    left_names = {}
    right_descriptors = {}
    left_descriptors = {}
    for canonical, (variant, kind) in SCHEMA_PAIRS.items():
        left_values = values_of(kind, rng)
        right_values = values_of(kind, rng)
        left_names[canonical] = variant
        left_descriptors[canonical] = describe_attribute(
            canonical, left_values, SECRET
        )
        right_descriptors[variant] = describe_attribute(
            variant, right_values, SECRET
        )
    return left_names, left_descriptors, right_descriptors


def open_match(left_names):
    matcher = LoosePathMatcher(threshold=0.4)
    found = {}
    candidates = list(left_names.values())
    for canonical in left_names:
        best, _score = matcher.best_match(canonical, candidates)
        if best is not None:
            found[canonical] = best
    return found


def private_match(left_descriptors, right_descriptors):
    matcher = PrivateSchemaMatcher(threshold=0.4)
    correspondences = matcher.match(left_descriptors, right_descriptors)
    return {canonical: match for canonical, (match, _s) in correspondences.items()}


def accuracy(found, truth):
    correct = sum(1 for k, v in found.items() if truth.get(k) == v)
    return correct / len(truth)


def test_open_matcher_cost(benchmark):
    left_names, _ld, _rd = build_sides()
    benchmark(open_match, left_names)


def test_private_matcher_cost(benchmark):
    _ln, left_descriptors, right_descriptors = build_sides()
    benchmark(private_match, left_descriptors, right_descriptors)


def test_accuracy_report(benchmark, report):
    left_names, left_descriptors, right_descriptors = build_sides()

    def run_both():
        return (
            open_match(left_names),
            private_match(left_descriptors, right_descriptors),
        )

    open_found, private_found = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    open_accuracy = accuracy(open_found, left_names)
    private_accuracy = accuracy(private_found, left_names)
    report(
        f"=== A8: schema matching accuracy over "
        f"{len(SCHEMA_PAIRS)} attribute pairs ===",
        f"open (raw names):        {open_accuracy:5.0%}",
        f"private (hashed+stats):  {private_accuracy:5.0%}",
    )
    for canonical, variant in sorted(left_names.items()):
        open_hit = "Y" if open_found.get(canonical) == variant else "-"
        private_hit = "Y" if private_found.get(canonical) == variant else "-"
        report(f"   {canonical:12s} → {variant:22s} "
               f"open:{open_hit} private:{private_hit}")
    # Measured shape: the private matcher is NOT the weaker one here —
    # its coarse instance profiles recover semantic pairs (givenName ↔
    # first_name) that raw-name similarity misses, so privacy costs
    # nothing on this workload.
    assert open_accuracy >= 0.4
    assert private_accuracy >= 0.7
    assert private_accuracy >= open_accuracy - 0.1
    # sanity: the open score function behaves
    assert open_name_matcher_score("dob", "dateOfBirth") == 1.0
