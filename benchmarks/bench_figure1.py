"""Experiments F1ab and F1cd: reproduce every sub-table of Figure 1.

F1ab regenerates the published aggregate tables 1(a) and 1(b) from
synthetic per-HMO microdata calibrated to the paper's 2001 numbers.
F1cd runs the snooping HMO1's non-linear-programming inference and prints
the reproduced Figure 1(d) intervals next to the paper's.
"""

import time

import pytest

from bench_kernels import kernel_env
from repro.data import FIGURE1, HealthcareGenerator
from repro.inference import PublishedAggregates, SnoopingSource


def collect_results(repeats=1):
    """Both experiments as a JSON-serializable dict (for run_all).

    ``repeats`` scales the inference multistart count (more starts,
    tighter reproduced intervals) — 1 is the CI smoke setting.
    """
    generator = HealthcareGenerator(patients_per_hmo=400, seed=2006)
    published = PublishedAggregates.from_matrix(
        generator.measures, generator.sources,
        generator.compliance_matrix(), 1,
    )
    row_mean_error = max(
        abs(published.row_means[i] - FIGURE1.row_means[i])
        for i in range(len(generator.measures))
    )
    paper_published = PublishedAggregates(
        FIGURE1.measures, FIGURE1.sources, FIGURE1.row_means,
        FIGURE1.row_stds, FIGURE1.source_means, precision=1,
    )
    snooper = SnoopingSource(paper_published, "HMO1", FIGURE1.hmo1_values)
    inferred = snooper.infer(starts=max(2, 2 * repeats), seed=0)
    endpoint_error = sum(
        abs(low - paper_low) + abs(high - paper_high)
        for cell, (low, high) in inferred.items()
        for paper_low, paper_high in [FIGURE1.paper_intervals[cell]]
    ) / (2 * len(FIGURE1.paper_intervals))
    # KERN tie-in: the same snooping inference under both kernel modes.
    # The constraint sweep behind ``infer`` is hot kernel (1); this lane
    # smoke-checks that the scalar references still reproduce the figure
    # and publishes what the vectorized encoding buys on this workload.
    modes = {}
    mode_intervals = {}
    for label, scalar in (("scalar", True), ("vectorized", False)):
        with kernel_env(scalar):
            started = time.perf_counter()
            mode_intervals[label] = snooper.infer(
                starts=max(2, 2 * repeats), seed=0
            )
            modes[f"{label}_ms"] = round(
                (time.perf_counter() - started) * 1000.0, 3
            )
    modes["speedup"] = round(
        modes["scalar_ms"] / modes["vectorized_ms"], 2
    )
    modes["max_endpoint_divergence"] = max(
        abs(a - b)
        for cell in mode_intervals["scalar"]
        for a, b in zip(mode_intervals["scalar"][cell],
                        mode_intervals["vectorized"][cell])
    )
    return {
        "f1ab": {
            "row_means": list(published.row_means),
            "paper_row_means": list(FIGURE1.row_means),
            "max_row_mean_error": row_mean_error,
        },
        "f1cd": {
            "intervals": {
                f"{measure}@{source}": [low, high]
                for (measure, source), (low, high) in sorted(inferred.items())
            },
            "mean_endpoint_error": endpoint_error,
        },
        "kernel_modes": modes,
    }


@pytest.fixture(scope="module")
def generator():
    return HealthcareGenerator(patients_per_hmo=400, seed=2006)


@pytest.fixture(scope="module")
def matrix(generator):
    return generator.compliance_matrix()


def test_figure1_tables_ab(benchmark, report, generator, matrix):
    published = benchmark(
        PublishedAggregates.from_matrix,
        generator.measures, generator.sources, matrix, 1,
    )
    report(
        "=== F1ab: Figure 1(a) — test compliance (reproduced | paper) ===",
        f"{'Test':16s} {'mean':>6s} {'sigma':>6s}   {'paper mean':>10s} {'paper sigma':>11s}",
    )
    for i, measure in enumerate(generator.measures):
        report(
            f"{measure:16s} {published.row_means[i]:6.1f} "
            f"{published.row_stds[i]:6.1f}   {FIGURE1.row_means[i]:10.1f} "
            f"{FIGURE1.row_stds[i]:11.1f}"
        )
    report("=== F1ab: Figure 1(b) — HMO average performance ===")
    for j, source in enumerate(generator.sources):
        report(
            f"{source}: {published.source_means[j]:5.1f}   "
            f"(paper: {FIGURE1.source_means[j]:5.1f})"
        )
    for i in range(len(generator.measures)):
        assert published.row_means[i] == pytest.approx(
            FIGURE1.row_means[i], abs=0.2
        )


def test_kernel_modes_agree_on_figure1d(report):
    published = PublishedAggregates(
        FIGURE1.measures, FIGURE1.sources, FIGURE1.row_means,
        FIGURE1.row_stds, FIGURE1.source_means, precision=1,
    )
    snooper = SnoopingSource(published, "HMO1", FIGURE1.hmo1_values)
    intervals = {}
    for label, scalar in (("scalar", True), ("vectorized", False)):
        with kernel_env(scalar):
            intervals[label] = snooper.infer(starts=2, seed=0)
    report("=== F1cd: scalar and vectorized solver agree ===")
    assert set(intervals["scalar"]) == set(intervals["vectorized"])
    for cell, (low, high) in intervals["scalar"].items():
        v_low, v_high = intervals["vectorized"][cell]
        assert v_low == pytest.approx(low, abs=1e-6)
        assert v_high == pytest.approx(high, abs=1e-6)


def test_figure1_inferred_intervals_cd(benchmark, report):
    published = PublishedAggregates(
        FIGURE1.measures, FIGURE1.sources, FIGURE1.row_means,
        FIGURE1.row_stds, FIGURE1.source_means, precision=1,
    )
    snooper = SnoopingSource(published, "HMO1", FIGURE1.hmo1_values)
    inferred = benchmark.pedantic(
        lambda: snooper.infer(starts=4, seed=0), rounds=1, iterations=1
    )
    report(
        "=== F1cd: Figure 1(d) — intervals inferred by snooping HMO1 ===",
        f"{'Test':16s} {'HMO':5s} {'reproduced':>16s} {'paper':>16s}",
    )
    total_error = 0.0
    for cell in sorted(FIGURE1.paper_intervals):
        low, high = inferred[cell]
        paper_low, paper_high = FIGURE1.paper_intervals[cell]
        total_error += abs(low - paper_low) + abs(high - paper_high)
        report(
            f"{cell[0]:16s} {cell[1]:5s} "
            f"[{low:5.1f}, {high:5.1f}]  [{paper_low:5.1f}, {paper_high:5.1f}]"
        )
    mean_error = total_error / (2 * len(FIGURE1.paper_intervals))
    report(f"mean absolute endpoint error vs paper: {mean_error:.2f} points")
    assert mean_error < 1.0
