"""Experiment A10: secure-computation substrate throughput.

Scaling of the three primitives the mediation layer leans on — the
commutative cipher, two-party PSI, and the masked-ring secure sum — across
set sizes and both built-in groups (256-bit test group, 1024-bit MODP).

Expected shape: PSI cost is linear in the set sizes (4 exponentiations per
element across both parties); the 1024-bit group costs roughly an order of
magnitude more per exponentiation than the 256-bit test group; secure sum
is effectively free next to either.
"""

import random

import pytest

from repro.crypto import (
    CommutativeKey,
    MODP_1024,
    TEST_GROUP,
    private_set_intersection,
    secure_sum,
)

SET_SIZES = [16, 64, 256]
GROUPS = {"group256": TEST_GROUP, "group1024": MODP_1024}


@pytest.mark.parametrize("group_name", list(GROUPS))
def test_commutative_encrypt_throughput(benchmark, group_name):
    group = GROUPS[group_name]
    key = CommutativeKey(group, rng=random.Random(1))
    elements = [group.hash_into(f"item-{i}") for i in range(64)]
    benchmark(key.encrypt_many, elements)


@pytest.mark.parametrize("size", SET_SIZES)
def test_psi_scaling(benchmark, size):
    items_a = [f"a-{i}" for i in range(size // 2)] + [
        f"shared-{i}" for i in range(size // 2)
    ]
    items_b = [f"b-{i}" for i in range(size // 2)] + [
        f"shared-{i}" for i in range(size // 2)
    ]
    result = benchmark.pedantic(
        private_set_intersection,
        args=(items_a, items_b, TEST_GROUP, random.Random(2)),
        rounds=1, iterations=1,
    )
    intersection, _transcript = result
    assert len(intersection) == size // 2


@pytest.mark.parametrize("parties", [3, 10, 50])
def test_secure_sum_scaling(benchmark, parties):
    values = list(range(1, parties + 1))
    total = benchmark(secure_sum, values, rng=random.Random(3))
    assert total == sum(values)


def test_crypto_report(benchmark, report):
    import time

    def measure():
        rows = []
        for size in SET_SIZES:
            items = [f"x-{i}" for i in range(size)]
            start = time.perf_counter()
            private_set_intersection(items, items, TEST_GROUP, random.Random(4))
            rows.append((size, time.perf_counter() - start))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    report(
        "=== A10: PSI wall time vs set size (256-bit group) ===",
        f"{'set size':>9s} {'time (ms)':>10s} {'ms/element':>11s}",
    )
    for size, elapsed in rows:
        report(f"{size:>9d} {elapsed * 1e3:>10.1f} "
               f"{elapsed * 1e3 / size:>11.2f}")
    # linear scaling: per-element cost roughly flat (within 3x)
    per_element = [elapsed / size for size, elapsed in rows]
    assert max(per_element) < 3 * min(per_element)
