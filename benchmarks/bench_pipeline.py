"""Experiment F2: the full Figure-2 pipeline, end to end.

One integrated query traverses every architecture component the paper
draws: fragmenter → per-source transformer / rewriter / cluster matcher /
loss computation / optimizer / execution / tagger → integrator → privacy
control.  We time the aggregate and record-level paths and print the
pipeline trace (which modules fired, per-source plans and losses).
"""

import pytest

from repro import PrivateIye
from repro.relational import Table

N_PER_SOURCE = 1500

POLICIES = """
VIEW {name}_private {{
    PRIVATE //patient/ssn;
    PRIVATE //patient/hba1c FORM aggregate;
    PRIVATE //patient/age FORM range;
}}

POLICY {name} DEFAULT deny {{
    DENY //patient/ssn FOR *;
    ALLOW //patient/hba1c FOR public-health-research FORM aggregate MAXLOSS 0.6;
    ALLOW //patient/age FOR research FORM range;
    ALLOW //patient/city FOR research;
    ALLOW //patient/first FOR research;
    ALLOW //patient/last FOR research;
}}
"""


def make_table(name, offset):
    rows = [
        {"ssn": f"{offset}{i:05d}", "first": f"fn{i % 97}",
         "last": f"ln{(i * 7) % 89}", "age": 18 + (i + offset) % 70,
         "hba1c": 55.0 + (i * 3 + offset) % 35,
         "city": ["pittsburgh", "butler", "erie"][i % 3]}
        for i in range(N_PER_SOURCE)
    ]
    return Table.from_dicts("patients", rows)


@pytest.fixture(scope="module")
def system():
    system = PrivateIye(linkage_attributes=("first", "last"))
    for index, name in enumerate(("HMO1", "HMO2", "LAB1")):
        system.load_policies(
            POLICIES.format(name=name),
            view_source={f"{name}_private": name},
        )
        system.add_relational_source(name, make_table(name, index * 1000))
    system.vocabulary()  # force schema build outside the timed region
    return system


AGGREGATE_QUERY = (
    "SELECT AVG(//patient/hba1c) AS mean, COUNT(*) AS n "
    "GROUP BY //patient/city PURPOSE outbreak-surveillance MAXLOSS 0.6"
)
RECORD_QUERY = (
    "SELECT //patient/age, //patient/city PURPOSE research MAXLOSS 0.9"
)


def pose_uncached(system, text, requester):
    from repro.query import parse_piql

    query = parse_piql(text)
    if query.purpose is None:
        query.purpose = "research"
    return system.engine.pose(
        query, requester=requester, use_warehouse=False
    )


def test_aggregate_pipeline_latency(benchmark, system):
    counter = {"n": 0}

    def run():
        counter["n"] += 1
        return pose_uncached(system, AGGREGATE_QUERY, f"agg-{counter['n']}")

    result = benchmark.pedantic(run, rounds=5, iterations=1)
    assert len(result.rows) == 9  # 3 cities × 3 sources


def test_record_pipeline_latency(benchmark, system):
    counter = {"n": 0}

    def run():
        counter["n"] += 1
        return pose_uncached(system, RECORD_QUERY, f"rec-{counter['n']}")

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(result.rows) > 0


def test_pipeline_trace_report(benchmark, report, system):
    result = benchmark.pedantic(
        lambda: pose_uncached(system, AGGREGATE_QUERY, "tracer"),
        rounds=1, iterations=1,
    )
    report(
        f"=== F2: Figure-2 pipeline trace ({len(system.engine.sources)} "
        f"sources x {N_PER_SOURCE} rows) ===",
        f"mediated vocabulary: {system.vocabulary()}",
        f"integrated rows: {len(result.rows)}   aggregated privacy loss: "
        f"{result.aggregated_loss:.3f}",
    )
    for name in sorted(system.engine.sources):
        source = system.engine.sources[name]
        report(
            f"   {name}: answered={source.queries_answered} "
            f"refused={source.queries_refused} "
            f"clusters={len(source.clusterer.clusters)} "
            f"(KB consultations: {source.clusterer.kb_derivations})"
        )
    sample = result.rows[0]
    report(f"   sample integrated row: {sample}")
    assert result.aggregated_loss <= 0.6
    assert set(result.per_source_loss) == {"HMO1", "HMO2", "LAB1"}


def test_pipeline_stage_attribution(benchmark, report, span_table, system):
    """Attribute one pose() to its pipeline stages via telemetry spans.

    The timed fixtures above run with telemetry disabled (the published
    latencies are the overhead-free numbers); this test re-runs the same
    aggregate once on a telemetry-enabled engine and prints the span
    tree, so the F2 trajectory can be read stage by stage.
    """
    from repro.telemetry import Telemetry

    telemetry = Telemetry(enabled=True)
    engine = system.engine
    saved = engine.telemetry
    saved_sources = {
        name: remote.telemetry for name, remote in engine.sources.items()
    }
    engine.telemetry = telemetry
    engine.warehouse.telemetry = telemetry
    engine.control.telemetry = telemetry
    engine._sequence_guard.telemetry = telemetry
    for remote in engine.sources.values():
        remote.telemetry = telemetry
    try:
        result = benchmark.pedantic(
            lambda: pose_uncached(system, AGGREGATE_QUERY, "span-tracer"),
            rounds=1, iterations=1,
        )
    finally:
        engine.telemetry = saved
        engine.warehouse.telemetry = saved
        engine.control.telemetry = saved
        engine._sequence_guard.telemetry = saved
        for name, remote in engine.sources.items():
            remote.telemetry = saved_sources[name]

    root = telemetry.tracer.last_root()
    report("=== F2: per-stage span attribution (telemetry enabled) ===")
    report(*span_table(root))
    ledger = telemetry.explain_last()
    report(
        f"   explain: status={ledger.status} "
        f"sources={sorted(ledger.sources)} "
        f"aggregated_loss={ledger.control['aggregated_loss']:.3f} "
        f"(MAXLOSS {ledger.control['max_loss']:.2f})"
    )
    assert root.name == "mediator.pose"
    stage_names = {span.name for span in root.walk()}
    assert {"mediator.fragment", "source.answer", "source.execute",
            "mediator.integrate", "mediator.privacy_control"} <= stage_names
    assert len(result.rows) == 9
