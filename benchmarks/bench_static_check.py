"""Static refusal vs fan-out-then-refuse — wall-clock saved by the gate.

A query every source is guaranteed to refuse (wrong purpose under
DEFAULT-deny policies) is posed against the same 8-source deployment
(real ``RemoteSource`` pipelines behind deterministic ``FlakySource``
delays) three ways:

* **static gate on** (the default): the plan analyzer proves the refusal
  from policies alone and ``pose()`` raises before any source is
  contacted — the simulated per-source latency never runs;
* **gate off, concurrent dispatch**: all sources are fanned out to, each
  pays its latency, and the refusal comes back after roughly one
  latency (the slowest source);
* **gate off, sequential dispatch**: latencies sum — the worst case the
  paper's rewrite-then-execute split is designed to avoid.

Representative numbers (this container, 8 sources, 50 ms latency,
best of 5)::

    BENCH_STATIC_CHECK static refusal vs fan-out-then-refuse
     sources  latency            mode     wall-clock    saved
           8     50ms          static          0.7ms        -
           8     50ms  concurrent-off         51.9ms    74.3x
           8     50ms  sequential-off        403.5ms   577.3x

The static path is pure computation (transform → policy → dry-run
rewrite → loss estimate per source), so its cost is microseconds per
source and *independent of source latency*; the saved wall-clock grows
with both source count and latency.

Usage::

    PYTHONPATH=src python benchmarks/bench_static_check.py           # table
    PYTHONPATH=src python benchmarks/bench_static_check.py --smoke   # CI gate

``--smoke`` runs the 8-source cell and exits non-zero unless the static
refusal is at least ``--min-speedup`` (default 5×) faster than the
concurrent fan-out-then-refuse, so CI catches a gate that silently
starts dispatching.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.errors import PrivacyViolation
from repro.mediator.dispatch import DispatchPolicy
from repro.testing import FaultSchedule, build_flaky_system

REFUSED_QUERY = "SELECT //patient/age PURPOSE marketing"


def delay_schedule_factory(latency_s, calls=64):
    def schedule_for(name, index):
        return FaultSchedule([("delay", latency_s)] * calls)

    return schedule_for


def build(n_sources, latency_s, mode, gated):
    policy = DispatchPolicy(mode=mode, retries=0, partial="best_effort")
    system, _ = build_flaky_system(
        n_sources,
        schedule_for=delay_schedule_factory(latency_s),
        dispatch=policy,
        seed=42,
    )
    if not gated:
        system.engine.static_analyzer = None
    return system


def time_refusal(system, repeats):
    """Best-of-``repeats`` wall-clock for one refused pose."""
    best = float("inf")
    for attempt in range(repeats):
        started = time.perf_counter()
        try:
            system.engine.pose(
                REFUSED_QUERY,
                requester=f"bench-{attempt}",
                use_warehouse=False,
            )
        except PrivacyViolation:
            pass
        else:
            raise AssertionError("query was expected to refuse")
        best = min(best, time.perf_counter() - started)
    return best * 1000.0


def run_cell(n_sources, latency_ms, repeats):
    latency_s = latency_ms / 1000.0
    static_ms = time_refusal(
        build(n_sources, latency_s, "concurrent", gated=True), repeats
    )
    concurrent_ms = time_refusal(
        build(n_sources, latency_s, "concurrent", gated=False), repeats
    )
    sequential_ms = time_refusal(
        build(n_sources, latency_s, "sequential", gated=False), repeats
    )
    return {
        "sources": n_sources,
        "latency_ms": latency_ms,
        "static_ms": static_ms,
        "concurrent_ms": concurrent_ms,
        "sequential_ms": sequential_ms,
        "speedup_concurrent": concurrent_ms / max(static_ms, 1e-9),
        "speedup_sequential": sequential_ms / max(static_ms, 1e-9),
    }


def print_table(cells):
    print("BENCH_STATIC_CHECK static refusal vs fan-out-then-refuse")
    print(f"{'sources':>8} {'latency':>8} {'mode':>15} "
          f"{'wall-clock':>12} {'saved':>8}")
    for cell in cells:
        rows = [
            ("static", cell["static_ms"], None),
            ("concurrent-off", cell["concurrent_ms"],
             cell["speedup_concurrent"]),
            ("sequential-off", cell["sequential_ms"],
             cell["speedup_sequential"]),
        ]
        for mode, wall_ms, saved in rows:
            saved_text = f"{saved:>7.1f}x" if saved is not None else f"{'-':>8}"
            print(f"{cell['sources']:>8} {cell['latency_ms']:>6.0f}ms "
                  f"{mode:>15} {wall_ms:>10.1f}ms {saved_text}")


def collect_results(repeats=5):
    """The acceptance cell as a JSON-serializable dict (for run_all)."""
    return {"cells": [run_cell(n_sources=8, latency_ms=50.0,
                               repeats=repeats)]}


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="acceptance cell only; gate on --min-speedup")
    parser.add_argument("--min-speedup", type=float, default=5.0,
                        help="smoke: required concurrent-off/static ratio")
    parser.add_argument("--repeats", type=int, default=5,
                        help="take the best of this many runs per cell")
    args = parser.parse_args(argv)

    if args.smoke:
        cell = run_cell(n_sources=8, latency_ms=50.0, repeats=args.repeats)
        print_table([cell])
        if cell["speedup_concurrent"] < args.min_speedup:
            print(
                f"SMOKE FAIL: static refusal only "
                f"{cell['speedup_concurrent']:.1f}x faster than "
                f"concurrent fan-out (< {args.min_speedup:.1f}x)",
                file=sys.stderr,
            )
            return 1
        return 0

    cells = [
        run_cell(n_sources, latency_ms, args.repeats)
        for n_sources in (2, 4, 8)
        for latency_ms in (10.0, 50.0)
    ]
    print_table(cells)
    return 0


if __name__ == "__main__":
    sys.exit(main())
