"""Experiment A1: rewrite-then-execute vs execute-then-filter (paper §4).

The paper chooses rewriting: "by preprocessing the query we shall be able
to reduce the cost of execution as it will operate on a smaller set of
data".  Both strategies must produce the *same* privacy-processed output
(ages generalized to ranges, only consented rows disclosed):

* **rewrite-then-execute** folds the consent policy into the WHERE clause,
  so generalization and tagging run over the small disclosable set;
* **execute-then-filter** runs the raw query (plus the consent column the
  post-filter needs), privacy-processes the full intermediate, then drops
  non-disclosable rows.

Expected shape: rewrite always wins and its advantage grows as the consent
predicate becomes more selective.
"""

import time

import pytest

from repro.anonymity import interval_hierarchy
from repro.relational import Comparison, SelectQuery, Table, execute

N_ROWS = 20000
SELECTIVITIES = {"90pct": 90, "50pct": 50, "10pct": 10}

_AGE_HIERARCHY = interval_hierarchy("age", [10])


@pytest.fixture(scope="module")
def table():
    rows = [
        {"id": i, "age": 20 + i % 60, "hba1c": 60.0 + i % 30,
         "consent_bucket": i % 100}
        for i in range(N_ROWS)
    ]
    return Table.from_dicts("patients", rows)


def consent_predicate(percent):
    return Comparison("consent_bucket", "<", percent)


def base_query(extra_columns=()):
    return SelectQuery(
        "patients", columns=["age", "hba1c", *extra_columns],
        where=Comparison("age", ">", 40),
    )


def privacy_process(rows):
    """The per-row disclosure work both strategies must perform."""
    return [
        {"age": _AGE_HIERARCHY.generalize(row["age"], 1),
         "hba1c": row["hba1c"]}
        for row in rows
    ]


def rewrite_then_execute(table, percent):
    query = base_query()
    query = query.replace(where=query.where.and_(consent_predicate(percent)))
    result = execute(query, table)
    return privacy_process(result.rows_as_dicts())


def execute_then_filter(table, percent):
    raw = base_query(extra_columns=("consent_bucket",))
    interim = execute(raw, table)
    processed = privacy_process(interim.rows_as_dicts())
    predicate = consent_predicate(percent)
    return [
        row
        for row, original in zip(processed, interim.rows_as_dicts())
        if predicate.evaluate(original)
    ]


@pytest.mark.parametrize("label", list(SELECTIVITIES))
def test_rewrite_then_execute(benchmark, label, table):
    result = benchmark(rewrite_then_execute, table, SELECTIVITIES[label])
    assert result


@pytest.mark.parametrize("label", list(SELECTIVITIES))
def test_execute_then_filter(benchmark, label, table):
    result = benchmark(execute_then_filter, table, SELECTIVITIES[label])
    assert result


def test_strategies_agree_and_report(benchmark, report, table):
    def compare_all():
        rows = []
        for label, percent in SELECTIVITIES.items():
            start = time.perf_counter()
            rewritten = rewrite_then_execute(table, percent)
            rewrite_seconds = time.perf_counter() - start
            start = time.perf_counter()
            filtered = execute_then_filter(table, percent)
            filter_seconds = time.perf_counter() - start
            assert rewritten == filtered  # identical disclosed output
            rows.append((label, rewrite_seconds, filter_seconds))
        return rows

    rows = benchmark.pedantic(compare_all, rounds=1, iterations=1)
    report(
        f"=== A1: rewrite-then-execute vs execute-then-filter "
        f"({N_ROWS} rows) ===",
        f"{'selectivity':>12s} {'rewrite (ms)':>13s} {'filter (ms)':>12s} "
        f"{'speedup':>8s}",
    )
    speedups = {}
    for label, rewrite_seconds, filter_seconds in rows:
        speedups[label] = filter_seconds / rewrite_seconds
        report(
            f"{label:>12s} {rewrite_seconds * 1e3:13.2f} "
            f"{filter_seconds * 1e3:12.2f} {speedups[label]:7.2f}x"
        )
    assert speedups["10pct"] > 1.0
    assert speedups["10pct"] > speedups["90pct"] * 0.9
