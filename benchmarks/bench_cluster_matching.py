"""Experiment A2: feature-based cluster matching vs execute-and-analyze.

Paper §4 argues for selecting preservation techniques "by analyzing only
the features of the query … without executing the query".  We compare:

* **cluster matching** — extract features, match against the cluster KB;
* **execute-and-analyze** — run the query, inspect the result rows, then
  infer breach types from what actually came back.

Expected shape: near-total technique agreement at orders-of-magnitude
lower cost, with the gap growing with table size.
"""

import pytest

from repro.policy import DisclosureForm, PrivacyView
from repro.query import extract_features, parse_piql
from repro.relational import Table
from repro.source import (
    PathMapping,
    PreservationKnowledgeBase,
    QueryClusterer,
    QueryTransformer,
)
from repro.source.knowledge import BreachType
from repro.relational.engine import execute

N_ROWS = 10000

QUERY_MIX = [
    "SELECT //patient/id, //patient/hba1c PURPOSE research",
    "SELECT //patient/age PURPOSE research",
    "SELECT AVG(//patient/hba1c) WHERE //patient/hmo = 'HMO1' PURPOSE research",
    "SELECT COUNT(*) PURPOSE research",
    "SELECT SUM(//patient/hba1c) WHERE //patient/age > 50 PURPOSE research",
    "SELECT //patient/id PURPOSE research",
]


@pytest.fixture(scope="module")
def table():
    rows = [
        {"id": i, "age": 20 + i % 60, "hba1c": 60.0 + i % 30,
         "hmo": f"HMO{i % 4}"}
        for i in range(N_ROWS)
    ]
    return Table.from_dicts("patients", rows)


@pytest.fixture(scope="module")
def view():
    return PrivacyView("v", [("//hba1c", DisclosureForm.AGGREGATE)])


def feature_based(texts, view):
    clusterer = QueryClusterer(PreservationKnowledgeBase())
    assignments = []
    for text in texts:
        features = extract_features(parse_piql(text), view)
        cluster = clusterer.match(features)
        assignments.append(frozenset(t.name for t in cluster.techniques))
    return assignments


def execute_and_analyze(texts, view, table):
    """The baseline the paper rejects: run each query, study the answer."""
    kb = PreservationKnowledgeBase()
    transformer = QueryTransformer(PathMapping(table))
    assignments = []
    for text in texts:
        piql = parse_piql(text)
        local = transformer.transform(piql).query
        result = execute(local, table)
        breaches = set()
        rows = list(result.rows_as_dicts())
        if not piql.is_aggregate:
            breaches.add(BreachType.REIDENTIFICATION)
            if any("id" in c for c in result.schema.column_names()):
                breaches.add(BreachType.LINKAGE)
            if any(
                view.is_private(f"//{c}")
                for c in result.schema.column_names()
            ):
                breaches.add(BreachType.ATTRIBUTE_DISCLOSURE)
        else:
            query_set = [
                r for r in table.rows_as_dicts() if local.where.evaluate(r)
            ]
            if len(query_set) < len(table) / 4:
                breaches.add(BreachType.SMALL_SET_AGGREGATE)
            if piql.where:
                breaches.add(BreachType.TRACKER_SEQUENCE)
        del rows
        assignments.append(
            frozenset(t.name for t in kb.techniques_for(breaches))
        )
    return assignments


def test_cluster_matching_speed(benchmark, view):
    benchmark(feature_based, QUERY_MIX, view)


def test_execute_and_analyze_speed(benchmark, view, table):
    benchmark.pedantic(
        execute_and_analyze, args=(QUERY_MIX, view, table),
        rounds=3, iterations=1,
    )


def test_agreement_and_report(benchmark, report, view, table):
    import time

    def run_both():
        start = time.perf_counter()
        fast = feature_based(QUERY_MIX, view)
        fast_elapsed = time.perf_counter() - start
        start = time.perf_counter()
        slow = execute_and_analyze(QUERY_MIX, view, table)
        slow_elapsed = time.perf_counter() - start
        return fast, fast_elapsed, slow, slow_elapsed

    fast, fast_seconds, slow, slow_seconds = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )

    agreements = sum(1 for a, b in zip(fast, slow) if a == b)
    report(
        f"=== A2: technique selection over {len(QUERY_MIX)} queries, "
        f"{N_ROWS}-row table ===",
        f"cluster matching:    {fast_seconds * 1e3:8.2f} ms",
        f"execute-and-analyze: {slow_seconds * 1e3:8.2f} ms",
        f"speedup:             {slow_seconds / fast_seconds:8.1f}x",
        f"technique agreement: {agreements}/{len(QUERY_MIX)}",
    )
    assert agreements >= len(QUERY_MIX) - 1
    assert slow_seconds > fast_seconds
