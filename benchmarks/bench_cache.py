"""Warm multi-tier cache hit vs cold mediation — wall-clock saved.

The same allowed query is posed against an 8-source deployment (real
``RemoteSource`` pipelines behind deterministic ``FlakySource`` delays)
three ways:

* **cold**: first pose on a freshly built system — every tier misses,
  the plan is fragmented, statically checked, fanned out to all sources
  (each paying its simulated latency), integrated, and stored;
* **warm**: an identical repeat by the same requester — the canonical
  fingerprint matches, the epoch vector is unchanged, and the answer
  tier serves the integrated result without contacting any source
  (sequence guard, history, and loss accounting still run);
* **uncached**: the ``cache=False`` baseline posed with
  ``use_warehouse=False`` — the always-recompute path the cache layer
  replaces.

Representative numbers (this container, 8 sources, 50 ms latency,
best of 5)::

    BENCH_CACHE warm cache hit vs cold mediation
     sources  latency        mode   wall-clock     saved
           8     50ms        cold       55.3ms         -
           8     50ms    uncached       55.1ms         -
           8     50ms        warm        0.4ms    130.6x

The warm path's cost is guard + history + three LRU lookups —
independent of source count and latency — so the saved wall-clock grows
with both.  A warm repeat is also verified to add zero source calls:
caching short-circuits dispatch, never auditing.

Usage::

    PYTHONPATH=src python benchmarks/bench_cache.py           # full grid
    PYTHONPATH=src python benchmarks/bench_cache.py --smoke   # CI gate

``--smoke`` runs the 8-source cell and exits non-zero unless the warm
hit is at least ``--min-speedup`` (default 5×) faster than the cold
pose, so CI catches a fingerprint or epoch bug that silently turns
every pose into a miss.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.testing import FaultSchedule, build_flaky_system

QUERY = "SELECT //patient/age PURPOSE research MAXLOSS 0.9"
REQUESTER = "bench-cache"


def delay_schedule_factory(latency_s, calls=256):
    def schedule_for(name, index):
        return FaultSchedule([("delay", latency_s)] * calls)

    return schedule_for


def build(n_sources, latency_s, cache):
    system, flaky = build_flaky_system(
        n_sources,
        schedule_for=delay_schedule_factory(latency_s),
        seed=42,
        cache=cache,
    )
    return system, flaky


def time_pose(system, use_warehouse=True):
    started = time.perf_counter()
    result = system.engine.pose(
        QUERY, requester=REQUESTER, use_warehouse=use_warehouse
    )
    return (time.perf_counter() - started) * 1000.0, len(result.rows)


def source_calls(flaky):
    return sum(source.calls for source in flaky.values())


def run_cell(n_sources, latency_ms, repeats):
    latency_s = latency_ms / 1000.0

    # Cold: first pose on a fresh deployment, best of ``repeats`` builds.
    cold_ms = float("inf")
    cold_rows = None
    for _ in range(repeats):
        system, _ = build(n_sources, latency_s, cache=True)
        elapsed, cold_rows = time_pose(system)
        cold_ms = min(cold_ms, elapsed)

    # Warm: identical repeats on one warmed system.  The repeats must
    # add zero source calls — a hit that still dispatched would be a
    # cache that lies about its savings.
    system, flaky = build(n_sources, latency_s, cache=True)
    _, warm_rows = time_pose(system)
    calls_after_warmup = source_calls(flaky)
    warm_ms = float("inf")
    for _ in range(repeats):
        elapsed, warm_rows = time_pose(system)
        warm_ms = min(warm_ms, elapsed)
    extra_calls = source_calls(flaky) - calls_after_warmup
    assert extra_calls == 0, (
        f"warm repeats contacted sources {extra_calls} time(s) — "
        "the answer tier is not hitting"
    )

    # Uncached baseline: no cache, no warehouse — always recompute.
    system, _ = build(n_sources, latency_s, cache=False)
    uncached_ms = float("inf")
    uncached_rows = None
    for _ in range(repeats):
        elapsed, uncached_rows = time_pose(system, use_warehouse=False)
        uncached_ms = min(uncached_ms, elapsed)

    assert cold_rows == warm_rows == uncached_rows, (
        f"row mismatch: cold={cold_rows} warm={warm_rows} "
        f"uncached={uncached_rows}"
    )
    return {
        "sources": n_sources,
        "latency_ms": latency_ms,
        "cold_ms": cold_ms,
        "warm_ms": warm_ms,
        "uncached_ms": uncached_ms,
        "speedup_cold": cold_ms / max(warm_ms, 1e-9),
        "speedup_uncached": uncached_ms / max(warm_ms, 1e-9),
        "rows": cold_rows,
    }


def print_table(cells):
    print("BENCH_CACHE warm cache hit vs cold mediation")
    print(f"{'sources':>8} {'latency':>8} {'mode':>11} "
          f"{'wall-clock':>12} {'saved':>9}")
    for cell in cells:
        rows = [
            ("cold", cell["cold_ms"], None),
            ("uncached", cell["uncached_ms"], None),
            ("warm", cell["warm_ms"], cell["speedup_cold"]),
        ]
        for mode, wall_ms, saved in rows:
            saved_text = f"{saved:>8.1f}x" if saved is not None else f"{'-':>9}"
            print(f"{cell['sources']:>8} {cell['latency_ms']:>6.0f}ms "
                  f"{mode:>11} {wall_ms:>10.1f}ms {saved_text}")


def collect_results(repeats=5):
    """The acceptance cell as a JSON-serializable dict (for run_all)."""
    return {"cells": [run_cell(n_sources=8, latency_ms=50.0,
                               repeats=repeats)]}


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="acceptance cell only; gate on --min-speedup")
    parser.add_argument("--min-speedup", type=float, default=5.0,
                        help="smoke: required cold/warm ratio")
    parser.add_argument("--repeats", type=int, default=5,
                        help="take the best of this many runs per cell")
    args = parser.parse_args(argv)

    if args.smoke:
        cell = run_cell(n_sources=8, latency_ms=50.0, repeats=args.repeats)
        print_table([cell])
        if cell["speedup_cold"] < args.min_speedup:
            print(
                f"SMOKE FAIL: warm hit only {cell['speedup_cold']:.1f}x "
                f"faster than cold pose (< {args.min_speedup:.1f}x)",
                file=sys.stderr,
            )
            return 1
        print(f"SMOKE OK: warm hit {cell['speedup_cold']:.1f}x "
              f">= {args.min_speedup:.1f}x")
        return 0

    cells = [
        run_cell(n_sources, latency_ms, args.repeats)
        for n_sources in (2, 4, 8)
        for latency_ms in (10.0, 50.0)
    ]
    print_table(cells)
    return 0


if __name__ == "__main__":
    sys.exit(main())
