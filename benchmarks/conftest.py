"""Shared benchmark helpers.

Every benchmark prints the table/series it reproduces through the
``report`` fixture, which bypasses pytest's output capture so the rows
appear in ``bench_output.txt`` next to pytest-benchmark's timing table.

The ``span_table`` fixture renders a finished telemetry span tree as an
indented stage-timing table, so benchmark trajectories (the ``BENCH_*``
series) can be attributed to individual pipeline stages: run the workload
once against a telemetry-enabled system (outside the timed region — the
timed fixtures keep telemetry disabled so published numbers stay
overhead-free) and print ``span_table(system.last_trace())``.
"""

import pytest


@pytest.fixture
def report(capsys):
    """A print function that writes straight to the terminal."""

    def emit(*lines):
        with capsys.disabled():
            for line in lines:
                print(line)

    emit("")
    return emit


@pytest.fixture
def span_table():
    """Format a span tree as ``name  duration  attributes`` rows."""

    def fmt(root, max_attributes=3):
        lines = []

        def walk(span, depth):
            attributes = ", ".join(
                f"{k}={v}" for k, v in list(span.attributes.items())
                [:max_attributes]
            )
            lines.append(
                f"   {'  ' * depth}{span.name:<{32 - 2 * depth}s} "
                f"{span.duration_ms:>9.3f} ms   {attributes}"
            )
            for child in span.children:
                walk(child, depth + 1)

        if root is not None:
            walk(root, 0)
        return lines

    return fmt
