"""Shared benchmark helpers.

Every benchmark prints the table/series it reproduces through the
``report`` fixture, which bypasses pytest's output capture so the rows
appear in ``bench_output.txt`` next to pytest-benchmark's timing table.
"""

import pytest


@pytest.fixture
def report(capsys):
    """A print function that writes straight to the terminal."""

    def emit(*lines):
        with capsys.disabled():
            for line in lines:
                print(line)

    emit("")
    return emit
