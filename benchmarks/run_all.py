"""Run every benchmark exposing ``collect_results()``; emit per-bench JSON.

Each participating ``bench_<name>.py`` module exports a
``collect_results(repeats=...)`` function returning a JSON-serializable
dict (its acceptance cell, so one sweep stays CI-sized).  This driver
imports them, runs them, and writes one ``BENCH_<name>.json`` artifact
per bench — the machine-readable counterpart of the human tables the
individual scripts print:

.. code-block:: json

    {
      "bench": "cache",
      "generated_at": 1754480000.0,
      "elapsed_s": 4.2,
      "results": {"cells": [{"sources": 8, "warm_ms": 0.1, "...": "..."}]}
    }

Usage::

    PYTHONPATH=src python benchmarks/run_all.py                # all benches
    PYTHONPATH=src python benchmarks/run_all.py --only cache   # one bench
    PYTHONPATH=src python benchmarks/run_all.py --out-dir /tmp/bench

Artifacts land in ``--out-dir`` (default ``benchmarks/results/``, which
is gitignored).  Exit status is non-zero if any bench raises.
"""

from __future__ import annotations

import argparse
import importlib
import json
import sys
import time
from pathlib import Path

HERE = Path(__file__).resolve().parent

#: Benches that export ``collect_results()`` — extend as benches adopt it.
BENCHES = ("cache", "fanout", "static_check")


def run_bench(name, repeats, out_dir):
    module = importlib.import_module(f"bench_{name}")
    started = time.perf_counter()
    results = module.collect_results(repeats=repeats)
    elapsed = time.perf_counter() - started
    payload = {
        "bench": name,
        "generated_at": time.time(),
        "elapsed_s": round(elapsed, 3),
        "results": results,
    }
    path = out_dir / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path, elapsed


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--only", action="append", choices=BENCHES,
                        help="run just this bench (repeatable)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="best-of repeats forwarded to each bench")
    parser.add_argument("--out-dir", type=Path,
                        default=HERE / "results",
                        help="directory for the BENCH_<name>.json files")
    args = parser.parse_args(argv)

    sys.path.insert(0, str(HERE))
    args.out_dir.mkdir(parents=True, exist_ok=True)
    names = args.only or BENCHES
    for name in names:
        path, elapsed = run_bench(name, args.repeats, args.out_dir)
        print(f"BENCH_{name}: wrote {path} ({elapsed:.1f}s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
