"""Run every benchmark exposing ``collect_results()``; emit per-bench JSON.

Each participating ``bench_<name>.py`` module exports a
``collect_results(repeats=...)`` function returning a JSON-serializable
dict (its acceptance cell, so one sweep stays CI-sized).  This driver
imports them, runs them, and writes one ``BENCH_<name>.json`` artifact
per bench — the machine-readable counterpart of the human tables the
individual scripts print:

.. code-block:: json

    {
      "bench": "cache",
      "generated_at": 1754480000.0,
      "elapsed_s": 4.2,
      "results": {"cells": [{"sources": 8, "warm_ms": 0.1, "...": "..."}]}
    }

Usage::

    PYTHONPATH=src python benchmarks/run_all.py                # all benches
    PYTHONPATH=src python benchmarks/run_all.py --smoke        # CI sweep
    PYTHONPATH=src python benchmarks/run_all.py --only cache   # one bench
    PYTHONPATH=src python benchmarks/run_all.py --out-dir /tmp/bench

Artifacts land in ``--out-dir`` (default ``benchmarks/results/``, which
is gitignored).  A failing bench does not stop the sweep: its error is
recorded, the remaining benches still run, and the combined
``BENCH_summary.json`` (one status row per bench) plus a non-zero exit
report the failure.  ``--smoke`` forces ``repeats=1`` — the CI setting.
"""

from __future__ import annotations

import argparse
import importlib
import json
import sys
import time
import traceback
from pathlib import Path

HERE = Path(__file__).resolve().parent

#: Benches that export ``collect_results()`` — extend as benches adopt it.
BENCHES = ("cache", "fanout", "figure1", "flow", "kernels",
           "mediation_modes", "persistence", "sequence_audit",
           "static_check", "validation")


def run_bench(name, repeats, out_dir):
    module = importlib.import_module(f"bench_{name}")
    started = time.perf_counter()
    results = module.collect_results(repeats=repeats)
    elapsed = time.perf_counter() - started
    payload = {
        "bench": name,
        "generated_at": time.time(),
        "elapsed_s": round(elapsed, 3),
        "results": results,
    }
    path = out_dir / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path, elapsed


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--only", action="append", choices=BENCHES,
                        help="run just this bench (repeatable)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="best-of repeats forwarded to each bench")
    parser.add_argument("--smoke", action="store_true",
                        help="CI setting: force repeats=1")
    parser.add_argument("--out-dir", type=Path,
                        default=HERE / "results",
                        help="directory for the BENCH_<name>.json files")
    args = parser.parse_args(argv)
    repeats = 1 if args.smoke else args.repeats

    sys.path.insert(0, str(HERE))
    args.out_dir.mkdir(parents=True, exist_ok=True)
    names = args.only or BENCHES
    summary = {
        "generated_at": time.time(),
        "smoke": args.smoke,
        "repeats": repeats,
        "benches": {},
    }
    failures = 0
    for name in names:
        try:
            path, elapsed = run_bench(name, repeats, args.out_dir)
        except Exception as error:  # a broken bench must not stop the sweep
            failures += 1
            summary["benches"][name] = {
                "status": "error",
                "error": f"{type(error).__name__}: {error}",
                "traceback": traceback.format_exc(),
            }
            print(f"BENCH_{name}: FAILED ({type(error).__name__}: {error})",
                  file=sys.stderr)
            continue
        summary["benches"][name] = {
            "status": "ok",
            "elapsed_s": round(elapsed, 3),
            "artifact": path.name,
        }
        print(f"BENCH_{name}: wrote {path} ({elapsed:.1f}s)")
    summary_path = args.out_dir / "BENCH_summary.json"
    summary_path.write_text(
        json.dumps(summary, indent=2, sort_keys=True) + "\n"
    )
    print(f"BENCH_summary: wrote {summary_path} "
          f"({len(names) - failures}/{len(names)} ok)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
