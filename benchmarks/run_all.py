"""Run every benchmark exposing ``collect_results()``; emit per-bench JSON.

Each participating ``bench_<name>.py`` module exports a
``collect_results(repeats=...)`` function returning a JSON-serializable
dict (its acceptance cell, so one sweep stays CI-sized).  This driver
imports them, runs them, and writes one ``BENCH_<name>.json`` artifact
per bench — the machine-readable counterpart of the human tables the
individual scripts print:

.. code-block:: json

    {
      "bench": "cache",
      "generated_at": 1754480000.0,
      "elapsed_s": 4.2,
      "results": {"cells": [{"sources": 8, "warm_ms": 0.1, "...": "..."}]}
    }

Usage::

    PYTHONPATH=src python benchmarks/run_all.py                # all benches
    PYTHONPATH=src python benchmarks/run_all.py --smoke        # CI sweep
    PYTHONPATH=src python benchmarks/run_all.py --only cache   # one bench
    PYTHONPATH=src python benchmarks/run_all.py --out-dir /tmp/bench

Artifacts land in ``--out-dir`` (default ``benchmarks/results/``, which
is gitignored).  A failing bench does not stop the sweep: its error is
recorded, the remaining benches still run, and the combined
``BENCH_summary.json`` (one status row per bench) plus a non-zero exit
report the failure.  ``--smoke`` forces ``repeats=1`` — the CI setting.

Every sweep also appends one schema-versioned line to the committed
``benchmarks/BENCH_trajectory.jsonl`` (disable with ``--no-trajectory``):
the append-only history of when each bench last ran, passed, and how
long it took — see :func:`append_trajectory`.
"""

from __future__ import annotations

import argparse
import importlib
import json
import sys
import time
import traceback
from pathlib import Path

HERE = Path(__file__).resolve().parent

#: Benches that export ``collect_results()`` — extend as benches adopt it.
BENCHES = ("cache", "fanout", "figure1", "flow", "kernels",
           "mediation_modes", "obs", "persistence", "sequence_audit",
           "static_check", "validation")

#: Version of the trajectory-entry shape appended per sweep; bump when
#: the entry layout changes so downstream tooling can branch on it.
TRAJECTORY_SCHEMA = 1


def append_trajectory(path, summary):
    """Append one schema-versioned sweep entry to the trajectory log.

    ``BENCH_trajectory.jsonl`` is the committed, append-only history of
    benchmark sweeps: one JSON line per run with the sweep settings and
    each bench's status and elapsed time.  It answers "when did bench X
    start failing / slowing" without archaeology through CI logs; the
    per-bench artifacts keep the detailed numbers.
    """
    entry = {
        "schema": TRAJECTORY_SCHEMA,
        "generated_at": summary["generated_at"],
        "smoke": summary["smoke"],
        "repeats": summary["repeats"],
        "benches": {
            name: {"status": row["status"],
                   "elapsed_s": row.get("elapsed_s")}
            for name, row in sorted(summary["benches"].items())
        },
    }
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(entry, sort_keys=True) + "\n")
    return path


def run_bench(name, repeats, out_dir):
    module = importlib.import_module(f"bench_{name}")
    started = time.perf_counter()
    results = module.collect_results(repeats=repeats)
    elapsed = time.perf_counter() - started
    payload = {
        "bench": name,
        "generated_at": time.time(),
        "elapsed_s": round(elapsed, 3),
        "results": results,
    }
    path = out_dir / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path, elapsed


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--only", action="append", choices=BENCHES,
                        help="run just this bench (repeatable)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="best-of repeats forwarded to each bench")
    parser.add_argument("--smoke", action="store_true",
                        help="CI setting: force repeats=1")
    parser.add_argument("--out-dir", type=Path,
                        default=HERE / "results",
                        help="directory for the BENCH_<name>.json files")
    parser.add_argument("--trajectory", type=Path,
                        default=HERE / "BENCH_trajectory.jsonl",
                        help="append-only sweep history (JSON lines)")
    parser.add_argument("--no-trajectory", action="store_true",
                        help="skip appending to the trajectory log")
    args = parser.parse_args(argv)
    repeats = 1 if args.smoke else args.repeats

    sys.path.insert(0, str(HERE))
    args.out_dir.mkdir(parents=True, exist_ok=True)
    names = args.only or BENCHES
    summary = {
        "generated_at": time.time(),
        "smoke": args.smoke,
        "repeats": repeats,
        "benches": {},
    }
    failures = 0
    for name in names:
        try:
            path, elapsed = run_bench(name, repeats, args.out_dir)
        except Exception as error:  # a broken bench must not stop the sweep
            failures += 1
            summary["benches"][name] = {
                "status": "error",
                "error": f"{type(error).__name__}: {error}",
                "traceback": traceback.format_exc(),
            }
            print(f"BENCH_{name}: FAILED ({type(error).__name__}: {error})",
                  file=sys.stderr)
            continue
        summary["benches"][name] = {
            "status": "ok",
            "elapsed_s": round(elapsed, 3),
            "artifact": path.name,
        }
        print(f"BENCH_{name}: wrote {path} ({elapsed:.1f}s)")
    summary_path = args.out_dir / "BENCH_summary.json"
    summary_path.write_text(
        json.dumps(summary, indent=2, sort_keys=True) + "\n"
    )
    print(f"BENCH_summary: wrote {summary_path} "
          f"({len(names) - failures}/{len(names)} ok)")
    if not args.no_trajectory:
        append_trajectory(args.trajectory, summary)
        print(f"BENCH_trajectory: appended to {args.trajectory}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
