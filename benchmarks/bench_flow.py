"""Whole-program flow analysis cost — keeping the CI gate honest.

The ``flow-analysis`` CI job runs ``python -m repro.analysis.flow
src/repro`` on every push; its usefulness depends on staying cheap
enough that nobody is tempted to skip it.  This bench times the three
stages separately over the real tree:

* **load** — parse every module, index classes/methods/locks/imports;
* **taint** — summary fixpoint + hotness propagation + findings
  (the REP010 pass);
* **locks** — lockset simulation + caller-credit fixpoint + the
  shared-state map (the REP011 pass).

Representative numbers (this container, ~156 modules, best of 3)::

    BENCH_FLOW whole-program analysis over src/repro
       stage      wall-clock
        load          0.5s
       taint          2.6s
       locks          0.2s
       total          3.3s

The taint fixpoint dominates: it is quadratic in the depth of call
chains that keep exchanging tainted values, and linear in call sites.
Parsing and the lockset pass are both linear in tree size.

Usage::

    PYTHONPATH=src python benchmarks/bench_flow.py           # table
    PYTHONPATH=src python benchmarks/bench_flow.py --smoke   # CI gate

``--smoke`` runs one full analysis and exits non-zero if it takes
longer than ``--budget-s`` (default 10 s) or if the tree has
unsuppressed findings — the same signal the CI job gates on, so a
runaway fixpoint or a fresh leak fails the bench, not just the lint
job.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.analysis.flow.driver import run_analysis
from repro.analysis.flow.engine import analyze_flows
from repro.analysis.flow.loader import load_program
from repro.analysis.flow.locks import analyze_locks

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"


def time_stages(repeats):
    """Best-of-``repeats`` per-stage wall-clock over ``src/repro``."""
    best = {"load": float("inf"), "taint": float("inf"),
            "locks": float("inf")}
    findings = suppressed = files = 0
    for _ in range(repeats):
        started = time.perf_counter()
        program = load_program([SRC])
        loaded = time.perf_counter()
        flow = analyze_flows(program)
        tainted = time.perf_counter()
        locks = analyze_locks(program)
        done = time.perf_counter()
        best["load"] = min(best["load"], loaded - started)
        best["taint"] = min(best["taint"], tainted - loaded)
        best["locks"] = min(best["locks"], done - tainted)
        files = len(program.modules)
        findings = len(flow.findings) + len(locks.findings)
    report = run_analysis([SRC])
    suppressed = report.suppressed
    return {
        "files": files,
        "load_s": round(best["load"], 3),
        "taint_s": round(best["taint"], 3),
        "locks_s": round(best["locks"], 3),
        "total_s": round(sum(best.values()), 3),
        "raw_findings": findings,
        "unsuppressed_findings": len(report.findings),
        "suppressed": suppressed,
    }


def print_table(cell):
    print("BENCH_FLOW whole-program analysis over src/repro")
    print(f"{'stage':>8} {'wall-clock':>15}")
    for stage in ("load", "taint", "locks", "total"):
        print(f"{stage:>8} {cell[stage + '_s']:>14.2f}s")
    print(f"{cell['files']} file(s), "
          f"{cell['unsuppressed_findings']} unsuppressed / "
          f"{cell['suppressed']} suppressed finding(s)")


def collect_results(repeats=3):
    """The acceptance cell as a JSON-serializable dict (for run_all)."""
    return {"cells": [time_stages(repeats)]}


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="one run; gate on --budget-s and a clean tree")
    parser.add_argument("--budget-s", type=float, default=10.0,
                        help="smoke: max seconds for one full analysis")
    parser.add_argument("--repeats", type=int, default=3,
                        help="take the best of this many runs")
    args = parser.parse_args(argv)

    repeats = 1 if args.smoke else args.repeats
    cell = time_stages(repeats)
    print_table(cell)

    if args.smoke:
        if cell["total_s"] > args.budget_s:
            print(
                f"SMOKE FAIL: full analysis took {cell['total_s']:.1f}s "
                f"(> {args.budget_s:.1f}s budget) — the CI gate is no "
                "longer cheap",
                file=sys.stderr,
            )
            return 1
        if cell["unsuppressed_findings"]:
            print(
                f"SMOKE FAIL: src/repro has "
                f"{cell['unsuppressed_findings']} unsuppressed "
                "finding(s) — fix or suppress with a justification",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
