"""Experiment A3: sequence-of-queries defenses vs the tracker attack.

Paper §4 poses the open problem: "how do we ensure that a set of query
results … cannot be combined together to violate data privacy?"  We run
the classic individual-tracker attack against four defense stacks and
report breach rate, legitimate-query overhead, and per-query cost.

Expected shape: the bare size control is fully breached; audit and overlap
control drive the breach rate to zero; audit costs the most per query.
"""

import time

import pytest

from repro.errors import PrivacyViolation
from repro.relational import Comparison, Table
from repro.statdb import ProtectedStatDB, StatQuery, individual_tracker_attack
from repro.statdb.tracker import true_value

N_ROWS = 120
N_VICTIMS = 12

DEFENSES = {
    "size-only": dict(min_set_size=3, restrict_complement=False),
    "size+complement": dict(min_set_size=3, restrict_complement=True),
    "size+audit": dict(min_set_size=3, restrict_complement=False, audit=True),
    "size+overlap": dict(min_set_size=3, restrict_complement=False,
                         max_overlap=3),
}


def salaries_table():
    rows = [
        {"id": i, "dept": ["sales", "eng", "hr"][i % 3],
         "salary": 1000.0 + 37.0 * i}
        for i in range(N_ROWS)
    ]
    return Table.from_dicts("salaries", rows)


def run_attacks(defense_kwargs):
    db = ProtectedStatDB(salaries_table(), **defense_kwargs)
    breaches = 0
    refused = 0
    for victim in range(N_VICTIMS):
        result = individual_tracker_attack(
            db,
            Comparison("id", "=", victim),
            Comparison("dept", "=", "sales"),
            func="sum",
            column="salary",
        )
        if not result.succeeded:
            refused += 1
            continue
        truth = true_value(
            db, Comparison("id", "=", victim), func="sum", column="salary"
        )
        if abs(result.inferred_value - truth) < 1e-6:
            breaches += 1
    return breaches, refused, db


def collect_results(repeats=1):
    """The defense sweep as a JSON-serializable dict (for run_all).

    The attack is deterministic, so ``repeats`` only steadies the
    per-defense timing (the minimum over runs is kept).
    """
    defenses = {}
    for name, kwargs in DEFENSES.items():
        best_elapsed = None
        for _ in range(max(1, repeats)):
            start = time.perf_counter()
            breaches, refused, _db = run_attacks(kwargs)
            elapsed = time.perf_counter() - start
            if best_elapsed is None or elapsed < best_elapsed:
                best_elapsed = elapsed
        defenses[name] = {
            "breaches": breaches,
            "attacks_blocked": refused,
            "legit_answered": legitimate_throughput(kwargs),
            "elapsed_s": round(best_elapsed, 4),
        }
    return {"victims": N_VICTIMS, "records": N_ROWS, "defenses": defenses}


def legitimate_throughput(defense_kwargs):
    """How many disjoint departmental aggregates still get answered."""
    db = ProtectedStatDB(salaries_table(), **defense_kwargs)
    answered = 0
    for dept in ("sales", "eng", "hr"):
        try:
            db.answer(StatQuery("avg", "salary", Comparison("dept", "=", dept)))
            answered += 1
        except PrivacyViolation:
            pass
    return answered


@pytest.mark.parametrize("name", list(DEFENSES))
def test_defense_query_cost(benchmark, name):
    kwargs = DEFENSES[name]

    def answer_one():
        db = ProtectedStatDB(salaries_table(), **kwargs)
        return db.answer(
            StatQuery("avg", "salary", Comparison("dept", "=", "sales"))
        )

    benchmark(answer_one)


def test_breach_rates_and_report(benchmark, report):
    def sweep():
        rows = []
        for name, kwargs in DEFENSES.items():
            start = time.perf_counter()
            breaches, refused, _db = run_attacks(kwargs)
            elapsed = time.perf_counter() - start
            answered = legitimate_throughput(kwargs)
            rows.append((name, breaches, refused, answered, elapsed))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        f"=== A3: tracker attack vs defenses ({N_VICTIMS} victims, "
        f"{N_ROWS} records) ===",
        f"{'defense':>16s} {'breaches':>9s} {'attacks blocked':>16s} "
        f"{'legit answered':>15s}",
    )
    results = {}
    for name, breaches, refused, answered, _elapsed in rows:
        results[name] = (breaches, refused, answered)
        report(
            f"{name:>16s} {breaches:>4d}/{N_VICTIMS:<4d} "
            f"{refused:>16d} {answered:>12d}/3"
        )
    assert results["size-only"][0] == N_VICTIMS       # fully breached
    assert results["size+audit"][0] == 0              # audit stops it
    assert results["size+overlap"][0] == 0            # overlap stops it
    assert results["size+audit"][2] == 3              # legit queries survive
    assert results["size+overlap"][2] == 3
