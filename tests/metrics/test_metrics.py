"""Unit tests for privacy/utility metrics and the R-U map."""

import pytest
from hypothesis import given, strategies as st

from repro.anonymity import interval_hierarchy
from repro.errors import ReproError
from repro.metrics import (
    RUPoint,
    discernibility,
    disclosure_risk,
    distortion,
    entropy_loss,
    generalization_precision_loss,
    interval_shrink_loss,
    ru_frontier,
    suppression_ratio,
)
from repro.metrics.privacy_loss import aggregate_interval_loss
from repro.metrics.ru_map import pick_operating_point


class TestIntervalShrink:
    def test_no_learning(self):
        assert interval_shrink_loss((0, 100), (0, 100)) == 0.0

    def test_pinned_value(self):
        assert interval_shrink_loss((0, 100), (42, 42)) == 1.0

    def test_partial(self):
        assert interval_shrink_loss((0, 100), (40, 60)) == pytest.approx(0.8)

    def test_figure1_interval(self):
        # HMO2 HbA1c in [87.2, 88.5] out of [0, 100] → ~98.7% privacy lost
        assert interval_shrink_loss((0, 100), (87.2, 88.5)) == pytest.approx(
            0.987, abs=1e-3
        )

    def test_validation(self):
        with pytest.raises(ReproError):
            interval_shrink_loss((5, 5), (1, 2))
        with pytest.raises(ReproError):
            interval_shrink_loss((0, 10), (5, 3))

    def test_aggregate_takes_worst(self):
        loss = aggregate_interval_loss((0, 100), [(0, 100), (40, 60), (50, 51)])
        assert loss == pytest.approx(0.99)

    def test_aggregate_empty(self):
        assert aggregate_interval_loss((0, 100), []) == 0.0


class TestEntropyAndRisk:
    def test_entropy_loss_uniform_to_point(self):
        assert entropy_loss([0.25] * 4, [1.0, 0, 0, 0]) == 1.0

    def test_entropy_loss_no_change(self):
        assert entropy_loss([0.5, 0.5], [0.5, 0.5]) == 0.0

    def test_entropy_loss_validation(self):
        with pytest.raises(ReproError):
            entropy_loss([1.0, 0.0], [0.5, 0.5])  # zero-entropy prior
        with pytest.raises(ReproError):
            entropy_loss([], [])

    def test_disclosure_risk(self):
        records = [{"zip": "a"}, {"zip": "a"}, {"zip": "b"}]
        # class sizes 2 and 1 → risk = (2*(1/2) + 1*1)/3 = 2/3
        assert disclosure_risk(records, ["zip"]) == pytest.approx(2 / 3)

    def test_disclosure_risk_k_anonymous(self):
        records = [{"zip": "a"}] * 10
        assert disclosure_risk(records, ["zip"]) == pytest.approx(0.1)

    def test_disclosure_risk_empty(self):
        assert disclosure_risk([], ["zip"]) == 0.0


class TestInformationLoss:
    def test_precision_loss_bounds(self):
        h = interval_hierarchy("age", [5, 10])
        assert generalization_precision_loss((0,), [h]) == 0.0
        assert generalization_precision_loss((h.height,), [h]) == 1.0

    def test_precision_loss_mixed(self):
        h1 = interval_hierarchy("age", [5, 10])  # height 3
        h2 = interval_hierarchy("income", [10])  # height 2
        loss = generalization_precision_loss((3, 0), [h1, h2])
        assert loss == pytest.approx(0.5)

    def test_precision_loss_arity(self):
        with pytest.raises(ReproError):
            generalization_precision_loss((1,), [])

    def test_discernibility(self):
        records = [{"q": "a"}] * 3 + [{"q": "b"}] * 2
        assert discernibility(records, ["q"]) == 9 + 4

    def test_discernibility_with_suppression(self):
        records = [{"q": "a"}] * 3
        assert discernibility(records, ["q"], suppressed=2, total=5) == 9 + 10

    def test_suppression_ratio(self):
        assert suppression_ratio(2, 10) == 0.2
        with pytest.raises(ReproError):
            suppression_ratio(11, 10)
        with pytest.raises(ReproError):
            suppression_ratio(0, 0)

    def test_distortion_zero(self):
        assert distortion([1.0, 2.0], [1.0, 2.0]) == 0.0

    def test_distortion_relative_normalization(self):
        original = [0.0, 10.0]
        assert distortion(original, [5.0, 5.0]) == pytest.approx(1.0)

    def test_distortion_absolute(self):
        assert distortion([0.0, 0.0], [3.0, 4.0], relative=False) == pytest.approx(
            (12.5) ** 0.5
        )

    def test_distortion_validation(self):
        with pytest.raises(ReproError):
            distortion([1.0], [1.0, 2.0])
        with pytest.raises(ReproError):
            distortion([], [])


class TestRUMap:
    def points(self):
        return [
            RUPoint(0.0, 0.9, 0.2),
            RUPoint(1.0, 0.6, 0.5),
            RUPoint(2.0, 0.4, 0.4),  # dominated by param 3
            RUPoint(3.0, 0.3, 0.6),
            RUPoint(4.0, 0.1, 0.3),
        ]

    def test_frontier_drops_dominated(self):
        frontier = ru_frontier(self.points())
        params = [p.parameter for p in frontier]
        assert 2.0 not in params
        assert 3.0 in params

    def test_frontier_sorted_by_risk(self):
        risks = [p.risk for p in ru_frontier(self.points())]
        assert risks == sorted(risks)

    def test_pick_operating_point(self):
        chosen = pick_operating_point(self.points(), max_risk=0.5)
        assert chosen.parameter == 3.0

    def test_pick_none_when_all_too_risky(self):
        assert pick_operating_point(self.points(), max_risk=0.05) is None

    def test_risk_bounds_validated(self):
        with pytest.raises(ReproError):
            RUPoint(0, 1.5, 0.5)


@given(
    st.floats(min_value=0.1, max_value=100.0),
    st.floats(min_value=0.0, max_value=100.0),
    st.floats(min_value=0.0, max_value=100.0),
)
def test_interval_shrink_bounds_property(prior_width, post_low, post_width):
    """Loss is always in [0, 1]."""
    loss = interval_shrink_loss(
        (0.0, prior_width), (post_low, post_low + post_width)
    )
    assert 0.0 <= loss <= 1.0
