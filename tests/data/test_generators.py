"""Unit tests for the synthetic data generators."""

import random

import pytest

from repro.data import FIGURE1, HealthcareGenerator, OutbreakGenerator, person_names
from repro.data.names import introduce_typo
from repro.data.rng import child_rng, make_rng
from repro.errors import ReproError


class TestRng:
    def test_make_rng_from_int(self):
        assert make_rng(5).random() == make_rng(5).random()

    def test_make_rng_passthrough(self):
        rng = random.Random(1)
        assert make_rng(rng) is rng

    def test_make_rng_rejects_other(self):
        with pytest.raises(ReproError):
            make_rng("seed")

    def test_child_streams_decorrelated(self):
        a = child_rng(make_rng(1), "a").random()
        b = child_rng(make_rng(1), "b").random()
        assert a != b

    def test_child_streams_reproducible(self):
        assert child_rng(make_rng(1), "x").random() == child_rng(
            make_rng(1), "x"
        ).random()


class TestNames:
    def test_person_names_deterministic(self):
        assert person_names(10, seed=3) == person_names(10, seed=3)

    def test_typo_changes_text(self):
        rng = random.Random(1)
        changed = sum(
            1 for _ in range(50) if introduce_typo("johnson", rng) != "johnson"
        )
        assert changed > 40  # 'double'/'swap' can occasionally be identity-ish

    def test_typo_short_string(self):
        assert introduce_typo("a", random.Random(1)) == "ax"


class TestHealthcareGenerator:
    def generator(self):
        return HealthcareGenerator(patients_per_hmo=100, seed=11)

    def test_deterministic(self):
        a = self.generator().patients()
        b = self.generator().patients()
        assert a == b

    def test_population_sizes(self):
        patients = HealthcareGenerator(
            patients_per_hmo=50, overlap_fraction=0.0, seed=1
        ).patients()
        assert all(len(v) == 50 for v in patients.values())

    def test_compliance_matrix_matches_targets(self):
        generator = self.generator()
        matrix = generator.compliance_matrix()
        for i, row in enumerate(matrix):
            for j, value in enumerate(row):
                # quota sampling: exact to rounding of quota/n
                assert value == pytest.approx(
                    FIGURE1.consistent_matrix[i][j], abs=0.5
                )

    def test_duplicates_planted(self):
        generator = HealthcareGenerator(
            patients_per_hmo=50, overlap_fraction=0.2, seed=5
        )
        patients = generator.patients()
        duplicates = [
            p
            for records in patients.values()
            for p in records
            if "-dup-" in p["id"]
        ]
        assert len(duplicates) == int(0.2 * 4 * 50)

    def test_catalogs_queryable(self):
        from repro.relational import Aggregate, SelectQuery, execute

        generator = self.generator()
        catalogs = generator.catalogs()
        assert set(catalogs) == set(FIGURE1.sources)
        result = execute(
            SelectQuery("patients", aggregates=[Aggregate("count", "*")]),
            catalogs["HMO1"],
        )
        assert result.rows[0][0] >= 100

    def test_validation(self):
        with pytest.raises(ReproError):
            HealthcareGenerator(target_matrix=[[1.0]])
        with pytest.raises(ReproError):
            HealthcareGenerator(overlap_fraction=1.5)


class TestOutbreakGenerator:
    def generator(self):
        return OutbreakGenerator(days=90, seed=13)

    def test_deterministic(self):
        assert self.generator().daily_counts() == self.generator().daily_counts()

    def test_epidemic_has_a_peak(self):
        counts = self.generator().daily_counts()
        first_region = counts[self.generator().regions[0]]
        peak = max(first_region)
        assert peak > 5 * max(first_region[0], 1)

    def test_travel_delay_orders_peaks(self):
        generator = OutbreakGenerator(
            regions=("a", "b", "c"), days=140, travel_delay=25, seed=17
        )
        peaks = generator.peak_day()
        assert peaks["a"] < peaks["b"] < peaks["c"]

    def test_case_records_match_counts(self):
        generator = self.generator()
        counts = generator.daily_counts()
        records = generator.case_records(counts)
        for region in generator.regions:
            assert len(records[region]) == sum(counts[region])

    def test_mortality_band(self):
        generator = OutbreakGenerator(days=100, mortality=0.10, seed=19)
        records = generator.case_records()
        all_cases = [c for cases in records.values() for c in cases]
        died = sum(1 for c in all_cases if c["outcome"] == "died")
        rate = died / len(all_cases)
        assert 0.04 < rate < 0.25  # SARS-like ~10%

    def test_elderly_mortality_higher(self):
        records = OutbreakGenerator(days=110, seed=23).case_records()
        all_cases = [c for cases in records.values() for c in cases]
        old = [c for c in all_cases if c["age"] >= 65]
        young = [c for c in all_cases if c["age"] < 65]
        rate = lambda group: sum(  # noqa: E731
            1 for c in group if c["outcome"] == "died"
        ) / max(1, len(group))
        assert rate(old) > rate(young)

    def test_catalogs(self):
        generator = self.generator()
        catalogs = generator.catalogs()
        assert set(catalogs) == set(generator.regions)

    def test_validation(self):
        with pytest.raises(ReproError):
            OutbreakGenerator(days=5)
        with pytest.raises(ReproError):
            OutbreakGenerator(regions=())
