"""Integration tests for PrivateIye.plan_release (defensive publication)."""

import pytest

from repro import PrivacyViolation, PrivateIye
from repro.data import FIGURE1, HealthcareGenerator
from repro.inference import InferenceGuard
from repro.relational import Table

POLICY = """
VIEW {name}_private {{
    PRIVATE //patient/compliant_0 FORM aggregate;
    PRIVATE //patient/compliant_1 FORM aggregate;
    PRIVATE //patient/compliant_2 FORM aggregate;
}}
POLICY {name} DEFAULT deny {{
    ALLOW //patient/compliant_0 FOR public-health-research FORM aggregate;
    ALLOW //patient/compliant_1 FOR public-health-research FORM aggregate;
    ALLOW //patient/compliant_2 FOR public-health-research FORM aggregate;
}}
"""


def build_system():
    generator = HealthcareGenerator(
        patients_per_hmo=200, overlap_fraction=0.0, seed=2006
    )
    patients = generator.patients()
    system = PrivateIye()
    for hmo in generator.sources:
        system.load_policies(
            POLICY.format(name=hmo), view_source={f"{hmo}_private": hmo}
        )
        system.add_relational_source(
            hmo, Table.from_dicts("patients", patients[hmo])
        )
    return system


class TestPlanRelease:
    def test_safe_release_planned_over_real_pipeline(self):
        system = build_system()
        chosen, rejected = system.plan_release(
            ["//patient/compliant_0", "//patient/compliant_1"],
            purpose="outbreak-surveillance",
            guard=InferenceGuard(min_interval_width=0.02, starts=2),
        )
        # Compliance rates are fractions in [0,1]; a 0.02-wide floor still
        # rejects the full-precision release and finds a coarser safe one.
        assert chosen is not None
        assert chosen.safe
        assert len(chosen.published.sources) == len(FIGURE1.sources)

    def test_refusing_source_blocks_the_release(self):
        system = build_system()
        with pytest.raises(PrivacyViolation):
            system.plan_release(
                ["//patient/compliant_0"], purpose="marketing"
            )
