"""End-to-end tests for the PrivateIye system (Figure 2 complete)."""

import pytest

from repro import (
    AuditRefusal,
    IntegrationError,
    PrivacyViolation,
    PrivateIye,
    ReproError,
)
from repro.relational import Table

POLICIES = """
VIEW hmo1_private {
    PRIVATE //patient/ssn;
    PRIVATE //patient/hba1c FORM aggregate;
}
VIEW lab1_private {
    PRIVATE //patient/ssn;
    PRIVATE //patient/hba1c FORM aggregate;
}

POLICY HMO1 DEFAULT deny {
    DENY //patient/ssn FOR *;
    ALLOW //patient/hba1c FOR public-health-research FORM aggregate MAXLOSS 0.6;
    ALLOW //patient/hmo FOR research;
    ALLOW //patient/age FOR research;
    ALLOW //patient/first FOR research;
    ALLOW //patient/last FOR research;
}

POLICY LAB1 DEFAULT deny {
    DENY //patient/ssn FOR *;
    ALLOW //patient/hba1c FOR public-health-research FORM aggregate MAXLOSS 0.6;
    ALLOW //patient/age FOR research;
    ALLOW //patient/first FOR research;
    ALLOW //patient/last FOR research;
}
"""


def hmo_table():
    rows = [
        {"ssn": f"111-{i:04d}", "first": f"fn{i}", "last": f"ln{i}",
         "age": 30 + (i % 40), "hba1c": 65.0 + (i % 20), "hmo": "HMO1"}
        for i in range(60)
    ]
    # one patient shared with the lab (same identity)
    rows[0]["first"], rows[0]["last"] = "alice", "smith"
    return Table.from_dicts("patients", rows)


def lab_table():
    rows = [
        {"ssn": f"222-{i:04d}", "first": f"lf{i}", "last": f"ll{i}",
         "age": 25 + (i % 45), "hba1c": 70.0 + (i % 15)}
        for i in range(40)
    ]
    rows[0]["first"], rows[0]["last"] = "alice", "smith"
    return Table.from_dicts("patients", rows)


def build_system(linkage=("first", "last")):
    system = PrivateIye(linkage_attributes=linkage)
    system.load_policies(
        POLICIES,
        view_source={"hmo1_private": "HMO1", "lab1_private": "LAB1"},
    )
    system.add_relational_source("HMO1", hmo_table())
    system.add_relational_source("LAB1", lab_table())
    return system


class TestSchemaAndVocabulary:
    def test_vocabulary_excludes_suppressed(self):
        system = build_system()
        vocabulary = system.vocabulary()
        assert "ssn" not in vocabulary
        assert "hba1c" in vocabulary
        assert "age" in vocabulary

    def test_shared_attributes_merged(self):
        system = build_system()
        attribute = system.mediated_schema().attribute("hba1c")
        assert set(attribute.local_names) == {"HMO1", "LAB1"}


class TestAggregateIntegration:
    def test_cross_source_aggregate(self):
        system = build_system()
        result = system.query(
            "SELECT AVG(//patient/hba1c) AS mean "
            "PURPOSE outbreak-surveillance MAXLOSS 0.6",
            requester="epi-1",
        )
        assert len(result.rows) == 2  # one aggregate row per source
        sources = {row["_source"] for row in result.rows}
        assert sources == {"HMO1", "LAB1"}
        assert result.aggregated_loss <= 0.6

    def test_wrong_purpose_refused_everywhere(self):
        system = build_system()
        with pytest.raises(PrivacyViolation, match="every relevant source"):
            system.query(
                "SELECT AVG(//patient/hba1c) PURPOSE marketing",
                requester="mkt-1",
            )

    def test_partial_refusal_reported(self):
        # age is allowed at HMO1 and LAB1 for research; hmo only at HMO1.
        system = build_system()
        result = system.query(
            "SELECT COUNT(*) WHERE //patient/hmo = 'HMO1' PURPOSE research",
            requester="r1",
        )
        assert set(result.per_source_loss) == {"HMO1"}

    def test_sequence_guard_blocks_probing(self):
        system = build_system()
        for i in range(4):
            system.query(
                f"SELECT AVG(//patient/hba1c) WHERE //patient/age > {30 + i} "
                "PURPOSE outbreak-surveillance MAXLOSS 0.6",
                requester="snoop",
            )
        with pytest.raises(AuditRefusal):
            system.query(
                "SELECT AVG(//patient/hba1c) WHERE //patient/age > 60 "
                "PURPOSE outbreak-surveillance MAXLOSS 0.6",
                requester="snoop",
            )

    def test_guard_is_per_requester(self):
        system = build_system()
        for i in range(4):
            system.query(
                f"SELECT AVG(//patient/hba1c) WHERE //patient/age > {40 + i} "
                "PURPOSE outbreak-surveillance MAXLOSS 0.6",
                requester=f"requester-{i}",
            )


class TestRecordLevelIntegration:
    def test_record_level_query_integrates_and_dedups(self):
        system = build_system()
        result = system.query(
            "SELECT //patient/first, //patient/last, //patient/age "
            "PURPOSE research",
            requester="r1",
        )
        assert result.duplicates_removed >= 1  # alice smith appears in both
        merged = [r for r in result.rows if "+" in r["_source"]]
        assert merged  # the shared patient is merged across sources

    def test_no_dedup_without_linkage_attributes(self):
        system = build_system(linkage=())
        result = system.query(
            "SELECT //patient/first, //patient/last PURPOSE research",
            requester="r1",
        )
        assert result.duplicates_removed == 0

    def test_ssn_unreachable_via_mediated_schema(self):
        system = build_system()
        with pytest.raises(IntegrationError):
            system.query("SELECT //patient/ssn PURPOSE research",
                         requester="r1")


class TestSystemBehaviour:
    def test_warehouse_caches_repeat_queries(self):
        system = build_system()
        text = ("SELECT AVG(//patient/hba1c) PURPOSE outbreak-surveillance "
                "MAXLOSS 0.6")
        system.query(text, requester="r1")
        answered_before = sum(
            s.queries_answered for s in system.engine.sources.values()
        )
        system.query(text, requester="r1")  # served from warehouse
        answered_after = sum(
            s.queries_answered for s in system.engine.sources.values()
        )
        assert answered_after == answered_before

    def test_history_recorded(self):
        system = build_system()
        system.query(
            "SELECT COUNT(*) PURPOSE research", requester="historian"
        )
        entries = system.history("historian")
        assert len(entries) == 1
        assert entries[0].is_aggregate

    def test_default_purpose_from_session(self):
        system = build_system()
        system.session("r9", default_purpose="research")
        result = system.query("SELECT COUNT(*)", requester="r9")
        assert len(result.rows) >= 1

    def test_requester_maxloss_enforced(self):
        system = build_system()
        with pytest.raises((PrivacyViolation, ReproError)):
            system.query(
                "SELECT //patient/first, //patient/last "
                "PURPOSE research MAXLOSS 0.01",
                requester="r1",
            )

    def test_source_registration_validation(self):
        system = build_system()
        with pytest.raises(ReproError):
            system.add_relational_source("X", "not a table")
        with pytest.raises(ReproError):
            system.add_source("not a source")
        with pytest.raises(IntegrationError):
            system.source("ghost")

    def test_duplicate_source_rejected(self):
        system = build_system()
        with pytest.raises(IntegrationError):
            system.add_relational_source("HMO1", hmo_table())
