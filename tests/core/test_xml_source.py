"""Integration tests: hierarchical (XML) sources in the full system."""

import pytest

from repro import PrivacyViolation, PrivateIye
from repro.relational import Table

XML_SOURCE = """
<registry>
  <patient id="x1"><name>alice smith</name><age>61</age>
    <hba1c>75.5</hba1c><ssn>111-11-1111</ssn></patient>
  <patient id="x2"><name>bob jones</name><age>70</age>
    <hba1c>82.0</hba1c><ssn>222-22-2222</ssn></patient>
  <patient id="x3"><name>cara diaz</name><age>55</age>
    <hba1c>68.0</hba1c><ssn>333-33-3333</ssn></patient>
  <patient id="x4"><name>dan wu</name><age>48</age>
    <hba1c>71.0</hba1c><ssn>444-44-4444</ssn></patient>
</registry>
"""

POLICIES = """
VIEW xmlhmo_private {
    PRIVATE //patient/ssn;
    PRIVATE //patient/hba1c FORM aggregate;
}
VIEW relhmo_private {
    PRIVATE //patient/ssn;
    PRIVATE //patient/hba1c FORM aggregate;
}

POLICY xmlhmo DEFAULT deny {
    DENY //patient/ssn FOR *;
    ALLOW //patient/hba1c FOR public-health-research FORM aggregate MAXLOSS 0.6;
    ALLOW //patient/age FOR research;
    ALLOW //patient/name FOR research;
}
POLICY relhmo DEFAULT deny {
    DENY //patient/ssn FOR *;
    ALLOW //patient/hba1c FOR public-health-research FORM aggregate MAXLOSS 0.6;
    ALLOW //patient/age FOR research;
    ALLOW //patient/name FOR research;
}
"""


def build_system():
    system = PrivateIye()
    system.load_policies(
        POLICIES,
        view_source={"xmlhmo_private": "xmlhmo", "relhmo_private": "relhmo"},
    )
    system.add_xml_source("xmlhmo", XML_SOURCE, "//patient",
                          table_name="patients")
    rows = [
        {"id": f"r{i}", "name": f"pat {i}", "age": 30 + i * 5,
         "hba1c": 60.0 + i, "ssn": f"999-00-{i:04d}"}
        for i in range(6)
    ]
    system.add_relational_source("relhmo", Table.from_dicts("patients", rows))
    return system


class TestXmlSource:
    def test_mixed_sources_share_mediated_schema(self):
        system = build_system()
        vocabulary = system.vocabulary()
        assert "hba1c" in vocabulary
        assert "ssn" not in vocabulary
        attribute = system.mediated_schema().attribute("hba1c")
        assert set(attribute.local_names) == {"xmlhmo", "relhmo"}

    def test_aggregate_across_xml_and_relational(self):
        system = build_system()
        result = system.query(
            "SELECT AVG(//patient/hba1c) AS mean, COUNT(*) AS n "
            "PURPOSE outbreak-surveillance MAXLOSS 0.6",
            requester="epi",
        )
        by_source = {row["_source"]: row for row in result.rows}
        # The cluster match applies output rounding (base 5) to aggregates
        # over private data, so the true counts 4 and 6 both become 5.
        assert by_source["xmlhmo"]["n"] == 5.0
        assert by_source["relhmo"]["n"] == 5.0
        assert by_source["xmlhmo"]["mean"] == pytest.approx(
            (75.5 + 82.0 + 68.0 + 71.0) / 4, abs=3.0  # rounding technique
        )

    def test_xml_source_enforces_policy(self):
        system = build_system()
        with pytest.raises(PrivacyViolation):
            system.query(
                "SELECT //patient/hba1c FROM xmlhmo "
                "PURPOSE outbreak-surveillance",
                requester="snoop",
            )

    def test_record_level_from_xml(self):
        system = build_system()
        result = system.query(
            "SELECT //patient/age FROM xmlhmo PURPOSE research",
            requester="r1",
        )
        assert len(result.rows) == 4

    def test_element_document_accepted(self):
        from repro.xmlkit import parse_xml

        system = PrivateIye()
        system.load_policies(
            POLICIES,
            view_source={"xmlhmo_private": "xmlhmo",
                         "relhmo_private": "relhmo"},
        )
        remote = system.add_xml_source(
            "xmlhmo", parse_xml(XML_SOURCE), "//patient"
        )
        assert len(remote.table) == 4
