"""Unit tests for the server-centric P3P/APPEL implementation."""

import pytest

from repro.errors import PolicyError
from repro.policy.p3p import (
    AppelPreferences,
    AppelRule,
    P3pPolicy,
    P3pStatement,
    STATEMENTS_TABLE,
    shred_policies,
)
from repro.relational.sql import to_sql


def careful_site():
    return P3pPolicy("careful", [
        P3pStatement("#user.bdate", purposes=("current", "admin"),
                     recipients=("ours",), retention="stated-purpose"),
        P3pStatement("#user.email", purposes=("current",),
                     recipients=("ours",), retention="no-retention"),
    ])


def spammy_site():
    return P3pPolicy("spammy", [
        P3pStatement("#user.email",
                     purposes=("current", "telemarketing", "contact"),
                     recipients=("ours", "unrelated"),
                     retention="indefinitely"),
    ])


def catalog():
    return shred_policies([careful_site(), spammy_site()])


class TestShredding:
    def test_one_row_per_purpose_recipient(self):
        table = catalog().table(STATEMENTS_TABLE)
        # careful: 2*1 + 1*1 = 3 rows; spammy: 3*2 = 6 rows
        assert len(table) == 9

    def test_row_content(self):
        rows = list(catalog().table(STATEMENTS_TABLE).rows_as_dicts())
        spam_rows = [r for r in rows if r["policy"] == "spammy"]
        assert {r["recipient"] for r in spam_rows} == {"ours", "unrelated"}
        assert all(r["retention"] == "indefinitely" for r in spam_rows)

    def test_validation(self):
        with pytest.raises(PolicyError):
            P3pStatement("", purposes=("current",))
        with pytest.raises(PolicyError):
            P3pStatement("#g", purposes=("world-domination",))
        with pytest.raises(PolicyError):
            P3pStatement("#g", purposes=("current",), recipients=("aliens",))
        with pytest.raises(PolicyError):
            P3pStatement("#g", purposes=("current",), retention="forever")
        with pytest.raises(PolicyError):
            P3pPolicy("p").add("not a statement")


class TestAppelRules:
    def no_marketing(self):
        return AppelRule(
            "reject", data_group="#user.email",
            allowed_purposes=("current", "admin"),
        )

    def test_rule_compiles_to_sql(self):
        sql = to_sql(self.no_marketing().to_query("spammy"))
        assert "COUNT(*)" in sql
        assert "NOT" in sql and "IN" in sql
        assert "policy = 'spammy'" in sql

    def test_reject_rule_fires_on_bad_policy(self):
        assert self.no_marketing().matches(catalog(), "spammy")
        assert not self.no_marketing().matches(catalog(), "careful")

    def test_recipient_constraint(self):
        rule = AppelRule("reject", allowed_recipients=("ours", "delivery"))
        assert rule.matches(catalog(), "spammy")
        assert not rule.matches(catalog(), "careful")

    def test_retention_constraint(self):
        rule = AppelRule(
            "reject",
            allowed_retentions=("no-retention", "stated-purpose"),
        )
        assert rule.matches(catalog(), "spammy")
        assert not rule.matches(catalog(), "careful")

    def test_accept_rule_fires_when_clean(self):
        rule = AppelRule(
            "accept", allowed_purposes=("current", "admin"),
        )
        assert rule.matches(catalog(), "careful")
        assert not rule.matches(catalog(), "spammy")

    def test_unconstrained_rule_rejected(self):
        with pytest.raises(PolicyError):
            AppelRule("reject")
        with pytest.raises(PolicyError):
            AppelRule("maybe", allowed_purposes=("current",))


class TestAppelPreferences:
    def preferences(self):
        return AppelPreferences([
            AppelRule("reject", data_group="#user.email",
                      allowed_purposes=("current", "admin")),
            AppelRule("reject",
                      allowed_retentions=("no-retention", "stated-purpose")),
            AppelRule("accept", allowed_recipients=("ours", "delivery")),
        ], default="reject")

    def test_careful_site_accepted(self):
        behavior, rule = self.preferences().evaluate(catalog(), "careful")
        assert behavior == "accept"
        assert rule is not None and rule.behavior == "accept"

    def test_spammy_site_rejected_by_first_rule(self):
        behavior, rule = self.preferences().evaluate(catalog(), "spammy")
        assert behavior == "reject"
        assert rule is self.preferences().rules[0] or rule.behavior == "reject"

    def test_default_applies_when_nothing_matches(self):
        preferences = AppelPreferences(
            [AppelRule("accept", allowed_purposes=("historical",))],
            default="reject",
        )
        assert preferences.evaluate(catalog(), "careful")[0] == "reject"

    def test_unknown_policy_raises(self):
        with pytest.raises(PolicyError, match="no shredded"):
            self.preferences().evaluate(catalog(), "ghost")

    def test_acceptable_wrapper(self):
        assert self.preferences().acceptable(catalog(), "careful")
        assert not self.preferences().acceptable(catalog(), "spammy")

    def test_default_validation(self):
        with pytest.raises(PolicyError):
            AppelPreferences([], default="shrug")
