"""Unit tests for the policy DSL, evaluation, and the store."""

import pytest

from repro.errors import PolicyError
from repro.policy import (
    DisclosureForm,
    PolicyRule,
    PolicyStore,
    PrivacyView,
    SourcePolicy,
    UserPreferences,
    combine,
    evaluate_request,
    parse_policy_document,
)
from repro.policy.model import Decision, PurposeTree

DOCUMENT = """
# clinical sources
VIEW clinical_private {
    PRIVATE //patient/ssn;
    PRIVATE //patient/dob FORM range;
    PRIVATE //test/result FORM aggregate;
}

POLICY HMO1 DEFAULT deny {
    DENY //patient/ssn FOR *;
    ALLOW //patient/dob FOR treatment FORM exact;
    ALLOW //test/result FOR public-health-research FORM aggregate MAXLOSS 0.3;
    ALLOW //patient/zip FOR research FORM range ROLES epidemiologist;
}

PREFERENCE alice {
    DENY //dob FOR marketing;
    ALLOW //dob FOR research FORM range MAXLOSS 0.5;
}
"""


class TestDslParsing:
    def test_full_document(self):
        document = parse_policy_document(DOCUMENT)
        assert set(document.views) == {"clinical_private"}
        assert set(document.policies) == {"HMO1"}
        assert set(document.preferences) == {"alice"}

    def test_view_entries(self):
        view = parse_policy_document(DOCUMENT).views["clinical_private"]
        assert view.form_for("//patient/ssn") is DisclosureForm.SUPPRESSED
        assert view.form_for("//patient/dob") is DisclosureForm.RANGE
        assert view.form_for("//patient/name") is DisclosureForm.EXACT
        assert view.is_private("//patient/dob")
        assert not view.is_private("//patient/name")

    def test_policy_rules(self):
        policy = parse_policy_document(DOCUMENT).policies["HMO1"]
        assert policy.default_effect == "deny"
        assert len(policy.rules) == 4
        assert policy.rules[2].max_loss == pytest.approx(0.3)
        assert policy.rules[3].roles == frozenset({"epidemiologist"})

    def test_comments_ignored(self):
        document = parse_policy_document("# just a comment\nVIEW v { }")
        assert document.views["v"].entries == []

    def test_duplicate_names_rejected(self):
        with pytest.raises(PolicyError, match="duplicate"):
            parse_policy_document("VIEW v { } VIEW v { }")

    def test_syntax_errors(self):
        with pytest.raises(PolicyError):
            parse_policy_document("POLICY p { ALLOW notapath; }")
        with pytest.raises(PolicyError):
            parse_policy_document("POLICY p { ALLOW //x FOR }")
        with pytest.raises(PolicyError):
            parse_policy_document("BANANA x { }")
        with pytest.raises(PolicyError):
            parse_policy_document("POLICY p { ALLOW //x MAXLOSS high; }")


class TestCombination:
    def test_denial_wins(self):
        allowed = Decision(True, DisclosureForm.EXACT, 1.0, ["a"])
        denied = Decision.deny("no")
        assert not combine(allowed, denied).allowed

    def test_most_restrictive_form_and_loss(self):
        a = Decision(True, DisclosureForm.EXACT, 0.8, ["a"])
        b = Decision(True, DisclosureForm.RANGE, 0.3, ["b"])
        combined = combine(a, b)
        assert combined.form is DisclosureForm.RANGE
        assert combined.max_loss == pytest.approx(0.3)

    def test_combined_suppression_is_denial(self):
        a = Decision(True, DisclosureForm.SUPPRESSED, 1.0)
        assert not combine(a).allowed

    def test_empty_is_denial(self):
        assert not combine().allowed


class TestEvaluateRequest:
    def store(self):
        store = PolicyStore()
        store.load_document(DOCUMENT, view_source={"clinical_private": "HMO1"})
        return store

    def test_policy_and_view_combine(self):
        # policy allows aggregate (0.3); view caps at aggregate → aggregate
        decision = evaluate_request(
            self.store(), "HMO1", "//test/result", "outbreak-surveillance"
        )
        assert decision.allowed
        assert decision.form is DisclosureForm.AGGREGATE
        assert decision.max_loss == pytest.approx(0.3)

    def test_view_caps_policy_exact(self):
        # policy allows dob exact for treatment, but view caps at range
        decision = evaluate_request(self.store(), "HMO1", "//patient/dob", "treatment")
        assert decision.allowed
        assert decision.form is DisclosureForm.RANGE

    def test_view_suppression_denies(self):
        decision = evaluate_request(self.store(), "HMO1", "//patient/ssn", "treatment")
        assert not decision.allowed

    def test_role_gated_rule(self):
        store = self.store()
        ungated = evaluate_request(store, "HMO1", "//patient/zip", "research")
        assert not ungated.allowed  # role required, none supplied
        gated = evaluate_request(
            store, "HMO1", "//patient/zip", "research", role="epidemiologist"
        )
        assert gated.allowed
        assert gated.form is DisclosureForm.RANGE

    def test_subject_preferences_constrain(self):
        store = self.store()
        decision = evaluate_request(
            store, "HMO1", "//patient/dob", "treatment", subjects=["alice"]
        )
        # alice only allows dob for research; treatment isn't research → deny
        assert not decision.allowed
        research = evaluate_request(
            store, "HMO1", "//patient/dob", "outbreak-surveillance",
            subjects=["alice"],
        )
        # policy has no dob-for-research rule → default deny even though
        # alice would allow it
        assert not research.allowed

    def test_default_deny_for_unknown_path(self):
        decision = evaluate_request(self.store(), "HMO1", "//billing/card", "treatment")
        assert not decision.allowed

    def test_unknown_source_no_policy_view(self):
        store = self.store()
        decision = evaluate_request(store, "HMO9", "//patient/dob", "treatment")
        assert not decision.allowed  # nothing applies → deny


class TestPolicyStore:
    def test_registration_type_checks(self):
        store = PolicyStore()
        with pytest.raises(PolicyError):
            store.register_view("s", "not a view")
        with pytest.raises(PolicyError):
            store.register_policy("not a policy")
        with pytest.raises(PolicyError):
            store.register_preferences("nope")

    def test_manual_registration_and_lookup(self):
        store = PolicyStore()
        store.register_view("s", PrivacyView("v"))
        store.register_policy(SourcePolicy("s"))
        store.register_preferences(UserPreferences("u"))
        assert store.view_for("s") is not None
        assert store.policy_for("s") is not None
        assert store.preferences_for("u") is not None
        assert store.sources() == ["s"]

    def test_replicate_shares_content(self):
        store = PolicyStore()
        store.load_document(DOCUMENT)
        clone = store.replicate()
        assert clone.policy_for("HMO1") is store.policy_for("HMO1")
        assert clone.purposes is store.purposes

    def test_custom_purposes(self):
        purposes = PurposeTree({"only": None})
        store = PolicyStore(purposes)
        policy = SourcePolicy("s", [PolicyRule("allow", "//x", "only")])
        store.register_policy(policy)
        decision = evaluate_request(store, "s", "//x", "only")
        assert decision.allowed
