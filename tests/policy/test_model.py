"""Unit tests for the policy vocabulary (purposes, forms, rules, overlap)."""

import pytest

from repro.errors import PolicyError
from repro.policy import Decision, DisclosureForm, PolicyRule, PurposeTree, paths_overlap
from repro.xmlkit import parse_path


class TestDisclosureForm:
    def test_ordering(self):
        assert DisclosureForm.SUPPRESSED < DisclosureForm.AGGREGATE
        assert DisclosureForm.AGGREGATE < DisclosureForm.RANGE
        assert DisclosureForm.RANGE < DisclosureForm.EXACT

    def test_permits_downward(self):
        assert DisclosureForm.RANGE.permits(DisclosureForm.AGGREGATE)
        assert DisclosureForm.RANGE.permits(DisclosureForm.RANGE)
        assert not DisclosureForm.RANGE.permits(DisclosureForm.EXACT)

    def test_parse(self):
        assert DisclosureForm.parse("Exact") is DisclosureForm.EXACT
        with pytest.raises(PolicyError):
            DisclosureForm.parse("partial")


class TestPurposeTree:
    def test_default_taxonomy_implication(self):
        purposes = PurposeTree()
        assert purposes.implies("outbreak-surveillance", "research")
        assert purposes.implies("outbreak-surveillance", "public-health-research")
        assert purposes.implies("research", "research")
        assert not purposes.implies("research", "outbreak-surveillance")
        assert not purposes.implies("marketing", "research")

    def test_any_purpose(self):
        assert PurposeTree().implies("marketing", "*")

    def test_unknown_purpose_rejected(self):
        purposes = PurposeTree()
        with pytest.raises(PolicyError):
            purposes.implies("time-travel", "research")
        with pytest.raises(PolicyError):
            purposes.implies("research", "time-travel")

    def test_add_and_ancestors(self):
        purposes = PurposeTree()
        purposes.add("sars-tracking", "outbreak-surveillance")
        assert purposes.implies("sars-tracking", "research")
        assert purposes.ancestors("sars-tracking") == [
            "sars-tracking", "outbreak-surveillance",
            "public-health-research", "research",
        ]

    def test_duplicate_add_rejected(self):
        with pytest.raises(PolicyError):
            PurposeTree().add("research")

    def test_unknown_parent_rejected(self):
        with pytest.raises(PolicyError):
            PurposeTree().add("x", "ghost")
        with pytest.raises(PolicyError):
            PurposeTree({"a": "ghost"})


class TestPathsOverlap:
    def overlap(self, a, b):
        return paths_overlap(parse_path(a), parse_path(b))

    def test_identical(self):
        assert self.overlap("//patient/dob", "//patient/dob")

    def test_policy_shorter_than_request(self):
        assert self.overlap("//dob", "/clinic/patient/dob")
        assert self.overlap("//patient/dob", "/clinic/patient/record/dob")

    def test_request_shorter_than_policy(self):
        assert self.overlap("/clinic/patient/dob", "//dob")

    def test_different_leaf(self):
        assert not self.overlap("//patient/dob", "//patient/zip")

    def test_context_mismatch(self):
        assert not self.overlap("//physician/name", "//patient/dob")

    def test_wildcard_leaf(self):
        assert self.overlap("//patient/*", "//patient/dob")

    def test_order_matters(self):
        assert not self.overlap("//dob/patient", "//patient/dob")


class TestPolicyRule:
    def test_applies_to(self):
        purposes = PurposeTree()
        rule = PolicyRule(
            "allow", "//test/result", "research",
            DisclosureForm.AGGREGATE, 0.3,
        )
        request = parse_path("//patient/test/result")
        assert rule.applies_to(request, "outbreak-surveillance", purposes)
        assert not rule.applies_to(request, "marketing", purposes)
        assert not rule.applies_to(parse_path("//patient/ssn"),
                                   "research", purposes)

    def test_role_restriction(self):
        purposes = PurposeTree()
        rule = PolicyRule("allow", "//dob", roles=["physician"])
        path = parse_path("//patient/dob")
        assert rule.applies_to(path, "treatment", purposes, role="physician")
        assert not rule.applies_to(path, "treatment", purposes, role="clerk")
        assert not rule.applies_to(path, "treatment", purposes, role=None)

    def test_validation(self):
        with pytest.raises(PolicyError):
            PolicyRule("maybe", "//x")
        with pytest.raises(PolicyError):
            PolicyRule("allow", 42)
        with pytest.raises(PolicyError):
            PolicyRule("allow", "//x", form="exact")
        with pytest.raises(PolicyError):
            PolicyRule("allow", "//x", max_loss=2.0)

    def test_decision_constructors(self):
        denied = Decision.deny("because")
        assert not denied.allowed
        assert denied.reasons == ["because"]
