"""Unit tests for string similarity measures."""

import pytest
from hypothesis import given, strategies as st

from repro.linkage import (
    jaro_similarity,
    jaro_winkler,
    levenshtein,
    ngram_dice,
    normalized_levenshtein,
)
from repro.linkage.similarity import record_qgrams


class TestLevenshtein:
    def test_identical(self):
        assert levenshtein("kitten", "kitten") == 0

    def test_classic_example(self):
        assert levenshtein("kitten", "sitting") == 3

    def test_empty_strings(self):
        assert levenshtein("", "abc") == 3
        assert levenshtein("abc", "") == 3
        assert levenshtein("", "") == 0

    def test_symmetry(self):
        assert levenshtein("flaw", "lawn") == levenshtein("lawn", "flaw")

    def test_normalized_bounds(self):
        assert normalized_levenshtein("abc", "abc") == 1.0
        assert normalized_levenshtein("abc", "xyz") == 0.0
        assert normalized_levenshtein("", "") == 1.0


class TestJaro:
    def test_identical(self):
        assert jaro_similarity("martha", "martha") == 1.0

    def test_classic_martha_marhta(self):
        assert jaro_similarity("martha", "marhta") == pytest.approx(0.9444, abs=1e-3)

    def test_classic_dixon_dicksonx(self):
        assert jaro_similarity("dixon", "dicksonx") == pytest.approx(0.7667, abs=1e-3)

    def test_empty(self):
        assert jaro_similarity("", "abc") == 0.0

    def test_no_matches(self):
        assert jaro_similarity("abc", "xyz") == 0.0

    def test_winkler_boosts_shared_prefix(self):
        base = jaro_similarity("martha", "marhta")
        boosted = jaro_winkler("martha", "marhta")
        assert boosted > base

    def test_winkler_classic_value(self):
        assert jaro_winkler("martha", "marhta") == pytest.approx(0.9611, abs=1e-3)

    def test_winkler_no_common_prefix_equals_jaro(self):
        assert jaro_winkler("abcd", "xbcd") == jaro_similarity("abcd", "xbcd")


class TestNgrams:
    def test_dice_identical(self):
        assert ngram_dice("smith", "smith") == 1.0

    def test_dice_disjoint(self):
        assert ngram_dice("aaa", "zzz") == 0.0

    def test_dice_empty(self):
        assert ngram_dice("", "") == 1.0
        assert ngram_dice("", "a") == 0.0

    def test_record_qgrams_field_tagged(self):
        grams = record_qgrams(["ab", "ab"])
        # same value in two fields yields distinct tagged grams
        assert any(g.startswith("0:") for g in grams)
        assert any(g.startswith("1:") for g in grams)

    def test_record_qgrams_case_insensitive(self):
        assert record_qgrams(["John"]) == record_qgrams(["john"])


_text = st.text(alphabet="abcdef", max_size=12)


@given(_text, _text)
def test_levenshtein_triangle_like_bounds(a, b):
    """Distance is bounded by the longer string and 0 iff equal."""
    d = levenshtein(a, b)
    assert 0 <= d <= max(len(a), len(b))
    assert (d == 0) == (a == b)


@given(_text, _text)
def test_jaro_symmetric_and_bounded(a, b):
    s = jaro_similarity(a, b)
    assert 0.0 <= s <= 1.0
    assert s == pytest.approx(jaro_similarity(b, a))


@given(_text, _text)
def test_jaro_winkler_at_least_jaro(a, b):
    assert jaro_winkler(a, b) >= jaro_similarity(a, b) - 1e-12
