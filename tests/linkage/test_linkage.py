"""Unit tests for blocking, Fellegi–Sunter, private linkage, and dedup."""

import random

import pytest

from repro.crypto import TEST_GROUP
from repro.errors import ReproError
from repro.linkage import (
    BloomRecordEncoder,
    FellegiSunter,
    FieldComparison,
    block_records,
    bloom_link,
    deduplicate,
    link_tables,
    psi_link_exact,
)
from repro.linkage.blocking import candidate_pairs, reduction_ratio, soundex


class TestSoundexBlocking:
    def test_soundex_classics(self):
        assert soundex("Robert") == "R163"
        assert soundex("Rupert") == "R163"
        assert soundex("Ashcraft") == "A261"
        assert soundex("Tymczak") == "T522"
        assert soundex("Pfister") == "P236"

    def test_soundex_empty(self):
        assert soundex("") == "0000"

    def test_block_by_field(self):
        records = [{"name": "Al", "zip": "1"}, {"name": "Bo", "zip": "1"},
                   {"name": "Cy", "zip": "2"}, {"name": "Dee", "zip": None}]
        blocks = block_records(records, "zip")
        assert len(blocks["1"]) == 2
        assert len(blocks["2"]) == 1
        assert sum(len(v) for v in blocks.values()) == 3  # None dropped

    def test_block_by_callable(self):
        records = [{"name": "Robert"}, {"name": "Rupert"}, {"name": "Alice"}]
        blocks = block_records(records, lambda r: soundex(r["name"]))
        assert len(blocks["R163"]) == 2

    def test_bad_key_rejected(self):
        with pytest.raises(ReproError):
            block_records([], 42)

    def test_candidate_pairs_and_reduction(self):
        a = [{"k": "x", "v": 1}, {"k": "y", "v": 2}]
        b = [{"k": "x", "v": 3}, {"k": "z", "v": 4}]
        pairs = list(candidate_pairs(a, b, "k"))
        assert len(pairs) == 1
        assert reduction_ratio(2, 2, len(pairs)) == 0.75


def classifier():
    return FellegiSunter(
        [
            FieldComparison("name", m=0.95, u=0.02),
            FieldComparison("dob", m=0.98, u=0.01, similarity=lambda a, b: float(a == b), threshold=1.0),
        ],
        upper=4.0,
        lower=0.0,
    )


class TestFellegiSunter:
    def test_exact_pair_is_match(self):
        a = {"name": "alice smith", "dob": "1970-01-01"}
        assert classifier().classify(a, dict(a)) == "match"

    def test_typo_pair_still_matches(self):
        a = {"name": "alice smith", "dob": "1970-01-01"}
        b = {"name": "alice smyth", "dob": "1970-01-01"}
        assert classifier().classify(a, b) == "match"

    def test_different_pair_is_non_match(self):
        a = {"name": "alice smith", "dob": "1970-01-01"}
        b = {"name": "bob jones", "dob": "1988-12-31"}
        assert classifier().classify(a, b) == "non-match"

    def test_missing_field_neutral(self):
        c = classifier()
        a = {"name": "alice smith", "dob": None}
        b = {"name": "alice smith", "dob": "1970-01-01"}
        partial = c.score(a, b)
        full = c.score({**a, "dob": "1970-01-01"}, b)
        assert partial < full
        assert partial > 0

    def test_weights_signs(self):
        fc = FieldComparison("f", m=0.9, u=0.1)
        assert fc.agreement_weight > 0
        assert fc.disagreement_weight < 0

    def test_invalid_mu_rejected(self):
        with pytest.raises(ReproError):
            FieldComparison("f", m=0.1, u=0.5)

    def test_thresholds_validated(self):
        with pytest.raises(ReproError):
            FellegiSunter([FieldComparison("f")], upper=0.0, lower=1.0)

    def test_possible_band(self):
        c = FellegiSunter([FieldComparison("name", m=0.9, u=0.1)], upper=10.0, lower=-10.0)
        a = {"name": "alice"}
        assert c.classify(a, dict(a)) == "possible"
        assert c.is_match(a, dict(a), accept_possible=True)


class TestBloomLinkage:
    def encoder(self):
        return BloomRecordEncoder(["name", "dob"], size=512, num_hashes=4)

    def test_exact_duplicates_link(self):
        a = [{"name": "alice smith", "dob": "1970-01-01"}]
        b = [{"name": "alice smith", "dob": "1970-01-01"}]
        links = bloom_link(a, b, self.encoder(), threshold=0.9)
        assert len(links) == 1
        assert links[0][2] == pytest.approx(1.0)

    def test_typos_link_above_lower_threshold(self):
        a = [{"name": "alice smith", "dob": "1970-01-01"}]
        b = [{"name": "alice smyth", "dob": "1970-01-01"}]
        links = bloom_link(a, b, self.encoder(), threshold=0.8)
        assert len(links) == 1

    def test_distinct_records_do_not_link(self):
        a = [{"name": "alice smith", "dob": "1970-01-01"}]
        b = [{"name": "pedro gomez", "dob": "1955-06-30"}]
        assert bloom_link(a, b, self.encoder(), threshold=0.8) == []

    def test_bad_threshold_rejected(self):
        with pytest.raises(ReproError):
            bloom_link([], [], self.encoder(), threshold=0.0)

    def test_encoder_requires_fields(self):
        with pytest.raises(ReproError):
            BloomRecordEncoder([])


class TestPsiLinkage:
    def test_exact_linkage(self):
        a = [{"name": "Alice", "dob": "1970-01-01"},
             {"name": "Bob", "dob": "1980-02-02"}]
        b = [{"name": "alice ", "dob": "1970-01-01"},  # normalisation absorbs case/space
             {"name": "Cara", "dob": "1990-03-03"}]
        shared, matched_a, matched_b = psi_link_exact(
            a, b, ["name", "dob"], group=TEST_GROUP, rng=random.Random(5)
        )
        assert len(shared) == 1
        assert matched_a[0]["name"] == "Alice"
        assert matched_b[0]["name"] == "alice "

    def test_no_matches(self):
        shared, ma, mb = psi_link_exact(
            [{"name": "X"}], [{"name": "Y"}], ["name"],
            group=TEST_GROUP, rng=random.Random(5),
        )
        assert shared == [] and ma == [] and mb == []


class TestDedup:
    def test_exact_and_fuzzy_duplicates_merged(self):
        records = [
            {"name": "alice smith", "dob": "1970-01-01", "hmo": None},
            {"name": "alice smyth", "dob": "1970-01-01", "hmo": "HMO1"},
            {"name": "bob jones", "dob": "1988-12-31", "hmo": "HMO2"},
        ]
        deduped, clusters = deduplicate(records, classifier())
        assert len(deduped) == 2
        assert [0, 1] in clusters
        merged = next(r for r in deduped if r["name"] == "alice smith")
        assert merged["hmo"] == "HMO1"  # missing field filled from duplicate

    def test_blocking_limits_comparisons(self):
        records = [
            {"name": "alice smith", "dob": "1970-01-01", "zip": "15213"},
            {"name": "alice smith", "dob": "1970-01-01", "zip": "15213"},
            {"name": "alice smith", "dob": "1970-01-01", "zip": "99999"},
        ]
        deduped, clusters = deduplicate(records, classifier(), blocking_key="zip")
        # third record is identical but in a different block → never compared
        assert len(deduped) == 2

    def test_transitive_clusters(self):
        c = FellegiSunter(
            [FieldComparison("name", m=0.95, u=0.02)], upper=3.0, lower=0.0
        )
        records = [
            {"name": "jonathan doe"},
            {"name": "jonathon doe"},
            {"name": "jonathon do"},
        ]
        _deduped, clusters = deduplicate(records, c)
        assert clusters == [[0, 1, 2]]

    def test_custom_merge(self):
        records = [{"name": "a", "v": 1}, {"name": "a", "v": 2}]
        c = FellegiSunter([FieldComparison("name", m=0.95, u=0.02)], upper=3.0)
        deduped, _ = deduplicate(
            records, c, merge=lambda cluster: {"n": len(cluster)}
        )
        assert deduped == [{"n": 2}]

    def test_link_tables(self):
        a = [{"name": "alice smith", "dob": "1970-01-01"}]
        b = [{"name": "alice smyth", "dob": "1970-01-01"},
             {"name": "zed zorro", "dob": "2000-01-01"}]
        links = link_tables(a, b, classifier())
        assert len(links) == 1
        assert links[0][2] > 0
