"""Differential tests: vectorized kernels vs their scalar references.

Every hot kernel behind the :mod:`repro.kernels` gate is run twice on
the same seeded inputs — once with ``REPRO_SCALAR_KERNELS=1`` (the
scalar reference, the executable specification) and once vectorized —
and the outputs are compared.  Seeds are fixed, so a divergence is a
reproducible counterexample, not a flake.  Across the parametrized
cases this file pins ~500 seeded inputs.
"""

import math
import random

import numpy as np
import pytest

from repro.anonymity.hierarchy import interval_hierarchy
from repro.anonymity.kanonymity import (
    FullDomainGeneralizer,
    class_sizes,
    is_k_anonymous,
    measured_k,
)
from repro.anonymity.mondrian import anonymized_records, mondrian_partition
from repro.inference.bounds import AggregateConstraints, cell_bounds
from repro.kernels import SCALAR_ENV, kernel_mode, use_scalar_kernels
from repro.metrics.privacy_loss import budget_fixed_point
from repro.statdb.laplace import LaplaceMechanism, PrivacyBudget


def both_modes(monkeypatch, fn):
    """Run ``fn()`` under the scalar reference, then vectorized."""
    monkeypatch.setenv(SCALAR_ENV, "1")
    assert use_scalar_kernels()
    scalar = fn()
    monkeypatch.setenv(SCALAR_ENV, "")
    assert not use_scalar_kernels()
    vectorized = fn()
    return scalar, vectorized


class TestKernelGate:
    def test_mode_reflects_environment(self, monkeypatch):
        monkeypatch.setenv(SCALAR_ENV, "1")
        assert kernel_mode() == "scalar"
        monkeypatch.setenv(SCALAR_ENV, "0")
        assert kernel_mode() == "vectorized"
        monkeypatch.delenv(SCALAR_ENV)
        assert kernel_mode() == "vectorized"


class TestBudgetFixedPoint:
    """150 seeded loss/budget profiles through both fixed-point paths."""

    @pytest.mark.parametrize("seed", range(150))
    def test_fixed_point_matches_reference(self, monkeypatch, seed):
        rng = random.Random(seed)
        names = [f"s{i}" for i in range(rng.randint(2, 8))]
        losses = {name: round(rng.random(), 6) for name in names}
        budgets = {
            name: round(rng.random(), 6)
            for name in names
            if rng.random() < 0.7
        }

        def run():
            return budget_fixed_point(dict(losses), dict(budgets))

        scalar, vectorized = both_modes(monkeypatch, run)
        s_part, s_agg, s_withheld = scalar
        v_part, v_agg, v_withheld = vectorized
        assert v_part == s_part
        assert v_agg == pytest.approx(s_agg, abs=1e-12)
        assert [w[0] for w in v_withheld] == [w[0] for w in s_withheld]
        for (_, s_at, s_budget), (_, v_at, v_budget) in zip(
            s_withheld, v_withheld
        ):
            assert v_at == pytest.approx(s_at, abs=1e-12)
            assert v_budget == pytest.approx(s_budget, abs=1e-12)

    def test_out_of_range_loss_raises_identically(self, monkeypatch):
        from repro.errors import ReproError

        losses = {"a": 0.3, "b": 1.5, "c": 0.2}

        def run():
            try:
                budget_fixed_point(losses, {})
            except ReproError as error:
                return str(error)
            return None

        scalar, vectorized = both_modes(monkeypatch, run)
        assert scalar is not None
        assert vectorized == scalar


def random_table(rng, n_rows, attributes, cardinality):
    return [
        {attr: rng.randrange(cardinality) for attr in attributes}
        for _ in range(n_rows)
    ]


class TestKAnonymityCounting:
    """100 seeded QI tables through both class-counting paths."""

    @pytest.mark.parametrize("seed", range(100))
    def test_counting_matches_reference(self, monkeypatch, seed):
        rng = random.Random(1000 + seed)
        attributes = [f"q{i}" for i in range(rng.randint(1, 4))]
        records = random_table(
            rng, rng.randint(1, 60), attributes, rng.randint(2, 5)
        )
        k = rng.randint(1, 5)

        def run():
            return (
                class_sizes(records, attributes),
                is_k_anonymous(records, attributes, k),
                measured_k(records, attributes),
            )

        scalar, vectorized = both_modes(monkeypatch, run)
        assert np.array_equal(vectorized[0], scalar[0])
        assert vectorized[1:] == scalar[1:]


class TestLatticeSearch:
    """80 seeded tables through both full-domain lattice search paths."""

    @pytest.mark.parametrize("seed", range(50))
    def test_anonymize_matches_reference(self, monkeypatch, seed):
        rng = random.Random(2000 + seed)
        generalizer = FullDomainGeneralizer([
            interval_hierarchy("age", [5, 10, 20]),
            interval_hierarchy("visits", [2, 4]),
        ])
        records = [
            {"age": rng.randrange(20, 80), "visits": rng.randrange(8)}
            for _ in range(rng.randint(4, 40))
        ]
        k = rng.randint(2, 4)
        max_suppressed = rng.randrange(4)

        def run():
            result = generalizer.anonymize(
                records, k, max_suppressed=max_suppressed
            )
            return result.node, result.records, result.suppressed

        scalar, vectorized = both_modes(monkeypatch, run)
        assert vectorized == scalar

    @pytest.mark.parametrize("seed", range(30))
    def test_diverse_anonymize_matches_reference(self, monkeypatch, seed):
        rng = random.Random(3000 + seed)
        generalizer = FullDomainGeneralizer([
            interval_hierarchy("age", [5, 10, 20]),
        ])
        records = [
            {"age": rng.randrange(20, 80),
             "diagnosis": rng.choice("abcd")}
            for _ in range(rng.randint(6, 30))
        ]

        def run():
            result = generalizer.anonymize(
                records, 2, max_suppressed=3, l=2, sensitive="diagnosis"
            )
            return result.node, result.records, result.suppressed

        scalar, vectorized = both_modes(monkeypatch, run)
        assert vectorized == scalar


class TestMondrian:
    """60 seeded numeric tables through both Mondrian recursions."""

    @pytest.mark.parametrize("seed", range(60))
    def test_partitions_match_reference(self, monkeypatch, seed):
        rng = random.Random(4000 + seed)
        attributes = [f"q{i}" for i in range(rng.randint(1, 3))]
        k = rng.randint(2, 5)
        records = [
            {attr: rng.randrange(100) for attr in attributes}
            for _ in range(rng.randint(k, 80))
        ]

        def run():
            partitions = mondrian_partition(records, attributes, k)
            released = anonymized_records(partitions, attributes)
            return (
                [(ranges, members) for ranges, members in partitions],
                released,
            )

        scalar, vectorized = both_modes(monkeypatch, run)
        assert vectorized == scalar


class TestLaplace:
    """Seeded noise streams: batch = sequential, quantiles match scale."""

    @pytest.mark.parametrize("seed", range(40))
    def test_batch_equals_sequential_draws(self, monkeypatch, seed):
        monkeypatch.setenv(SCALAR_ENV, "")
        values = [float(i) for i in range(12)]
        fingerprints = [f"fp{i % 8}" for i in range(12)]  # dupes replay
        one = LaplaceMechanism(0.5, rng=seed)
        many = LaplaceMechanism(0.5, rng=seed)
        sequential = [
            one.answer(v, fp) for v, fp in zip(values, fingerprints)
        ]
        batched = many.answer_many(values, fingerprints)
        assert batched == sequential

    @pytest.mark.parametrize("seed", range(20))
    def test_scalar_and_vectorized_quantiles_agree(self, monkeypatch, seed):
        def run():
            mechanism = LaplaceMechanism(1.0, rng=5000 + seed)
            return np.asarray(mechanism.answer_many(
                [0.0] * 2000, [f"fp{i}" for i in range(2000)]
            ))

        scalar, vectorized = both_modes(monkeypatch, run)
        for q in (0.1, 0.25, 0.5, 0.75, 0.9):
            assert np.quantile(vectorized, q) == pytest.approx(
                np.quantile(scalar, q), abs=0.25
            )
        # Median |noise| estimates b·ln 2 for Laplace(b); b = 1 here.
        for samples in (scalar, vectorized):
            assert np.median(np.abs(samples)) == pytest.approx(
                math.log(2), abs=0.15
            )

    def test_budget_exhaustion_state_matches_sequential(self, monkeypatch):
        from repro.errors import PrivacyViolation

        monkeypatch.setenv(SCALAR_ENV, "")

        def exercise(answer_all):
            budget = PrivacyBudget(1.0)
            mechanism = LaplaceMechanism(0.4, budget=budget, rng=77)
            with pytest.raises(PrivacyViolation):
                answer_all(mechanism)
            return budget.spent("anonymous"), dict(mechanism._memo)

        def sequential(mechanism):
            for i in range(4):
                mechanism.answer(float(i), f"fp{i}")

        def batched(mechanism):
            mechanism.answer_many(
                [float(i) for i in range(4)],
                [f"fp{i}" for i in range(4)],
            )

        assert exercise(sequential) == exercise(batched)


class TestBoundsSolver:
    """Seeded bound problems through both SLSQP constraint encodings."""

    @pytest.mark.parametrize("seed", range(12))
    def test_cell_bounds_match_reference(self, monkeypatch, seed):
        rng = random.Random(6000 + seed)
        n_rows, n_cols = rng.randint(1, 3), rng.randint(2, 4)
        table = [
            [rng.uniform(0.0, 100.0) for _ in range(n_cols)]
            for _ in range(n_rows)
        ]
        known = {0: [row[0] for row in table]}
        constraints = AggregateConstraints(
            n_rows, n_cols, known,
            row_means=[sum(row) / n_cols for row in table],
            row_stds=(
                [np.std(row, ddof=1) for row in table]
                if n_cols >= 3 and rng.random() < 0.5 else None
            ),
            column_means=(
                {1: sum(row[1] for row in table) / n_rows}
                if rng.random() < 0.5 else None
            ),
        )

        from repro.errors import ReproError

        def run():
            # SLSQP can fail to certify a tight (stds-constrained) problem
            # from few starts; "infeasible" is then itself an output the
            # two constraint encodings must agree on.
            try:
                return cell_bounds(constraints, starts=6, seed=seed)
            except ReproError:
                return "infeasible"

        scalar, vectorized = both_modes(monkeypatch, run)
        if scalar == "infeasible" or vectorized == "infeasible":
            assert vectorized == scalar
            return
        assert set(vectorized) == set(scalar)
        for cell in scalar:
            assert vectorized[cell][0] == pytest.approx(
                scalar[cell][0], abs=1e-6
            )
            assert vectorized[cell][1] == pytest.approx(
                scalar[cell][1], abs=1e-6
            )
