"""Unit tests for tables and catalogs."""

import pytest

from repro.errors import RelationalError, SchemaError
from repro.relational import Catalog, Column, ColumnType, Table, TableSchema


class TestTable:
    def test_insert_validates(self):
        table = Table(TableSchema("t", [Column("a", "int")]))
        table.insert([1])
        with pytest.raises(SchemaError):
            table.insert(["x"])

    def test_from_dicts_infers_types(self):
        table = Table.from_dicts(
            "t", [{"a": 1, "b": 1.5, "c": "x", "d": True}]
        )
        types = {c.name: c.type for c in table.schema.columns}
        assert types == {
            "a": ColumnType.INT,
            "b": ColumnType.FLOAT,
            "c": ColumnType.TEXT,
            "d": ColumnType.BOOL,
        }

    def test_from_dicts_infers_from_first_non_null(self):
        table = Table.from_dicts("t", [{"a": None}, {"a": 2.5}])
        assert table.schema.column("a").type is ColumnType.FLOAT

    def test_from_dicts_type_override(self):
        table = Table.from_dicts("t", [{"a": 1}], types={"a": "float"})
        assert table.schema.column("a").type is ColumnType.FLOAT
        assert table.rows[0] == (1.0,)

    def test_from_dicts_requires_rows(self):
        with pytest.raises(SchemaError):
            Table.from_dicts("t", [])

    def test_column_values_and_len(self):
        table = Table.from_dicts("t", [{"a": 1}, {"a": 2}])
        assert table.column_values("a") == [1, 2]
        assert len(table) == 2

    def test_rows_as_dicts(self):
        table = Table.from_dicts("t", [{"a": 1, "b": "x"}])
        assert list(table.rows_as_dicts()) == [{"a": 1, "b": "x"}]

    def test_insert_many(self):
        table = Table(TableSchema("t", [Column("a", "int")]))
        table.insert_many([[1], [2], [3]])
        assert len(table) == 3


class TestCatalog:
    def test_add_and_lookup(self):
        cat = Catalog("db")
        table = Table.from_dicts("t", [{"a": 1}])
        cat.add(table)
        assert cat.table("t") is table
        assert "t" in cat
        assert cat.has_table("t")

    def test_duplicate_rejected(self):
        cat = Catalog()
        cat.add(Table.from_dicts("t", [{"a": 1}]))
        with pytest.raises(RelationalError, match="already"):
            cat.add(Table.from_dicts("t", [{"a": 2}]))

    def test_missing_table_error_lists_names(self):
        cat = Catalog("db")
        cat.add(Table.from_dicts("t", [{"a": 1}]))
        with pytest.raises(RelationalError, match=r"\['t'\]"):
            cat.table("missing")

    def test_drop(self):
        cat = Catalog()
        cat.add(Table.from_dicts("t", [{"a": 1}]))
        cat.drop("t")
        assert len(cat) == 0
        with pytest.raises(RelationalError):
            cat.drop("t")

    def test_non_table_rejected(self):
        with pytest.raises(RelationalError):
            Catalog().add("not a table")
