"""Property-based fuzzing of the query executor against a naive reference.

Random tables and random queries are executed both by the engine and by a
deliberately simple reference interpreter written directly over row dicts;
the two must always agree.  This is the strongest correctness guarantee we
have for the substrate every privacy component sits on.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.relational import (
    Aggregate,
    And,
    Comparison,
    Or,
    SelectQuery,
    Table,
    TRUE,
    execute,
)

_columns = ["a", "b", "label"]


def _rows_strategy():
    row = st.fixed_dictionaries({
        "a": st.integers(min_value=-50, max_value=50),
        "b": st.one_of(st.none(), st.integers(min_value=0, max_value=9)),
        "label": st.sampled_from(["x", "y", "z"]),
    })
    return st.lists(row, min_size=1, max_size=30)


def _predicate_strategy():
    comparison = st.builds(
        Comparison,
        st.sampled_from(["a", "b"]),
        st.sampled_from(["=", "!=", "<", "<=", ">", ">="]),
        st.integers(min_value=-20, max_value=20),
    )
    return st.one_of(
        st.just(TRUE),
        comparison,
        st.builds(lambda p, q: And([p, q]), comparison, comparison),
        st.builds(lambda p, q: Or([p, q]), comparison, comparison),
    )


def reference_filter(rows, predicate):
    out = []
    for row in rows:
        if predicate is TRUE:
            out.append(row)
            continue
        keep = _reference_eval(row, predicate)
        if keep:
            out.append(row)
    return out


def _reference_eval(row, predicate):
    if isinstance(predicate, And):
        return all(_reference_eval(row, p) for p in predicate.parts)
    if isinstance(predicate, Or):
        return any(_reference_eval(row, p) for p in predicate.parts)
    value = row[predicate.column]
    if value is None:
        return False
    ops = {
        "=": lambda x, y: x == y,
        "!=": lambda x, y: x != y,
        "<": lambda x, y: x < y,
        "<=": lambda x, y: x <= y,
        ">": lambda x, y: x > y,
        ">=": lambda x, y: x >= y,
    }
    return ops[predicate.op](value, predicate.value)


@settings(max_examples=120, deadline=None)
@given(_rows_strategy(), _predicate_strategy())
def test_projection_matches_reference(rows, predicate):
    table = Table.from_dicts("t", rows, column_order=_columns,
                             types={"b": "int"})
    result = execute(
        SelectQuery("t", columns=["a", "label"], where=predicate), table
    )
    expected = [
        (row["a"], row["label"]) for row in reference_filter(rows, predicate)
    ]
    assert result.rows == expected


@settings(max_examples=120, deadline=None)
@given(_rows_strategy(), _predicate_strategy())
def test_aggregates_match_reference(rows, predicate):
    table = Table.from_dicts("t", rows, column_order=_columns,
                             types={"b": "int"})
    query = SelectQuery(
        "t",
        aggregates=[
            Aggregate("count", "*", "n"),
            Aggregate("count", "b", "nb"),
            Aggregate("sum", "a", "sa"),
            Aggregate("avg", "a", "ma"),
            Aggregate("min", "a", "mina"),
            Aggregate("max", "a", "maxa"),
        ],
        where=predicate,
    )
    result = execute(query, table)
    kept = reference_filter(rows, predicate)
    n, nb, sa, ma, mina, maxa = result.rows[0]
    assert n == len(kept)
    assert nb == sum(1 for r in kept if r["b"] is not None)
    if kept:
        values = [r["a"] for r in kept]
        assert sa == sum(values)
        assert math.isclose(ma, sum(values) / len(values))
        assert mina == min(values)
        assert maxa == max(values)
    else:
        assert (sa, ma, mina, maxa) == (None, None, None, None)


@settings(max_examples=80, deadline=None)
@given(_rows_strategy(), _predicate_strategy())
def test_group_by_matches_reference(rows, predicate):
    table = Table.from_dicts("t", rows, column_order=_columns,
                             types={"b": "int"})
    query = SelectQuery(
        "t",
        columns=["label"],
        aggregates=[Aggregate("count", "*", "n"), Aggregate("sum", "a", "sa")],
        where=predicate,
        group_by=["label"],
    )
    result = execute(query, table)
    kept = reference_filter(rows, predicate)
    expected = {}
    for row in kept:
        entry = expected.setdefault(row["label"], [0, 0])
        entry[0] += 1
        entry[1] += row["a"]
    got = {r[0]: (r[1], r[2]) for r in result.rows}
    assert got == {k: tuple(v) for k, v in expected.items()}
