"""Unit tests for the logical-query executor."""

import math

import pytest

from repro.errors import RelationalError
from repro.relational import (
    Aggregate,
    Catalog,
    Comparison,
    InList,
    SelectQuery,
    Table,
    TableSchema,
    execute,
)
from repro.relational.engine import Join


def patients():
    return Table.from_dicts(
        "patients",
        [
            {"id": 1, "hmo": "HMO1", "hba1c": 75.0, "age": 60},
            {"id": 2, "hmo": "HMO1", "hba1c": 80.0, "age": 64},
            {"id": 3, "hmo": "HMO2", "hba1c": 88.0, "age": 70},
            {"id": 4, "hmo": "HMO2", "hba1c": 90.0, "age": None},
            {"id": 5, "hmo": "HMO3", "hba1c": None, "age": 55},
        ],
    )


def hmos():
    return Table.from_dicts(
        "hmos",
        [
            {"hmo": "HMO1", "county": "allegheny"},
            {"hmo": "HMO2", "county": "butler"},
            {"hmo": "HMO3", "county": "allegheny"},
        ],
    )


def catalog():
    cat = Catalog("clinic")
    cat.add(patients())
    cat.add(hmos())
    return cat


class TestProjection:
    def test_select_star(self):
        result = execute(SelectQuery("patients"), patients())
        assert len(result) == 5
        assert result.schema.column_names() == ["id", "hmo", "hba1c", "age"]

    def test_projection_order(self):
        result = execute(SelectQuery("patients", columns=["hba1c", "id"]), patients())
        assert result.schema.column_names() == ["hba1c", "id"]
        assert result.rows[0] == (75.0, 1)

    def test_unknown_column_rejected(self):
        with pytest.raises(RelationalError, match="unknown column"):
            execute(SelectQuery("patients", columns=["nope"]), patients())

    def test_where_filters(self):
        query = SelectQuery(
            "patients", columns=["id"], where=Comparison("hmo", "=", "HMO2")
        )
        result = execute(query, patients())
        assert [r[0] for r in result.rows] == [3, 4]

    def test_null_comparison_is_false(self):
        query = SelectQuery(
            "patients", columns=["id"], where=Comparison("hba1c", ">", 0)
        )
        result = execute(query, patients())
        assert len(result) == 4  # patient 5 has NULL hba1c

    def test_in_list(self):
        query = SelectQuery(
            "patients", columns=["id"], where=InList("hmo", ["HMO1", "HMO3"])
        )
        assert len(execute(query, patients())) == 3

    def test_distinct(self):
        query = SelectQuery("patients", columns=["hmo"], distinct=True)
        result = execute(query, patients())
        assert sorted(r[0] for r in result.rows) == ["HMO1", "HMO2", "HMO3"]

    def test_order_by_desc_with_nulls_last(self):
        query = SelectQuery(
            "patients", columns=["id", "hba1c"], order_by=[("hba1c", False)]
        )
        result = execute(query, patients())
        assert [r[0] for r in result.rows] == [4, 3, 2, 1, 5]

    def test_order_by_asc_then_limit(self):
        query = SelectQuery(
            "patients", columns=["id"], order_by=[("age", True)], limit=2
        )
        result = execute(query, patients())
        assert [r[0] for r in result.rows] == [5, 1]


class TestAggregation:
    def test_global_aggregates(self):
        query = SelectQuery(
            "patients",
            aggregates=[
                Aggregate("count", "*"),
                Aggregate("avg", "hba1c"),
                Aggregate("stddev", "hba1c"),
            ],
        )
        result = execute(query, patients())
        row = result.rows[0]
        assert row[0] == 5
        assert row[1] == pytest.approx((75 + 80 + 88 + 90) / 4)
        values = [75.0, 80.0, 88.0, 90.0]
        mean = sum(values) / 4
        expected = math.sqrt(sum((v - mean) ** 2 for v in values) / 4)
        assert row[2] == pytest.approx(expected)

    def test_count_column_skips_nulls(self):
        query = SelectQuery("patients", aggregates=[Aggregate("count", "hba1c")])
        assert execute(query, patients()).rows[0][0] == 4

    def test_group_by(self):
        query = SelectQuery(
            "patients",
            columns=["hmo"],
            aggregates=[Aggregate("avg", "hba1c", alias="mean")],
            group_by=["hmo"],
        )
        result = execute(query, patients())
        by_hmo = {r[0]: r[1] for r in result.rows}
        assert by_hmo["HMO1"] == pytest.approx(77.5)
        assert by_hmo["HMO2"] == pytest.approx(89.0)
        assert by_hmo["HMO3"] is None  # all NULL → NULL

    def test_group_rows_sorted_deterministically(self):
        query = SelectQuery(
            "patients",
            columns=["hmo"],
            aggregates=[Aggregate("count", "*")],
            group_by=["hmo"],
        )
        result = execute(query, patients())
        assert [r[0] for r in result.rows] == ["HMO1", "HMO2", "HMO3"]

    def test_min_max_sum(self):
        query = SelectQuery(
            "patients",
            aggregates=[
                Aggregate("min", "age"),
                Aggregate("max", "age"),
                Aggregate("sum", "age"),
            ],
        )
        assert execute(query, patients()).rows[0] == (55, 70, 249)

    def test_empty_global_aggregate_emits_one_row(self):
        query = SelectQuery(
            "patients",
            aggregates=[Aggregate("count", "*"), Aggregate("avg", "hba1c")],
            where=Comparison("id", ">", 100),
        )
        assert execute(query, patients()).rows == [(0, None)]

    def test_aggregate_over_text_rejected(self):
        query = SelectQuery("patients", aggregates=[Aggregate("avg", "hmo")])
        with pytest.raises(RelationalError, match="numeric"):
            execute(query, patients())

    def test_mixed_columns_without_group_by_rejected(self):
        with pytest.raises(RelationalError):
            SelectQuery(
                "patients", columns=["hmo"], aggregates=[Aggregate("count", "*")]
            )

    def test_non_grouped_column_rejected(self):
        with pytest.raises(RelationalError, match="non-grouped"):
            SelectQuery(
                "patients",
                columns=["id"],
                aggregates=[Aggregate("count", "*")],
                group_by=["hmo"],
            )

    def test_var_aggregate(self):
        query = SelectQuery("patients", aggregates=[Aggregate("var", "hba1c")])
        result = execute(query, patients())
        values = [75.0, 80.0, 88.0, 90.0]
        mean = sum(values) / 4
        assert result.rows[0][0] == pytest.approx(
            sum((v - mean) ** 2 for v in values) / 4
        )


class TestJoin:
    def test_equi_join(self):
        query = SelectQuery(
            "patients",
            columns=["id", "county"],
            join=Join("hmos", "hmo", "hmo"),
        )
        result = execute(query, catalog())
        counties = {r[0]: r[1] for r in result.rows}
        assert counties[1] == "allegheny"
        assert counties[3] == "butler"

    def test_join_renames_colliding_columns(self):
        query = SelectQuery("patients", join=Join("hmos", "hmo", "hmo"))
        result = execute(query, catalog())
        assert "hmos_hmo" in result.schema.column_names()

    def test_join_then_group(self):
        query = SelectQuery(
            "patients",
            columns=["county"],
            aggregates=[Aggregate("avg", "hba1c", alias="mean")],
            group_by=["county"],
            join=Join("hmos", "hmo", "hmo"),
        )
        result = execute(query, catalog())
        by_county = {r[0]: r[1] for r in result.rows}
        assert by_county["allegheny"] == pytest.approx(77.5)

    def test_join_requires_catalog(self):
        query = SelectQuery("patients", join=Join("hmos", "hmo", "hmo"))
        with pytest.raises(RelationalError, match="Catalog"):
            execute(query, patients())


class TestQueryModel:
    def test_columns_used(self):
        query = SelectQuery(
            "patients",
            columns=["hmo"],
            aggregates=[Aggregate("avg", "hba1c")],
            where=Comparison("age", ">", 50),
            group_by=["hmo"],
            order_by=[("hmo", True)],
        )
        assert query.columns_used() == {"hmo", "hba1c", "age"}

    def test_replace_produces_modified_copy(self):
        query = SelectQuery("patients", columns=["id"])
        changed = query.replace(limit=3)
        assert changed.limit == 3
        assert query.limit is None

    def test_output_columns(self):
        query = SelectQuery(
            "patients",
            columns=["hmo"],
            aggregates=[Aggregate("avg", "hba1c", alias="mean")],
            group_by=["hmo"],
        )
        assert query.output_columns() == ["hmo", "mean"]

    def test_aggregate_star_only_count(self):
        with pytest.raises(RelationalError):
            Aggregate("avg", "*")

    def test_execute_rejects_bad_source(self):
        with pytest.raises(RelationalError):
            execute(SelectQuery("patients"), {"not": "a table"})
