"""Unit tests for column types and schemas."""

import pytest

from repro.errors import SchemaError
from repro.relational import Column, ColumnType, TableSchema


class TestColumnType:
    def test_int_coercion(self):
        assert ColumnType.INT.coerce("42") == 42
        assert ColumnType.INT.coerce(7.0) == 7

    def test_int_rejects_fractional_float(self):
        with pytest.raises(SchemaError):
            ColumnType.INT.coerce(7.5)

    def test_int_rejects_bool(self):
        with pytest.raises(SchemaError):
            ColumnType.INT.coerce(True)

    def test_float_coercion(self):
        assert ColumnType.FLOAT.coerce("3.25") == 3.25
        assert ColumnType.FLOAT.coerce(2) == 2.0

    def test_float_rejects_garbage(self):
        with pytest.raises(SchemaError):
            ColumnType.FLOAT.coerce("abc")

    def test_bool_coercion(self):
        assert ColumnType.BOOL.coerce("yes") is True
        assert ColumnType.BOOL.coerce("0") is False
        assert ColumnType.BOOL.coerce(1) is True

    def test_bool_rejects_other_ints(self):
        with pytest.raises(SchemaError):
            ColumnType.BOOL.coerce(2)

    def test_text_coercion(self):
        assert ColumnType.TEXT.coerce(5) == "5"
        assert ColumnType.TEXT.coerce("x") == "x"

    def test_null_passthrough(self):
        for ct in ColumnType:
            assert ct.coerce(None) is None

    def test_is_numeric(self):
        assert ColumnType.INT.is_numeric
        assert ColumnType.FLOAT.is_numeric
        assert not ColumnType.TEXT.is_numeric
        assert not ColumnType.BOOL.is_numeric


class TestColumn:
    def test_string_type_accepted(self):
        assert Column("age", "int").type is ColumnType.INT

    def test_invalid_name_rejected(self):
        with pytest.raises(SchemaError):
            Column("bad name", ColumnType.INT)

    def test_unknown_type_rejected(self):
        with pytest.raises(SchemaError):
            Column("x", "decimal")

    def test_repr_mentions_not_null(self):
        assert "NOT NULL" in repr(Column("x", "int", nullable=False))


class TestTableSchema:
    def schema(self):
        return TableSchema(
            "patients",
            [
                Column("id", "int", nullable=False),
                Column("name", "text"),
                Column("hba1c", "float"),
            ],
        )

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            TableSchema("t", [Column("a", "int"), Column("a", "text")])

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [])

    def test_tuples_accepted_as_columns(self):
        schema = TableSchema("t", [("a", "int"), ("b", "text")])
        assert schema.column_names() == ["a", "b"]

    def test_index_and_lookup(self):
        schema = self.schema()
        assert schema.index_of("name") == 1
        assert schema.column("hba1c").type is ColumnType.FLOAT
        with pytest.raises(SchemaError):
            schema.index_of("missing")

    def test_coerce_row_sequence(self):
        row = self.schema().coerce_row(["1", "Alice", "75"])
        assert row == (1, "Alice", 75.0)

    def test_coerce_row_mapping_fills_missing_with_null(self):
        row = self.schema().coerce_row({"id": 2, "name": "Bob"})
        assert row == (2, "Bob", None)

    def test_coerce_row_rejects_unknown_keys(self):
        with pytest.raises(SchemaError, match="unknown columns"):
            self.schema().coerce_row({"id": 1, "oops": 2})

    def test_coerce_row_wrong_arity(self):
        with pytest.raises(SchemaError, match="row has"):
            self.schema().coerce_row([1, 2])

    def test_not_null_enforced(self):
        with pytest.raises(SchemaError, match="NOT NULL"):
            self.schema().coerce_row({"name": "x"})

    def test_subset_projection(self):
        schema = self.schema().subset(["name", "id"])
        assert schema.column_names() == ["name", "id"]
