"""Unit tests for SQL generation and parsing (round-trip)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SqlError
from repro.relational import (
    Aggregate,
    And,
    Comparison,
    InList,
    IsNull,
    Not,
    Or,
    SelectQuery,
    parse_sql,
    to_sql,
)
from repro.relational.engine import Join


class TestGeneration:
    def test_simple_select(self):
        query = SelectQuery("patients", columns=["id", "name"])
        assert to_sql(query) == "SELECT id, name FROM patients"

    def test_full_clause_ordering(self):
        query = SelectQuery(
            "patients",
            columns=["hmo"],
            aggregates=[Aggregate("avg", "hba1c", alias="mean")],
            where=Comparison("age", ">", 50),
            group_by=["hmo"],
            order_by=[("hmo", True)],
            limit=10,
        )
        assert to_sql(query) == (
            "SELECT hmo, AVG(hba1c) AS mean FROM patients WHERE age > 50 "
            "GROUP BY hmo ORDER BY hmo ASC LIMIT 10"
        )

    def test_string_literal_escaped(self):
        query = SelectQuery(
            "t", columns=["a"], where=Comparison("a", "=", "O'Hara")
        )
        assert "O''Hara" in to_sql(query)

    def test_join_rendered(self):
        query = SelectQuery(
            "a", columns=["x"], join=Join("b", "k", "k2")
        )
        assert "JOIN b ON k = k2" in to_sql(query)

    def test_not_and_or_rendering(self):
        where = Not(Or([Comparison("a", "=", 1), And([Comparison("b", "<", 2), IsNull("c")])]))
        query = SelectQuery("t", columns=["a"], where=where)
        sql = to_sql(query)
        assert "NOT" in sql and "OR" in sql and "IS NULL" in sql


class TestParsing:
    def test_round_trip_simple(self):
        sql = "SELECT id, name FROM patients WHERE age >= 65 LIMIT 5"
        assert to_sql(parse_sql(sql)) == sql

    def test_parse_aggregates(self):
        query = parse_sql("SELECT COUNT(*) AS n, AVG(hba1c) AS m FROM p GROUP BY hmo")
        # GROUP BY hmo with no plain hmo column is fine
        assert query.aggregates[0].func == "count"
        assert query.aggregates[1].alias == "m"

    def test_parse_distinct(self):
        assert parse_sql("SELECT DISTINCT hmo FROM p").distinct

    def test_parse_in_and_is_null(self):
        query = parse_sql(
            "SELECT a FROM t WHERE a IN ('x', 'y') AND b IS NOT NULL"
        )
        assert isinstance(query.where, And)

    def test_parse_join(self):
        query = parse_sql("SELECT a FROM t JOIN u ON k = k2 WHERE a = 1")
        assert query.join == Join("u", "k", "k2")

    def test_parse_order_by_directions(self):
        query = parse_sql("SELECT a FROM t ORDER BY a DESC, b ASC, c")
        assert query.order_by == [("a", False), ("b", True), ("c", True)]

    def test_parse_nested_parens(self):
        query = parse_sql("SELECT a FROM t WHERE NOT (a = 1 OR (b < 2 AND c > 3))")
        assert isinstance(query.where, Not)

    def test_parse_diamond_operator(self):
        query = parse_sql("SELECT a FROM t WHERE a <> 5")
        assert query.where == Comparison("a", "!=", 5)

    def test_parse_escaped_string(self):
        query = parse_sql("SELECT a FROM t WHERE a = 'O''Hara'")
        assert query.where.value == "O'Hara"

    def test_parse_boolean_and_null_literals(self):
        query = parse_sql("SELECT a FROM t WHERE flag = TRUE")
        assert query.where.value is True

    def test_keywords_case_insensitive(self):
        query = parse_sql("select a from t where a > 1 order by a")
        assert query.table == "t"

    def test_error_on_trailing_tokens(self):
        with pytest.raises(SqlError, match="trailing"):
            parse_sql("SELECT a FROM t garbage here")

    def test_error_on_missing_from(self):
        with pytest.raises(SqlError):
            parse_sql("SELECT a WHERE x = 1")

    def test_error_on_unterminated_string(self):
        with pytest.raises(SqlError, match="unterminated"):
            parse_sql("SELECT a FROM t WHERE a = 'oops")

    def test_error_on_unknown_aggregate(self):
        with pytest.raises(SqlError, match="unknown aggregate"):
            parse_sql("SELECT median(a) FROM t")

    def test_error_on_bad_character(self):
        with pytest.raises(SqlError):
            parse_sql("SELECT a FROM t WHERE a = #5")


_name = st.from_regex(r"[a-z][a-z0-9_]{0,7}", fullmatch=True).filter(
    lambda s: s not in {"select", "from", "where", "group", "by", "order",
                        "limit", "and", "or", "not", "is", "null", "in",
                        "as", "asc", "desc", "true", "false", "join", "on",
                        "distinct", "count", "sum", "avg", "min", "max",
                        "stddev", "var"}
)
_value = st.one_of(
    st.integers(min_value=-10**6, max_value=10**6),
    st.text(alphabet="abc'xyz ", max_size=8),
)
_comparison = st.builds(
    Comparison, _name, st.sampled_from(["=", "!=", "<", "<=", ">", ">="]), _value
)


@given(
    _name,
    st.lists(_name, min_size=1, max_size=3, unique=True),
    _comparison,
    st.integers(min_value=0, max_value=100) | st.none(),
)
def test_sql_round_trip_property(table, columns, where, limit):
    """to_sql → parse_sql reproduces the logical query."""
    query = SelectQuery(table, columns=columns, where=where, limit=limit)
    parsed = parse_sql(to_sql(query))
    assert parsed.table == query.table
    assert parsed.columns == query.columns
    assert parsed.where == query.where
    assert parsed.limit == query.limit
