"""Differential tests: every metric vs its brute-force oracle.

100+ seeded cases per metric over ≤20-row datasets, spanning raw,
Mondrian, full-domain-generalized, and randomly generalized releases.
All randomness is seeded, so every case (and every metric value) is
byte-stable across runs.
"""

import random

import pytest

from repro.anonymity.hierarchy import interval_hierarchy
from repro.anonymity.mondrian import anonymized_records, mondrian_partition
from repro.inference.bounds import AggregateConstraints
from repro.validation import validate

from tests.validation.oracles import (
    oracle_ambiguity,
    oracle_avg_risk,
    oracle_covers,
    oracle_interval_bounds,
    oracle_measured_k,
    oracle_non_uniform_entropy,
    oracle_population_risk,
    oracle_precision,
    oracle_reconstruction_error,
    oracle_reidentification_risk,
    oracle_uniqueness,
)

QI = ("age", "zip")
SEEDS = range(36)
RELEASES = ("raw", "mondrian", "hierarchy")  # 36 seeds × 3 = 108 cases


def hierarchies():
    return {
        "age": interval_hierarchy("age", [5, 10, 20], low=0),
        "zip": interval_hierarchy("zip", [10, 100], low=10000),
    }


def ground_table(seed):
    rng = random.Random(seed)
    n = rng.randint(4, 20)
    return [
        {"age": rng.randint(20, 69), "zip": 10000 + rng.randint(0, 199)}
        for _ in range(n)
    ]


def make_release(kind, original, seed):
    rng = random.Random(seed + 1000)
    if kind == "raw":
        return [dict(record) for record in original]
    if kind == "mondrian":
        k = min(rng.choice((2, 3)), len(original))
        partitions = mondrian_partition(original, QI, k)
        return anonymized_records(partitions, QI)
    built = hierarchies()
    release = []
    for record in original:
        out = {}
        for attribute in QI:
            level = rng.randint(0, built[attribute].height)
            out[attribute] = built[attribute].generalize(
                record[attribute], level
            )
        release.append(out)
    return release


def cases():
    return [
        pytest.param(seed, kind, id=f"{kind}-{seed}")
        for seed in SEEDS for kind in RELEASES
    ]


@pytest.mark.parametrize("seed,kind", cases())
def test_reidentification_risk_matches_oracle(seed, kind):
    original = ground_table(seed)
    release = make_release(kind, original, seed)
    result = validate(release, original, "reidentification_risk",
                      quasi_identifiers=QI, hierarchies=hierarchies())
    assert result.value == pytest.approx(
        oracle_reidentification_risk(release, QI)
    )
    assert result.detail["avg_risk"] == pytest.approx(
        oracle_avg_risk(release, QI)
    )
    assert result.detail["measured_k"] == oracle_measured_k(release, QI)
    assert result.detail["population_risk"] == pytest.approx(
        oracle_population_risk(release, original, QI, hierarchies())
    )


@pytest.mark.parametrize("seed,kind", cases())
def test_uniqueness_matches_oracle(seed, kind):
    original = ground_table(seed)
    release = make_release(kind, original, seed)
    result = validate(release, original, "uniqueness",
                      quasi_identifiers=QI)
    assert result.value == pytest.approx(oracle_uniqueness(release, QI))
    assert result.detail["original_uniqueness"] == pytest.approx(
        oracle_uniqueness(original, QI)
    )


@pytest.mark.parametrize("seed,kind", cases())
def test_ambiguity_matches_oracle(seed, kind):
    original = ground_table(seed)
    release = make_release(kind, original, seed)
    result = validate(release, original, "ambiguity",
                      quasi_identifiers=QI, hierarchies=hierarchies())
    assert result.value == pytest.approx(
        oracle_ambiguity(release, original, QI, hierarchies())
    )


@pytest.mark.parametrize("seed,kind", cases())
def test_precision_matches_oracle(seed, kind):
    original = ground_table(seed)
    release = make_release(kind, original, seed)
    result = validate(release, original, "precision",
                      quasi_identifiers=QI, hierarchies=hierarchies())
    assert result.value == pytest.approx(
        oracle_precision(release, original, QI, hierarchies())
    )


@pytest.mark.parametrize("seed,kind", cases())
def test_non_uniform_entropy_matches_oracle(seed, kind):
    original = ground_table(seed)
    release = make_release(kind, original, seed)
    result = validate(release, original, "non_uniform_entropy",
                      quasi_identifiers=QI, hierarchies=hierarchies())
    assert result.value == pytest.approx(
        oracle_non_uniform_entropy(release, original, QI, hierarchies())
    )


@pytest.mark.parametrize("seed,kind", cases())
def test_metric_results_are_byte_stable(seed, kind):
    original = ground_table(seed)
    release = make_release(kind, original, seed)
    first = validate(release, original, "reidentification_risk",
                     quasi_identifiers=QI)
    second = validate(release, original, "reidentification_risk",
                      quasi_identifiers=QI)
    assert first.to_json() == second.to_json()


@pytest.mark.parametrize("seed", range(110))
def test_reconstruction_error_matches_oracle(seed):
    rng = random.Random(seed)
    n = rng.randint(1, 20)
    truth = {
        ("cell", i): rng.uniform(10.0, 90.0) for i in range(n)
    }
    release = {}
    for key, value in truth.items():
        roll = rng.random()
        if roll < 0.25:
            continue  # not recovered
        if roll < 0.5:
            release[key] = value  # exact
        else:
            release[key] = value + rng.uniform(-8.0, 8.0)
    result = validate(release, truth, "reconstruction_error",
                      tolerance=0.05)
    expected = oracle_reconstruction_error(release, truth)
    if expected == float("inf"):
        assert result.value == float("inf")
    else:
        assert result.value == pytest.approx(expected)
    exact = sum(
        1 for key in truth
        if key in release and abs(release[key] - truth[key]) <= 0.05
    )
    assert result.detail["recovery_rate"] == pytest.approx(exact / n)


@pytest.mark.parametrize("seed", range(105))
def test_interval_tightness_matches_grid_oracle(seed):
    rng = random.Random(seed)
    n_rows = rng.randint(1, 3)
    n_cols = rng.randint(2, 4)
    truth = [
        [rng.uniform(20.0, 80.0) for _ in range(n_cols)]
        for _ in range(n_rows)
    ]
    hidden = rng.randrange(n_cols)
    known = {
        j: [truth[i][j] for i in range(n_rows)]
        for j in range(n_cols) if j != hidden
    }
    tolerance = rng.choice((0.05, 0.5, 2.0))
    row_means = [sum(row) / n_cols for row in truth]
    constraints = AggregateConstraints(
        n_rows=n_rows, n_cols=n_cols, known_columns=known,
        row_means=row_means, value_range=(0.0, 100.0),
        tolerance=tolerance,
    )
    result = validate(constraints, metric="interval_tightness", starts=3)
    expected = oracle_interval_bounds(constraints)
    assert not result.detail["infeasible"]
    assert result.detail["hidden_cells"] == n_rows
    # With one hidden column each cell's exact interval is
    # [n·(mean−tol) − known_sum, n·(mean+tol) − known_sum] ∩ range; the
    # grid oracle finds it to 0.05 resolution, SLSQP to solver precision.
    for cell, (low, high) in expected.items():
        got_low, got_high = result.detail["intervals"][
            f"{cell[0]},{cell[1]}"
        ]
        assert got_low == pytest.approx(low, abs=0.1)
        assert got_high == pytest.approx(high, abs=0.1)
    widths = [high - low for low, high in expected.values()]
    span = 100.0
    assert result.value == pytest.approx(
        max(1.0 - w / span for w in widths), abs=0.002
    )


@pytest.mark.parametrize("seed", range(40))
def test_covers_matches_oracle_on_random_labels(seed):
    rng = random.Random(seed)
    from repro.validation.metrics import covers

    hierarchy = interval_hierarchy("age", [5, 10, 20], low=0)
    values = [rng.randint(0, 99) for _ in range(6)]
    labels = ["*", str(rng.randint(0, 99)), rng.randint(0, 99)]
    for value in values[:3]:
        level = rng.randint(0, hierarchy.height)
        labels.append(hierarchy.generalize(value, level))
        low = (value // 10) * 10
        labels.append(f"[{low}-{low + 10}]")
    for label in labels:
        for value in values:
            assert covers(label, value, hierarchy) == oracle_covers(
                label, value, hierarchy
            ), (label, value)
