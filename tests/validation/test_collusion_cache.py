"""Regression: tier-3 replay to colluders stays charged and watched.

A cached (tier-3 warehouse) answer replayed to the same requester must
still be journaled and charged against the shared role budget, and a
colluding requester posing the identical text must NOT be served the
first requester's cached noise — the plan fingerprint includes the
requester, so each principal pays for (and perturbs) its own answer.
"""

import pytest

from repro.validation.adversaries import (
    ZooDefenses,
    build_zoo_system,
    pooled_role_budget,
)

QUERY = (
    "SELECT AVG(//patient/hba1c) AS hba1c "
    "WHERE //patient/age > 40 PURPOSE research MAXLOSS 0.9"
)


@pytest.fixture()
def system():
    return build_zoo_system(ZooDefenses(laplace=True))


def _values(result):
    return {row["_source"]: float(row["hba1c"]) for row in result.rows}


class TestSameRequesterReplay:
    def test_replay_is_served_from_answer_cache(self, system):
        first = system.query(QUERY, requester="ring-1", role="analyst")
        replay = system.query(QUERY, requester="ring-1", role="analyst")
        ledger = system.explain_last("ring-1")
        assert ledger.cache["answer"] == "hit"
        assert ledger.warehouse["from_cache"] is True
        assert ledger.warehouse["origin"] == "answer-cache"
        assert _values(replay) == _values(first)

    def test_replay_is_still_journaled_and_charged(self, system):
        journal = system.audit_journal()
        system.query(QUERY, requester="ring-1", role="analyst")
        after_first = len(journal)
        charged_once = journal.requesters()["ring-1"]
        assert charged_once > 0.0
        system.query(QUERY, requester="ring-1", role="analyst")
        assert len(journal) > after_first
        assert journal.requesters()["ring-1"] > charged_once

    def test_replay_is_visible_to_snooperwatch(self, system):
        watch = system.observatory.watch
        system.query(QUERY, requester="ring-1", role="analyst")
        poses_once = watch.state_dict()["poses"]["ring-1"]
        system.query(QUERY, requester="ring-1", role="analyst")
        assert "ring-1" in watch.requesters()
        assert watch.state_dict()["poses"]["ring-1"] == poses_once + 1


class TestColludingReplay:
    def test_colluder_never_reads_anothers_cache_entry(self, system):
        first = system.query(QUERY, requester="ring-1", role="analyst")
        second = system.query(QUERY, requester="ring-2", role="analyst")
        ledger = system.explain_last("ring-2")
        assert ledger.cache["answer"] == "miss"
        assert ledger.warehouse["from_cache"] is False
        # fresh Laplace draws, not the ring-1 replay
        assert _values(second) != _values(first)

    def test_each_colluder_gets_its_own_journal_charge(self, system):
        journal = system.audit_journal()
        system.query(QUERY, requester="ring-1", role="analyst")
        system.query(QUERY, requester="ring-2", role="analyst")
        cumulative = journal.requesters()
        assert cumulative["ring-1"] > 0.0
        assert cumulative["ring-2"] > 0.0

    def test_pool_exceeds_any_individual_budget(self, system):
        system.query(QUERY, requester="ring-1", role="analyst")
        system.query(QUERY, requester="ring-2", role="analyst")
        pooled = pooled_role_budget(system, ("ring-1", "ring-2"))
        cumulative = system.audit_journal().requesters()
        assert pooled > cumulative["ring-1"]
        assert pooled > cumulative["ring-2"]
