"""E2E adversary × defense matrix: risk strictly drops when a defense is on.

Runs every adversary in the zoo against the undefended system and against
each single defense (k-anonymity, Laplace perturbation, inference guard,
audit refusal), all through the real ``PrivateIye.pose()`` path.  A failed
assertion prints the full validation report for both runs so the regression
is diagnosable from the test log alone.
"""

import pytest

from repro.validation import ZooDefenses, run_matrix

ADVERSARIES = ("composition", "constraint_aware", "colluders")


@pytest.fixture(scope="module")
def matrix():
    return run_matrix(seed=0, starts=1)


def _explain(label, baseline, defended):
    return (
        f"defense '{label}' did not strictly reduce residual risk\n"
        f"--- baseline report ---\n{baseline.report()}\n"
        f"--- defended report ---\n{defended.report()}"
    )


@pytest.mark.parametrize("adversary", ADVERSARIES)
@pytest.mark.parametrize("defense", ZooDefenses.NAMES)
def test_each_defense_strictly_reduces_risk(matrix, adversary, defense):
    baseline = matrix[adversary]["none"]
    defended = matrix[adversary][defense]
    assert defended.residual_risk < baseline.residual_risk, _explain(
        defense, baseline, defended
    )


@pytest.mark.parametrize("adversary", ADVERSARIES)
def test_baseline_is_near_total_disclosure(matrix, adversary):
    baseline = matrix[adversary]["none"]
    assert baseline.residual_risk > 0.95, baseline.report()


@pytest.mark.parametrize("adversary", ADVERSARIES)
def test_kanon_is_the_strongest_single_defense_here(matrix, adversary):
    # The record probe dominates the residual composite, so capping
    # re-identification at 1/k wins in this scenario; pin that so future
    # scoring changes that invert the ordering are surfaced.
    risks = {
        name: matrix[adversary][name].residual_risk
        for name in ZooDefenses.NAMES
    }
    assert risks["kanon"] == min(risks.values()), risks


def test_matrix_covers_every_cell(matrix):
    assert set(matrix) == set(ADVERSARIES)
    for adversary in ADVERSARIES:
        assert set(matrix[adversary]) == {"none", *ZooDefenses.NAMES}
        for outcome in matrix[adversary].values():
            assert 0.0 <= outcome.residual_risk <= 1.0
