"""Unit tests for the validation metrics, result type, and validate API."""

import json

import pytest

from repro.anonymity.hierarchy import interval_hierarchy, taxonomy_hierarchy
from repro.anonymity.kanonymity import FullDomainGeneralizer
from repro.anonymity.mondrian import anonymized_records, mondrian_partition
from repro.errors import ReproError
from repro.inference.bounds import AggregateConstraints
from repro.validation import (
    FAMILIES,
    ValidationResult,
    metric_names,
    report,
    summarize,
    validate,
)
from repro.validation.metrics import covers


def records():
    return [
        {"age": 34, "zip": 10001, "dept": "sales"},
        {"age": 35, "zip": 10001, "dept": "sales"},
        {"age": 36, "zip": 10002, "dept": "exec"},
        {"age": 44, "zip": 10002, "dept": "sales"},
        {"age": 45, "zip": 10003, "dept": "exec"},
        {"age": 46, "zip": 10003, "dept": "sales"},
    ]


class TestCovers:
    def test_exact_and_string_coercion(self):
        assert covers(34, 34)
        assert covers("34", 34)
        assert not covers(34, 35)

    def test_suppression_covers_everything(self):
        assert covers("*", 34)
        assert covers("*", "sales")

    def test_half_open_interval(self):
        assert covers("[30-40)", 34)
        assert covers("[30-40)", 30)
        assert not covers("[30-40)", 40)

    def test_closed_interval_from_mondrian(self):
        assert covers("[30-40]", 40)
        assert not covers("[30-40]", 41)

    def test_negative_lower_bound(self):
        assert covers("[-10-0)", -5)
        assert not covers("[-10-0)", 3)

    def test_non_numeric_value_in_interval(self):
        assert not covers("[30-40)", "sales")

    def test_hierarchy_levels(self):
        hierarchy = taxonomy_hierarchy(
            "dept", {"sales": "commercial", "exec": "management"}
        )
        assert covers("commercial", "sales", hierarchy)
        assert not covers("commercial", "exec", hierarchy)

    def test_none_handling(self):
        assert covers(None, None)
        assert not covers(None, 3)
        assert covers("*", None)
        assert not covers(3, None)


class TestValidationResult:
    def test_family_is_validated(self):
        with pytest.raises(ReproError):
            ValidationResult("m", "nonsense", 0.5)

    def test_families_constant(self):
        assert FAMILIES == ("anonymity", "statdb", "inference")

    def test_to_json_byte_stable(self):
        a = ValidationResult("m", "anonymity", 0.5, detail={"b": 1, "a": 2})
        b = ValidationResult("m", "anonymity", 0.5, detail={"a": 2, "b": 1})
        assert a.to_json() == b.to_json()


class TestValidateApi:
    def test_metric_names(self):
        assert "reidentification_risk" in metric_names()
        assert len(metric_names()) == 7

    def test_name_normalization(self):
        release = records()
        a = validate(release, metric="ReidentificationRisk",
                     quasi_identifiers=("age",))
        b = validate(release, metric="reidentification-risk",
                     quasi_identifiers=("age",))
        assert a.value == b.value

    def test_unknown_metric_raises(self):
        with pytest.raises(ReproError, match="unknown validation metric"):
            validate(records(), metric="telepathy")

    def test_threshold_below_direction(self):
        result = validate(records(), metric="reidentification_risk",
                          quasi_identifiers=("age",), threshold=0.5)
        assert result.passed is False  # all-unique release, risk 1.0
        result = validate(records(), metric="reidentification_risk",
                          quasi_identifiers=("dept",), threshold=0.5)
        assert result.passed is True

    def test_threshold_above_direction(self):
        truth = {"a": 1.0, "b": 2.0}
        result = validate(dict(truth), truth,
                          metric="reconstruction_error", threshold=0.5)
        assert result.passed is False  # perfect reconstruction: error 0

    def test_summarize_groups_by_family(self):
        results = [
            validate(records(), metric="uniqueness",
                     quasi_identifiers=("age",)),
            validate({"a": 1.0}, {"a": 1.5},
                     metric="reconstruction_error"),
        ]
        summary = summarize(results)
        assert set(summary) == {"anonymity", "statdb"}
        assert summary["anonymity"]["uniqueness"] == 1.0

    def test_report_byte_stable_and_grouped(self, tmp_path):
        def build():
            return [
                validate(records(), metric="uniqueness",
                         quasi_identifiers=("age",), threshold=0.2),
                validate({"a": 1.0}, {"a": 1.0},
                         metric="reconstruction_error"),
            ]

        first = report(build())
        second = report(build())
        assert first == second
        document = json.loads(first)
        assert set(document["families"]) == {"anonymity", "statdb"}
        assert document["metrics_evaluated"] == 2
        path = tmp_path / "report.json"
        report(build(), path=str(path))
        assert json.loads(path.read_text()) == document

    def test_report_rejects_non_results(self):
        with pytest.raises(ReproError):
            report([{"metric": "fake"}])


class TestReidentificationRisk:
    def test_raw_release_max_risk(self):
        result = validate(records(), metric="reidentification_risk",
                          quasi_identifiers=("age", "zip"))
        assert result.value == 1.0
        assert result.detail["measured_k"] == 1
        assert result.family == "anonymity"

    def test_paired_release(self):
        result = validate(records(), metric="reidentification_risk",
                          quasi_identifiers=("zip",))
        assert result.value == 0.5
        assert result.detail["classes"] == 3

    def test_mondrian_release_meets_k(self):
        release = anonymized_records(
            mondrian_partition(records(), ("age", "zip"), 3),
            ("age", "zip"),
        )
        result = validate(release, metric="reidentification_risk",
                          quasi_identifiers=("age", "zip"))
        assert result.value <= 1.0 / 3.0
        assert result.detail["measured_k"] >= 3

    def test_population_matching(self):
        release = anonymized_records(
            mondrian_partition(records(), ("age",), 3), ("age",),
        )
        result = validate(release, records(),
                          metric="reidentification_risk",
                          quasi_identifiers=("age",))
        assert result.detail["population"] == 6
        assert result.detail["min_population_matches"] >= 3
        assert result.detail["population_risk"] <= 1.0 / 3.0

    def test_needs_quasi_identifiers(self):
        with pytest.raises(ReproError):
            validate(records(), metric="reidentification_risk")

    def test_empty_release(self):
        result = validate([], metric="reidentification_risk",
                          quasi_identifiers=("age",))
        assert result.value == 0.0

    def test_accepts_anonymization_result(self):
        generalizer = FullDomainGeneralizer(
            [interval_hierarchy("age", [10, 20], low=0)]
        )
        release = generalizer.anonymize(records(), k=2)
        result = validate(release, metric="reidentification_risk",
                          quasi_identifiers=("age",))
        assert result.detail["measured_k"] >= 2


class TestUniqueness:
    def test_all_unique(self):
        result = validate(records(), metric="uniqueness",
                          quasi_identifiers=("age",))
        assert result.value == 1.0

    def test_no_singletons(self):
        result = validate(records(), metric="uniqueness",
                          quasi_identifiers=("zip",))
        assert result.value == 0.0

    def test_original_uniqueness_in_detail(self):
        release = anonymized_records(
            mondrian_partition(records(), ("age", "zip"), 2),
            ("age", "zip"),
        )
        result = validate(release, records(), metric="uniqueness",
                          quasi_identifiers=("age", "zip"))
        assert result.value == 0.0
        assert result.detail["original_uniqueness"] == 1.0


class TestAmbiguity:
    def test_raw_release_has_none(self):
        result = validate(records(), records(), metric="ambiguity",
                          quasi_identifiers=("age", "zip"))
        assert result.value == 0.0

    def test_full_suppression(self):
        release = [{"age": "*", "zip": "*"} for _ in records()]
        result = validate(release, records(), metric="ambiguity",
                          quasi_identifiers=("age", "zip"))
        # 6 ages × 3 zips = 18 combinations per record
        assert result.value == pytest.approx(1.0 - 1.0 / 18.0)
        assert result.detail["max_combinations"] == 18

    def test_interval_release_counts_covered(self):
        release = [{"age": "[30-40)"}, {"age": "[40-50)"}]
        result = validate(release, records(), metric="ambiguity",
                          quasi_identifiers=("age",))
        # each decade covers 3 of the ground ages
        assert result.value == pytest.approx(1.0 - 1.0 / 3.0)

    def test_needs_original(self):
        with pytest.raises(ReproError):
            validate(records(), metric="ambiguity",
                     quasi_identifiers=("age",))


class TestPrecision:
    def hierarchies(self):
        return {"age": interval_hierarchy("age", [10, 20], low=0)}

    def test_raw_release_full_precision(self):
        result = validate(records(), records(), metric="precision",
                          quasi_identifiers=("age",),
                          hierarchies=self.hierarchies())
        assert result.value == 1.0

    def test_suppressed_release_zero_precision(self):
        release = [{"age": "*"} for _ in records()]
        result = validate(release, records(), metric="precision",
                          quasi_identifiers=("age",),
                          hierarchies=self.hierarchies())
        assert result.value == 0.0

    def test_level_one_release(self):
        hierarchies = self.hierarchies()
        release = [
            {"age": hierarchies["age"].generalize(r["age"], 1)}
            for r in records()
        ]
        result = validate(release, records(), metric="precision",
                          quasi_identifiers=("age",),
                          hierarchies=hierarchies)
        # height 3 (identity, 10, 20, '*'), all cells at level 1
        assert result.value == pytest.approx(1.0 - 1.0 / 3.0)

    def test_needs_hierarchies(self):
        with pytest.raises(ReproError):
            validate(records(), records(), metric="precision",
                     quasi_identifiers=("age",))


class TestNonUniformEntropy:
    def test_raw_release_no_loss(self):
        result = validate(records(), records(),
                          metric="non_uniform_entropy",
                          quasi_identifiers=("age", "zip"))
        assert result.value == 0.0

    def test_full_suppression_total_loss(self):
        release = [{"age": "*", "zip": "*"} for _ in records()]
        result = validate(release, records(),
                          metric="non_uniform_entropy",
                          quasi_identifiers=("age", "zip"))
        assert result.value == pytest.approx(1.0)

    def test_partial_release_in_between(self):
        release = [{"age": "[30-40)"} for _ in records()[:3]]
        result = validate(release, records(),
                          metric="non_uniform_entropy",
                          quasi_identifiers=("age",))
        assert 0.0 < result.value < 1.0


class TestReconstructionError:
    def test_perfect_recovery(self):
        truth = {("a", 1): 10.0, ("b", 2): 20.0}
        result = validate(dict(truth), truth,
                          metric="reconstruction_error", tolerance=0.05)
        assert result.value == 0.0
        assert result.detail["recovery_rate"] == 1.0
        assert result.family == "statdb"

    def test_missing_keys_lower_recovery(self):
        truth = {"a": 10.0, "b": 20.0, "c": 30.0}
        release = {"a": 10.0}
        result = validate(release, truth,
                          metric="reconstruction_error", tolerance=0.05)
        assert result.detail["missing"] == 2
        assert result.detail["recovery_rate"] == pytest.approx(1 / 3)

    def test_nothing_recovered_is_infinite(self):
        result = validate({}, {"a": 1.0}, metric="reconstruction_error")
        assert result.value == float("inf")

    def test_sequence_form(self):
        result = validate([1.0, 2.0, 3.0], [1.0, 2.0, 4.0],
                          metric="reconstruction_error")
        assert result.value > 0.0
        assert result.detail["max_abs_error"] == 1.0

    def test_sequence_length_mismatch(self):
        with pytest.raises(ReproError):
            validate([1.0], [1.0, 2.0], metric="reconstruction_error")

    def test_bias_sign(self):
        truth = {"a": 10.0, "b": 20.0}
        release = {"a": 12.0, "b": 22.0}
        result = validate(release, truth, metric="reconstruction_error")
        assert result.detail["bias"] == pytest.approx(2.0)


class TestIntervalTightness:
    def constraints(self, tolerance=0.05):
        # one hidden column; cell = 3 * mean − known1 − known2
        return AggregateConstraints(
            n_rows=2, n_cols=3,
            known_columns={0: [70.0, 50.0], 1: [80.0, 60.0]},
            row_means=[75.0, 55.0],
            value_range=(0.0, 100.0),
            tolerance=tolerance,
        )

    def test_tight_problem_scores_high(self):
        result = validate(self.constraints(), metric="interval_tightness",
                          starts=2)
        assert result.value > 0.99
        assert result.family == "inference"
        assert result.detail["hidden_cells"] == 2
        assert result.detail["breached"] == 2

    def test_loose_tolerance_scores_lower(self):
        tight = validate(self.constraints(0.05),
                         metric="interval_tightness", starts=2)
        loose = validate(self.constraints(5.0),
                         metric="interval_tightness", starts=2)
        assert loose.value < tight.value

    def test_coverage_against_truth(self):
        truth = {(0, 2): 75.0, (1, 2): 55.0}
        result = validate(self.constraints(), truth,
                          metric="interval_tightness", starts=2)
        assert result.detail["coverage"] == 1.0

    def test_no_hidden_cells(self):
        constraints = AggregateConstraints(
            n_rows=1, n_cols=2,
            known_columns={0: [70.0], 1: [80.0]},
            row_means=[75.0],
        )
        result = validate(constraints, metric="interval_tightness")
        assert result.value == 0.0
        assert result.detail["hidden_cells"] == 0

    def test_infeasible_scores_zero(self):
        constraints = AggregateConstraints(
            n_rows=1, n_cols=2,
            known_columns={0: [10.0]},
            row_means=[90.0],  # would need the hidden cell at 170
            value_range=(0.0, 100.0),
            tolerance=0.05,
        )
        result = validate(constraints, metric="interval_tightness",
                          starts=2)
        assert result.value == 0.0
        assert result.detail["infeasible"] is True

    def test_rejects_non_constraints(self):
        with pytest.raises(ReproError):
            validate([{"age": 3}], metric="interval_tightness")
