"""The zoo scenario and each adversary, driven through the real pipeline."""

import re

import pytest

from repro.data import FIGURE1
from repro.validation.adversaries import (
    MEASURES,
    SLICE_OFFSET,
    SLICE_SIZE,
    SOURCES,
    ColludingRequesters,
    CompositionAttacker,
    ConstraintAwareAttacker,
    ZooDefenses,
    build_zoo_system,
    compose_cells,
    run_probe_script,
    zoo_knowledge,
    zoo_population,
    zoo_publication,
    zoo_table,
    zoo_truth,
)
from repro.validation.zoo import run_adversary
from repro.errors import ReproError


class TestScenario:
    def test_slice_means_bracket_the_cell(self):
        for j, source in enumerate(SOURCES):
            rows = list(zoo_table(j).rows_as_dicts())
            assert len(rows) == 2 * SLICE_SIZE
            for m, measure in enumerate(MEASURES):
                cell = FIGURE1.consistent_matrix[m][j]
                a = [r[measure] for r in rows if r["age"] > 40]
                b = [r[measure] for r in rows if r["age"] <= 40]
                assert len(a) == len(b) == SLICE_SIZE
                assert sum(a) / len(a) == pytest.approx(cell + SLICE_OFFSET)
                assert sum(b) / len(b) == pytest.approx(cell - SLICE_OFFSET)
                together = a + b
                assert sum(together) / len(together) == pytest.approx(cell)

    def test_zips_globally_unique(self):
        population = zoo_population()
        zips = [row["zip"] for row in population]
        assert len(set(zips)) == len(zips) == 4 * 2 * SLICE_SIZE

    def test_zoo_knowledge_drops_only_output_rounding(self):
        names = {t.name for t in zoo_knowledge().techniques}
        assert "output-rounding" not in names
        assert {"k-anonymize", "suppress-identifiers",
                "audit-trail", "set-size-control"} <= names

    def test_truth_is_figure1(self):
        truth = zoo_truth()
        assert len(truth) == 12
        assert truth[("hba1c", "HMO1")] == FIGURE1.hmo1_values[0]

    def test_hmo4_measures_hidden_from_vocabulary(self):
        system = build_zoo_system()
        for measure in MEASURES:
            attribute = system.mediated_schema().attribute(measure)
            assert set(attribute.local_names) == set(SOURCES[:3])

    def test_publication_guarded_vs_full(self):
        full = zoo_publication(ZooDefenses())
        assert full["sources"] == SOURCES
        assert full["row_stds"] is not None
        assert len(full["source_means"]) == 4
        guarded = zoo_publication(ZooDefenses(guard=True))
        assert "HMO4" not in guarded["sources"]
        assert guarded["row_stds"] is None
        assert guarded["source_means"] == {}
        assert guarded["tolerance"] > full["tolerance"]


class TestProbeScript:
    def test_measure_probe_skips_hmo4_without_refusal(self):
        system = build_zoo_system()
        refusals = []
        probe = run_probe_script(system, "probe-1", refusals)
        assert refusals == []
        for measure in MEASURES:
            for slice_name in ("a", "b"):
                answered = probe["avg"][(measure, slice_name)]
                assert set(answered) == set(SOURCES[:3])
        ledger = system.explain_last("probe-1")
        assert ledger is not None

    def test_counts_span_all_four_sources(self):
        system = build_zoo_system()
        probe = run_probe_script(system, "probe-2", [])
        for slice_name in ("a", "b"):
            assert set(probe["count"][slice_name]) == set(SOURCES)
            for count in probe["count"][slice_name].values():
                assert count == SLICE_SIZE

    def test_record_probe_releases_both_quasi_identifiers(self):
        system = build_zoo_system()
        probe = run_probe_script(system, "probe-3", [])
        assert len(probe["rows"]) == 4 * 2 * SLICE_SIZE
        assert {"age", "zip"} <= set(probe["rows"][0])

    def test_composition_is_exact_with_defenses_off(self):
        system = build_zoo_system()
        probe = run_probe_script(system, "probe-4", [])
        cells, partial = compose_cells(probe)
        assert partial == set()
        truth = zoo_truth()
        assert len(cells) == 9
        for key, value in cells.items():
            assert value == pytest.approx(truth[key], abs=1e-9)


class TestCompositionAttacker:
    def test_baseline_near_total_disclosure(self):
        outcome = run_adversary(CompositionAttacker(), ZooDefenses())
        assert outcome.residual_risk > 0.95
        assert outcome.view.exact_sources == set(SOURCES[:3])
        assert outcome.summary["anonymity"]["reidentification_risk"] == 1.0
        assert outcome.summary["statdb"]["reconstruction_error"] < 1e-9
        assert outcome.summary["inference"]["interval_tightness"] > 0.99

    def test_refusal_defense_forces_biased_estimates(self):
        defenses = ZooDefenses(refusal=True)
        outcome = run_adversary(CompositionAttacker(), defenses)
        assert outcome.view.refusals  # slice-b probes were refused
        assert all(r["kind"] == "AuditRefusal"
                   for r in outcome.view.refusals)
        assert outcome.view.exact_sources == set()
        truth = zoo_truth()
        for key, value in outcome.view.recovered.items():
            assert abs(value - truth[key]) == pytest.approx(SLICE_OFFSET)

    def test_laplace_defense_perturbs_recovery(self):
        outcome = run_adversary(CompositionAttacker(),
                                ZooDefenses(laplace=True))
        assert outcome.view.exact_sources == set()
        assert outcome.summary["statdb"]["reconstruction_error"] > 0.01

    def test_kanon_defense_caps_reidentification(self):
        outcome = run_adversary(CompositionAttacker(),
                                ZooDefenses(kanon=True))
        reid = outcome.summary["anonymity"]["reidentification_risk"]
        assert reid <= 0.2  # k = 5
        detail = next(
            r for r in outcome.results
            if r.metric == "reidentification_risk"
        ).detail
        assert detail["measured_k"] >= 5

    def test_guard_defense_hides_hmo4_column(self):
        outcome = run_adversary(CompositionAttacker(),
                                ZooDefenses(guard=True))
        for measure in MEASURES:
            assert outcome.cell_scores[(measure, "HMO4")] == 0.0
        baseline = run_adversary(CompositionAttacker(), ZooDefenses())
        for measure in MEASURES:
            assert baseline.cell_scores[(measure, "HMO4")] > 0.5


class TestConstraintAwareAttacker:
    def test_owns_home_column_regardless_of_defenses(self):
        outcome = run_adversary(ConstraintAwareAttacker(),
                                ZooDefenses.all_on())
        truth = zoo_truth()
        for measure in MEASURES:
            assert outcome.view.recovered[(measure, "HMO1")] == (
                truth[(measure, "HMO1")]
            )
        assert "HMO1" in outcome.view.exact_sources

    def test_invariant_range_tightens_inference(self):
        narrow = run_adversary(ConstraintAwareAttacker(), ZooDefenses())
        assert narrow.view.value_range == (40.0, 90.0)
        assert narrow.summary["inference"]["interval_tightness"] > 0.99


class TestColludingRequesters:
    def test_needs_at_least_two(self):
        with pytest.raises(ReproError):
            ColludingRequesters(1)

    def test_each_colluder_trips_the_sequence_guard(self):
        outcome = run_adversary(ColludingRequesters(3),
                                ZooDefenses(refusal=True))
        refused_by = {r["requester"] for r in outcome.view.refusals}
        assert refused_by == {"zoo-colluder-1", "zoo-colluder-2",
                              "zoo-colluder-3"}

    def test_pooled_budget_exceeds_any_individual(self):
        outcome = run_adversary(ColludingRequesters(3), ZooDefenses())
        assert outcome.view.pooled_budget > 0.0
        # pooling: 1 − Π(1 − cum_i) ≥ max(cum_i), strictly when ≥ 2
        # requesters were each charged
        assert outcome.view.pooled_budget > 0.1

    def test_averaging_beats_a_single_noisy_requester(self):
        single = run_adversary(CompositionAttacker(),
                               ZooDefenses(laplace=True))
        ring = run_adversary(ColludingRequesters(3),
                             ZooDefenses(laplace=True))
        single_error = single.summary["statdb"]["reconstruction_error"]
        ring_error = ring.summary["statdb"]["reconstruction_error"]
        assert ring_error != single_error  # fresh noise per principal


class TestLedgerAndEvents:
    def test_run_stamps_validation_onto_ledger(self):
        system = build_zoo_system(ZooDefenses())
        outcome = run_adversary(CompositionAttacker(), ZooDefenses(),
                                system=system)
        ledger = system.explain_last()
        assert ledger.validation is not None
        assert set(ledger.validation) >= {"anonymity", "statdb",
                                          "inference", "composite"}
        composite = ledger.validation["composite"]
        assert composite["residual_risk"] == outcome.residual_risk

    def test_run_emits_scored_event(self):
        system = build_zoo_system(ZooDefenses())
        run_adversary(CompositionAttacker(), ZooDefenses(), system=system)
        names = [e.name for e in system.telemetry.events.tail(50)]
        assert "validation.scored" in names
        scored = [
            e for e in system.telemetry.events.tail(50)
            if e.name == "validation.scored"
        ][-1]
        assert scored.attributes["adversary"] == "composition"
        assert scored.attributes["defenses"] == "none"
        # the event carries a generalization bucket, never the raw score
        # (the event log is a side channel — see repro.telemetry.redact)
        assert re.fullmatch(
            r"\[-?[\d.]+,-?[\d.]+\)", scored.attributes["residual_risk"]
        )

    def test_outcome_report_is_deterministic_json(self):
        a = run_adversary(CompositionAttacker(), ZooDefenses())
        b = run_adversary(CompositionAttacker(), ZooDefenses())
        assert a.report() == b.report()
        assert a.to_dict()["label"] == "none"
