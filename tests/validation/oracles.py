"""Brute-force oracles for the validation metrics.

Each oracle recomputes a metric the dumbest defensible way — explicit
nested loops, no shared helpers with :mod:`repro.validation.metrics` —
so the differential suite checks the production implementations against
an independent derivation, not against themselves.  Oracles are only
ever run on tiny (≤ 20-row) seeded datasets, so exponential blowups
(full cartesian products) are fine here.
"""

import itertools
import math
import re

_INTERVAL = re.compile(r"^\[(.+)-([^-]+)([\)\]])$")


def oracle_covers(generalized, value, hierarchy=None):
    """Naive re-derivation of the cover test."""
    if generalized is None:
        return value is None
    if value is None:
        return generalized == "*"
    if generalized == value or str(generalized) == str(value):
        return True
    if generalized == "*":
        return True
    match = _INTERVAL.match(generalized) if isinstance(generalized, str) else None
    if match is not None:
        try:
            low = float(match.group(1))
            high = float(match.group(2))
            number = float(value)
        except (TypeError, ValueError):
            return False
        if match.group(3) == "]":
            return low <= number <= high
        return low <= number < high
    if hierarchy is not None:
        for level in range(hierarchy.height + 1):
            if hierarchy.generalize(value, level) == generalized:
                return True
    return False


def oracle_reidentification_risk(records, quasi_identifiers):
    """max over records of 1 / |records sharing its QI tuple|."""
    records = list(records)
    if not records:
        return 0.0
    worst = 0.0
    for record in records:
        key = tuple(record.get(a) for a in quasi_identifiers)
        size = sum(
            1 for other in records
            if tuple(other.get(a) for a in quasi_identifiers) == key
        )
        worst = max(worst, 1.0 / size)
    return worst


def oracle_avg_risk(records, quasi_identifiers):
    records = list(records)
    total = 0.0
    for record in records:
        key = tuple(record.get(a) for a in quasi_identifiers)
        size = sum(
            1 for other in records
            if tuple(other.get(a) for a in quasi_identifiers) == key
        )
        total += 1.0 / size
    return total / len(records)


def oracle_measured_k(records, quasi_identifiers):
    records = list(records)
    smallest = len(records)
    for record in records:
        key = tuple(record.get(a) for a in quasi_identifiers)
        size = sum(
            1 for other in records
            if tuple(other.get(a) for a in quasi_identifiers) == key
        )
        smallest = min(smallest, size)
    return smallest


def oracle_uniqueness(records, quasi_identifiers):
    records = list(records)
    if not records:
        return 0.0
    singletons = 0
    for record in records:
        key = tuple(record.get(a) for a in quasi_identifiers)
        size = sum(
            1 for other in records
            if tuple(other.get(a) for a in quasi_identifiers) == key
        )
        if size == 1:
            singletons += 1
    return singletons / len(records)


def oracle_population_risk(release, original, quasi_identifiers,
                           hierarchies=None):
    """max over released QI tuples of 1 / |ground records they cover|."""
    keys = {
        tuple(record.get(a) for a in quasi_identifiers)
        for record in release
    }
    worst = 0.0
    for key in keys:
        matched = 0
        for ground in original:
            if all(
                oracle_covers(generalized, ground.get(attribute),
                              (hierarchies or {}).get(attribute))
                for attribute, generalized in zip(quasi_identifiers, key)
            ):
                matched += 1
        if matched > 0:
            worst = max(worst, 1.0 / matched)
    return worst


def oracle_ambiguity(release, original, quasi_identifiers,
                     hierarchies=None):
    """Mean of 1 − 1/combinations via the *full* cartesian product."""
    release = list(release)
    original = list(original)
    if not release:
        return 0.0
    domains = []
    for attribute in quasi_identifiers:
        seen = []
        for ground in original:
            value = ground.get(attribute)
            if value not in seen:
                seen.append(value)
        domains.append(seen)
    total = 0.0
    for record in release:
        combinations = 0
        for combo in itertools.product(*domains):
            if all(
                oracle_covers(record.get(attribute), value,
                              (hierarchies or {}).get(attribute))
                for attribute, value in zip(quasi_identifiers, combo)
            ):
                combinations += 1
        combinations = max(1, combinations)
        total += 1.0 - 1.0 / combinations
    return total / len(release)


def oracle_precision(release, original, quasi_identifiers, hierarchies):
    """1 − mean(level/height), levels found by exhaustive scan."""
    release = list(release)
    original = list(original)
    if not release:
        return 1.0
    ratios = []
    for record in release:
        for attribute in quasi_identifiers:
            hierarchy = hierarchies[attribute]
            generalized = record.get(attribute)
            level = hierarchy.height
            for candidate in range(hierarchy.height + 1):
                produced = False
                for ground in original:
                    value = ground.get(attribute)
                    if hierarchy.generalize(value, candidate) == generalized:
                        produced = True
                        break
                if produced:
                    level = candidate
                    break
            ratios.append(
                level / hierarchy.height if hierarchy.height else 0.0
            )
    return 1.0 - sum(ratios) / len(ratios)


def oracle_non_uniform_entropy(release, original, quasi_identifiers,
                               hierarchies=None):
    """total bits / max bits, each cell's entropy from explicit loops."""
    release = list(release)
    original = list(original)
    if not release:
        return 0.0

    def entropy(counts):
        total = sum(counts)
        if total <= 0:
            return 0.0
        bits = 0.0
        for count in counts:
            if count > 0:
                bits -= (count / total) * math.log2(count / total)
        return bits

    total_bits, max_bits = 0.0, 0.0
    for record in release:
        for attribute in quasi_identifiers:
            frequency = {}
            for ground in original:
                value = ground.get(attribute)
                frequency[value] = frequency.get(value, 0) + 1
            covered_counts = [
                count for value, count in frequency.items()
                if oracle_covers(record.get(attribute), value,
                                 (hierarchies or {}).get(attribute))
            ]
            column_bits = entropy(list(frequency.values()))
            cell = entropy(covered_counts) if covered_counts else column_bits
            total_bits += cell
            max_bits += column_bits
    return total_bits / max_bits if max_bits > 0 else 0.0


def oracle_reconstruction_error(release, original):
    """Relative RMSE over the recovered keys, re-derived from scratch."""
    pairs = [
        (float(original[key]), float(release[key]))
        for key in original if key in release
    ]
    if not pairs:
        return float("inf")
    mse = sum((t - r) ** 2 for t, r in pairs) / len(pairs)
    rmse = math.sqrt(mse)
    truth = [t for t, _ in pairs]
    mean = sum(truth) / len(truth)
    sigma = math.sqrt(sum((t - mean) ** 2 for t in truth) / len(truth))
    if sigma == 0:
        return 0.0 if rmse == 0 else float("inf")
    return rmse / sigma


def oracle_interval_bounds(constraints, steps=2000):
    """Grid-search feasibility intervals for ONE hidden column.

    Only supports problems with exactly one hidden column — each hidden
    cell's bound is then independent given the row-mean constraints, so
    a 1-D sweep per cell is exact (to grid resolution).  Column-mean and
    std constraints couple cells of one column, so callers should build
    cases without them (or with ``n_rows == 1`` where they stay 1-D).
    """
    hidden_columns = {
        j for j in range(constraints.n_cols)
        if j not in constraints.known_columns
    }
    assert len(hidden_columns) == 1, "oracle handles one hidden column"
    j_hidden = hidden_columns.pop()
    low, high = constraints.value_range
    intervals = {}
    for i in range(constraints.n_rows):
        known_sum = sum(
            constraints.known_columns[j][i]
            for j in range(constraints.n_cols)
            if j in constraints.known_columns
        )
        feasible = []
        for step in range(steps + 1):
            x = low + (high - low) * step / steps
            mean = (known_sum + x) / constraints.n_cols
            if abs(mean - constraints.row_means[i]) <= constraints.tolerance + 1e-12:
                column_mean = constraints.column_means.get(j_hidden)
                if column_mean is not None and constraints.n_rows == 1:
                    if abs(x - column_mean) > constraints.column_tol(j_hidden) + 1e-12:
                        continue
                feasible.append(x)
        if feasible:
            intervals[(i, j_hidden)] = (min(feasible), max(feasible))
    return intervals
