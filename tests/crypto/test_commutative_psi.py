"""Unit tests for the commutative cipher and PSI protocol."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import CommutativeKey, PsiParty, TEST_GROUP, private_set_intersection
from repro.errors import CryptoError


def key(seed):
    return CommutativeKey(TEST_GROUP, rng=random.Random(seed))


class TestCommutativeCipher:
    def test_encrypt_decrypt_round_trip(self):
        k = key(1)
        element = TEST_GROUP.hash_into("secret")
        assert k.decrypt(k.encrypt(element)) == element

    def test_commutativity(self):
        a, b = key(1), key(2)
        element = TEST_GROUP.hash_into("x")
        assert a.encrypt(b.encrypt(element)) == b.encrypt(a.encrypt(element))

    def test_layered_decryption_in_any_order(self):
        a, b = key(1), key(2)
        element = TEST_GROUP.hash_into("x")
        double = a.encrypt(b.encrypt(element))
        assert b.decrypt(a.decrypt(double)) == element
        assert a.decrypt(b.decrypt(double)) == element

    def test_different_keys_different_ciphertexts(self):
        element = TEST_GROUP.hash_into("x")
        assert key(1).encrypt(element) != key(2).encrypt(element)

    def test_encrypt_item_hashes_first(self):
        k = key(3)
        assert k.encrypt_item("alice") == k.encrypt(TEST_GROUP.hash_into("alice"))

    def test_encrypt_many(self):
        k = key(4)
        elements = [TEST_GROUP.hash_into(i) for i in range(5)]
        assert k.encrypt_many(elements) == [k.encrypt(e) for e in elements]

    def test_rejects_non_element(self):
        with pytest.raises(CryptoError):
            key(1).encrypt(0)
        with pytest.raises(CryptoError):
            key(1).encrypt("nope")

    def test_rejects_bad_exponent(self):
        with pytest.raises(CryptoError):
            CommutativeKey(TEST_GROUP, exponent=0)

    def test_explicit_exponent_honored(self):
        k = CommutativeKey(TEST_GROUP, exponent=12345)
        assert k.exponent == 12345


class TestPsi:
    def test_basic_intersection(self):
        a = ["alice", "bob", "cara", "dave"]
        b = ["bob", "dave", "erin"]
        result, _ = private_set_intersection(a, b, TEST_GROUP, random.Random(7))
        assert sorted(result) == ["bob", "dave"]

    def test_empty_intersection(self):
        result, _ = private_set_intersection(
            ["x", "y"], ["p", "q"], TEST_GROUP, random.Random(7)
        )
        assert result == []

    def test_full_overlap(self):
        items = [f"i{i}" for i in range(10)]
        result, _ = private_set_intersection(
            items, list(reversed(items)), TEST_GROUP, random.Random(1)
        )
        assert sorted(result) == sorted(items)

    def test_no_plaintext_on_wire(self):
        a = ["ssn-123", "ssn-456"]
        b = ["ssn-456"]
        _, transcript = private_set_intersection(a, b, TEST_GROUP, random.Random(2))
        wire_values = set()
        for message in transcript.values():
            wire_values.update(message)
        hashed = {TEST_GROUP.hash_into(x) for x in a + b}
        assert not wire_values & hashed  # singly/doubly encrypted only

    def test_duplicate_inputs_rejected(self):
        with pytest.raises(CryptoError):
            PsiParty(["a", "a"], TEST_GROUP)

    def test_protocol_step_order_enforced(self):
        party = PsiParty(["a"], TEST_GROUP, random.Random(0))
        with pytest.raises(CryptoError):
            party.receive_own_doubled([1])
        party.send_encrypted_set()
        with pytest.raises(CryptoError):
            party.intersect([])

    def test_doubled_size_mismatch_rejected(self):
        party = PsiParty(["a", "b"], TEST_GROUP, random.Random(0))
        party.send_encrypted_set()
        with pytest.raises(CryptoError, match="expected 2"):
            party.receive_own_doubled([1])

    def test_intersection_independent_of_rng(self):
        a = [f"a{i}" for i in range(8)] + ["shared1", "shared2"]
        b = [f"b{i}" for i in range(5)] + ["shared1", "shared2"]
        for seed in (1, 2, 3):
            result, _ = private_set_intersection(a, b, TEST_GROUP, random.Random(seed))
            assert sorted(result) == ["shared1", "shared2"]


@settings(max_examples=15, deadline=None)
@given(
    st.sets(st.integers(min_value=0, max_value=50), max_size=12),
    st.sets(st.integers(min_value=0, max_value=50), max_size=12),
)
def test_psi_matches_plaintext_intersection(set_a, set_b):
    """PSI computes exactly the plaintext intersection."""
    result, _ = private_set_intersection(
        sorted(set_a), sorted(set_b), TEST_GROUP, random.Random(42)
    )
    assert sorted(result) == sorted(set_a & set_b)
