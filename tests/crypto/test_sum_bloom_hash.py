"""Unit tests for secure sum, Bloom filters, and keyed hashing."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import BloomFilter, keyed_hash, keyed_hash_int, secure_sum
from repro.errors import CryptoError


class TestSecureSum:
    def test_correct_total(self):
        assert secure_sum([10, 20, 30], rng=random.Random(1)) == 60

    def test_two_parties_minimum(self):
        with pytest.raises(CryptoError):
            secure_sum([5])

    def test_negative_rejected(self):
        with pytest.raises(CryptoError):
            secure_sum([5, -1])

    def test_non_int_rejected(self):
        with pytest.raises(CryptoError):
            secure_sum([5, 1.5])

    def test_overflow_rejected(self):
        with pytest.raises(CryptoError, match="modulus"):
            secure_sum([2**63, 2**63], modulus=2**64)

    def test_intermediate_values_masked(self):
        values = [100, 200, 300, 400]
        total, transcript = secure_sum(
            values, rng=random.Random(9), return_transcript=True
        )
        assert total == 1000
        # No intermediate equals a prefix sum of the true values.
        prefixes = {100, 300, 600, 1000}
        assert not prefixes & set(transcript.observed)

    def test_mask_uniformity_smoke(self):
        # Party 1's observation varies across runs even for fixed inputs.
        seen = {
            secure_sum([1, 2, 3], rng=random.Random(s), return_transcript=True)[1].observed[1]
            for s in range(20)
        }
        assert len(seen) == 20


class TestBloomFilter:
    def test_membership(self):
        bloom = BloomFilter(size=128, num_hashes=3)
        bloom.add_all(["alice", "bob"])
        assert "alice" in bloom
        assert "bob" in bloom

    def test_absent_items_usually_absent(self):
        bloom = BloomFilter(size=1024, num_hashes=4)
        bloom.add_all(f"item{i}" for i in range(20))
        misses = sum(1 for i in range(100) if f"other{i}" not in bloom)
        assert misses >= 95  # tiny false-positive rate at this load

    def test_dice_similarity_of_identical_sets(self):
        a, b = BloomFilter(), BloomFilter()
        a.add_all(["x", "y", "z"])
        b.add_all(["x", "y", "z"])
        assert a.dice_similarity(b) == 1.0

    def test_dice_similarity_of_disjoint_sets_low(self):
        a, b = BloomFilter(size=2048), BloomFilter(size=2048)
        a.add_all(f"a{i}" for i in range(10))
        b.add_all(f"b{i}" for i in range(10))
        assert a.dice_similarity(b) < 0.2

    def test_jaccard_bounds(self):
        a, b = BloomFilter(), BloomFilter()
        a.add_all(["x", "y"])
        b.add_all(["y", "z"])
        assert 0.0 <= a.jaccard_similarity(b) <= 1.0

    def test_empty_filters_similar(self):
        assert BloomFilter().dice_similarity(BloomFilter()) == 1.0

    def test_incompatible_parameters_rejected(self):
        with pytest.raises(CryptoError):
            BloomFilter(size=128).dice_similarity(BloomFilter(size=256))
        with pytest.raises(CryptoError):
            BloomFilter(secret="a").dice_similarity(BloomFilter(secret="b"))

    def test_different_secret_different_bits(self):
        a = BloomFilter(secret="k1")
        b = BloomFilter(secret="k2")
        a.add("alice")
        b.add("alice")
        assert a.bits != b.bits

    def test_estimated_count_close(self):
        bloom = BloomFilter(size=4096, num_hashes=4)
        bloom.add_all(f"i{i}" for i in range(100))
        assert bloom.estimated_count() == pytest.approx(100, rel=0.15)

    def test_false_positive_rate_monotone(self):
        bloom = BloomFilter(size=256, num_hashes=4)
        assert bloom.false_positive_rate(10) < bloom.false_positive_rate(100)

    def test_bad_parameters_rejected(self):
        with pytest.raises(CryptoError):
            BloomFilter(size=4)
        with pytest.raises(CryptoError):
            BloomFilter(num_hashes=0)


class TestKeyedHash:
    def test_deterministic(self):
        assert keyed_hash("k", "v") == keyed_hash("k", "v")

    def test_key_separation(self):
        assert keyed_hash("k1", "v") != keyed_hash("k2", "v")

    def test_int_form_range(self):
        value = keyed_hash_int("k", "v", bits=16)
        assert 0 <= value < 2**16

    def test_int_accepts_int_items(self):
        assert keyed_hash_int("k", 42) == keyed_hash_int("k", 42)

    def test_bad_bits_rejected(self):
        with pytest.raises(CryptoError):
            keyed_hash_int("k", "v", bits=0)
        with pytest.raises(CryptoError):
            keyed_hash_int("k", "v", bits=300)

    def test_bad_types_rejected(self):
        with pytest.raises(CryptoError):
            keyed_hash("k", ["list"])


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=10**9), min_size=2, max_size=8),
       st.integers(min_value=0, max_value=2**32))
def test_secure_sum_correct_property(values, seed):
    """Secure sum always equals the plain sum."""
    assert secure_sum(values, rng=random.Random(seed)) == sum(values)
