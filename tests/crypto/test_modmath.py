"""Unit tests for modular arithmetic and groups."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import (
    DhGroup,
    MODP_1024,
    TEST_GROUP,
    generate_safe_prime,
    is_probable_prime,
)
from repro.errors import CryptoError


class TestPrimality:
    def test_small_primes(self):
        for p in (2, 3, 5, 7, 11, 13, 97, 7919):
            assert is_probable_prime(p)

    def test_small_composites(self):
        for n in (0, 1, 4, 9, 15, 91, 561, 7917):
            assert not is_probable_prime(n)

    def test_carmichael_numbers_rejected(self):
        for n in (561, 1105, 1729, 2465, 2821, 6601):
            assert not is_probable_prime(n)

    def test_large_known_prime(self):
        assert is_probable_prime(2 ** 127 - 1)  # Mersenne prime

    def test_large_known_composite(self):
        assert not is_probable_prime(2 ** 127 - 3)

    def test_rejects_non_int(self):
        with pytest.raises(CryptoError):
            is_probable_prime(3.5)


class TestSafePrimes:
    def test_generate_safe_prime(self):
        p = generate_safe_prime(32, random.Random(1))
        assert is_probable_prime(p)
        assert is_probable_prime((p - 1) // 2)

    def test_generation_deterministic(self):
        assert generate_safe_prime(32, random.Random(5)) == generate_safe_prime(
            32, random.Random(5)
        )

    def test_too_small_rejected(self):
        with pytest.raises(CryptoError):
            generate_safe_prime(8, random.Random(0))

    def test_builtin_groups_are_safe(self):
        for group in (TEST_GROUP, MODP_1024):
            # checked=False at construction, verify q really divides order
            assert group.p == 2 * group.q + 1
        assert is_probable_prime(TEST_GROUP.p)
        assert is_probable_prime(TEST_GROUP.q)


class TestDhGroup:
    def test_rejects_composite_modulus(self):
        with pytest.raises(CryptoError):
            DhGroup(100)

    def test_rejects_non_safe_prime(self):
        with pytest.raises(CryptoError):
            DhGroup(13)  # 13 = 2*6+1, 6 not prime

    def test_hash_into_yields_subgroup_elements(self):
        for item in ("alice", "bob", 42, b"bytes"):
            element = TEST_GROUP.hash_into(item)
            assert TEST_GROUP.is_element(element)

    def test_hash_into_deterministic(self):
        assert TEST_GROUP.hash_into("x") == TEST_GROUP.hash_into("x")

    def test_hash_into_distinct_items_distinct_elements(self):
        elements = {TEST_GROUP.hash_into(f"item-{i}") for i in range(200)}
        assert len(elements) == 200

    def test_hash_into_rejects_bad_type(self):
        with pytest.raises(CryptoError):
            TEST_GROUP.hash_into(["list"])

    def test_random_exponent_in_range(self):
        rng = random.Random(3)
        for _ in range(20):
            e = TEST_GROUP.random_exponent(rng)
            assert 1 <= e < TEST_GROUP.q

    def test_invert_exponent(self):
        rng = random.Random(4)
        e = TEST_GROUP.random_exponent(rng)
        inverse = TEST_GROUP.invert_exponent(e)
        assert e * inverse % TEST_GROUP.q == 1

    def test_invert_rejects_multiple_of_q(self):
        with pytest.raises(CryptoError):
            TEST_GROUP.invert_exponent(TEST_GROUP.q)

    def test_is_element_rejects_outside(self):
        assert not TEST_GROUP.is_element(0)
        assert not TEST_GROUP.is_element(TEST_GROUP.p)


@settings(max_examples=25, deadline=None)
@given(st.text(max_size=30))
def test_hash_into_subgroup_property(item):
    """Every hashed item lands inside the prime-order subgroup."""
    element = TEST_GROUP.hash_into(item)
    assert TEST_GROUP.is_element(element)
