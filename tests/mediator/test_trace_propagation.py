"""Acceptance: one trace id spans a pose across every thread it touches.

The performance-observatory contract — a single ``pose()`` produces one
``trace_id`` that is visible on:

* the ``mediator.pose`` root span (the posing thread);
* every ``mediator.fanout.attempt`` span, which the concurrent
  dispatcher runs on pool worker threads;
* the persisted pose record, and from there the
  ``persistence.wal.append`` span opened on the WAL writer thread
  (a different thread in a conceptually different process — only the
  serializable :class:`TraceContext` crosses, never a live span).
"""

import threading

from repro import PrivateIye
from repro.persistence import MemoryBackend, ThreadedWriter
from repro.relational import Table

POLICIES = """
VIEW clinic_private { PRIVATE //patient/ssn; }
VIEW lab_private { PRIVATE //patient/ssn; }

POLICY clinic DEFAULT deny {
    ALLOW //patient/city FOR research;
}
POLICY lab DEFAULT deny {
    ALLOW //patient/city FOR research;
}
"""

QUERY = "SELECT //patient/city PURPOSE research MAXLOSS 0.9"


class ThreadRecordingBackend(MemoryBackend):
    """MemoryBackend that records which thread ran each append."""

    def __init__(self):
        super().__init__()
        self.append_threads = []

    def append(self, record):
        self.append_threads.append(threading.current_thread().name)
        return super().append(record)


def build_system(backend):
    system = PrivateIye(telemetry=True, persistence=backend)
    system.load_policies(
        POLICIES,
        view_source={"clinic_private": "clinic", "lab_private": "lab"},
    )
    for name in ("clinic", "lab"):
        rows = [{"ssn": f"{name}-{i}", "city": "pittsburgh"}
                for i in range(6)]
        system.add_relational_source(
            name, Table.from_dicts("patients", rows)
        )
    return system


def spans_named(roots, name):
    found = []
    for root in roots:
        for span in root.walk():
            if span.name == name:
                found.append(span)
    return found


class TestOneTraceIdAcrossThreads:
    def test_pose_fanout_and_wal_share_one_trace_id(self):
        backend = ThreadRecordingBackend()
        writer = ThreadedWriter(backend)
        system = build_system(writer)
        try:
            result = system.engine.pose(QUERY, requester="epi")
            assert result.rows
            finished = system.telemetry.tracer.finished
            poses = spans_named(finished, "mediator.pose")
            assert len(poses) == 1
            trace_id = poses[0].trace_id
            assert trace_id is not None

            # every fan-out attempt (run on dispatcher worker threads)
            # carries the pose's id — one per source here.
            attempts = spans_named(finished, "mediator.fanout.attempt")
            assert len(attempts) == 2
            assert {span.trace_id for span in attempts} == {trace_id}

            # the durable record carries the id across the thread gap...
            _, records = writer.load()
            pose_records = [r for r in records if r.get("kind") == "pose"]
            assert pose_records
            assert {r["trace_id"] for r in pose_records} == {trace_id}

            # ...and the WAL writer thread (not the posing thread!)
            # reconstructed a span under the same id from the record.
            assert set(backend.append_threads) == {"repro-wal-writer"}
            wal_spans = [
                span
                for span in spans_named(finished, "persistence.wal.append")
                if span.attributes.get("kind") == "pose"
            ]
            assert wal_spans
            assert {span.trace_id for span in wal_spans} == {trace_id}
            # non-pose records (epoch bumps) mint their own ids instead
            # of riding an unrelated pose's trace.
            other = [
                span
                for span in spans_named(finished, "persistence.wal.append")
                if span.attributes.get("kind") != "pose"
            ]
            assert all(span.trace_id != trace_id for span in other)
        finally:
            writer.close()

    def test_two_poses_get_two_trace_ids(self):
        backend = ThreadRecordingBackend()
        writer = ThreadedWriter(backend)
        system = build_system(writer)
        try:
            system.engine.pose(QUERY, requester="epi")
            system.engine.pose(QUERY, requester="epi2")
            finished = system.telemetry.tracer.finished
            ids = {span.trace_id
                   for span in spans_named(finished, "mediator.pose")}
            assert len(ids) == 2
            _, records = writer.load()
            record_ids = {r["trace_id"] for r in records
                          if r.get("kind") == "pose"}
            assert record_ids == ids
        finally:
            writer.close()

    def test_refused_pose_record_is_traced_too(self):
        backend = ThreadRecordingBackend()
        writer = ThreadedWriter(backend)
        system = build_system(writer)
        try:
            from repro.errors import ReproError

            try:
                system.engine.pose(
                    "SELECT //patient/ssn PURPOSE research", requester="snoop"
                )
            except ReproError:
                pass
            _, records = writer.load()
            refused = [r for r in records if r.get("outcome") == "refused"
                       or r.get("kind") == "refusal"]
            if refused:  # refusal records are persisted with their trace
                assert all(r.get("trace_id") for r in refused)
        finally:
            writer.close()
