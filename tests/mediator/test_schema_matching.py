"""Unit tests for private schema matching and mediated schema generation."""

import pytest

from repro.errors import IntegrationError
from repro.mediator import (
    InstanceProfile,
    MediatedSchema,
    PrivateSchemaMatcher,
    SourceExport,
    open_name_matcher_score,
)
from repro.mediator.schema_matching import describe_attribute
from repro.policy import DisclosureForm

SECRET = "shared-match-secret"


def descriptor(name, values):
    return describe_attribute(name, values, SECRET)


class TestInstanceProfile:
    def test_numeric_profile(self):
        profile = InstanceProfile.of_values([70.0, 80.0, 90.0])
        assert profile.kind == "numeric"
        assert profile.mean == 80.0

    def test_profile_rounds_moments(self):
        profile = InstanceProfile.of_values([70.123456, 70.123457])
        assert profile.mean == round(profile.mean, 1)

    def test_bool_profile(self):
        profile = InstanceProfile.of_values([True, False, True, True])
        assert profile.kind == "bool"
        assert profile.mean == pytest.approx(0.8, abs=0.06)

    def test_text_profile(self):
        profile = InstanceProfile.of_values(["1970-01-01", "1980-02-02"])
        assert profile.kind == "text"
        assert profile.digit_ratio > 0.5

    def test_empty_profile(self):
        assert InstanceProfile.of_values([]).kind == "text"

    def test_similarity_same_kind(self):
        a = InstanceProfile.of_values([70.0, 80.0, 90.0])
        b = InstanceProfile.of_values([71.0, 81.0, 89.0])
        assert a.similarity(b) > 0.8

    def test_similarity_cross_kind_zero(self):
        a = InstanceProfile.of_values([70.0])
        b = InstanceProfile.of_values(["x"])
        assert a.similarity(b) == 0.0


class TestPrivateMatcher:
    def test_synonym_names_match_through_hashes(self):
        matcher = PrivateSchemaMatcher()
        a = descriptor("dob", ["1970-01-01", "1980-02-02"])
        b = descriptor("dateOfBirth", ["1975-05-05", "1982-03-03"])
        assert matcher.score(a, b) > 0.5

    def test_unrelated_names_do_not_match(self):
        matcher = PrivateSchemaMatcher()
        a = descriptor("dob", ["1970-01-01"])
        b = descriptor("hba1c", [75.0, 80.0])
        assert matcher.score(a, b) < matcher.threshold

    def test_no_raw_names_in_descriptor(self):
        d = descriptor("dateOfBirth", ["1970-01-01"])
        for token in d.hashed_tokens:
            assert "date" not in token.lower() or len(token) == 64
            assert token != "dateOfBirth"

    def test_match_is_one_to_one(self):
        matcher = PrivateSchemaMatcher()
        left = {
            "dob": descriptor("dob", ["1970-01-01"]),
            "zip": descriptor("zip", ["15213"]),
        }
        right = {
            "dateOfBirth": descriptor("dateOfBirth", ["1980-01-01"]),
            "zipCode": descriptor("zipCode", ["15217"]),
        }
        correspondences = matcher.match(left, right)
        assert correspondences["dob"][0] == "dateOfBirth"
        assert correspondences["zip"][0] == "zipCode"

    def test_open_baseline(self):
        assert open_name_matcher_score("dob", "dateOfBirth") == 1.0
        assert open_name_matcher_score("dob", "hba1c") < 0.5

    def test_weight_validation(self):
        with pytest.raises(IntegrationError):
            PrivateSchemaMatcher(name_weight=1.5)


class TestMediatedSchema:
    def exports(self):
        export_a = SourceExport(
            "HMO1",
            {
                "dob": descriptor("dob", ["1970-01-01", "1980-02-02"]),
                "hba1c": descriptor("hba1c", [70.0, 80.0, 90.0]),
            },
            {"dob": DisclosureForm.RANGE, "hba1c": DisclosureForm.AGGREGATE},
        )
        export_b = SourceExport(
            "HMO2",
            {
                "dateOfBirth": descriptor(
                    "dateOfBirth", ["1975-05-05", "1985-06-06"]
                ),
                "cholesterol": descriptor("cholesterol", [150.0, 180.0]),
            },
            {"dateOfBirth": DisclosureForm.EXACT,
             "cholesterol": DisclosureForm.EXACT},
        )
        return [export_a, export_b]

    def test_build_merges_synonyms(self):
        schema = MediatedSchema.build(self.exports())
        dob = schema.attribute("dob")
        assert dob.local_names == {"HMO1": "dob", "HMO2": "dateOfBirth"}

    def test_form_is_most_restrictive(self):
        schema = MediatedSchema.build(self.exports())
        assert schema.attribute("dob").form is DisclosureForm.RANGE

    def test_unmatched_attributes_kept_separate(self):
        schema = MediatedSchema.build(self.exports())
        assert "cholesterol" in schema.vocabulary()
        assert schema.attribute("cholesterol").local_names == {
            "HMO2": "cholesterol"
        }

    def test_sources_for(self):
        schema = MediatedSchema.build(self.exports())
        assert schema.sources_for(["dob"]) == ["HMO1", "HMO2"]
        assert schema.sources_for(["hba1c"]) == ["HMO1"]
        assert schema.sources_for(["dob", "cholesterol"]) == ["HMO2"]
        assert schema.sources_for([]) == ["HMO1", "HMO2"]

    def test_local_name_lookup(self):
        schema = MediatedSchema.build(self.exports())
        assert schema.local_name("dob", "HMO2") == "dateOfBirth"
        with pytest.raises(IntegrationError):
            schema.local_name("hba1c", "HMO2")
        with pytest.raises(IntegrationError):
            schema.attribute("ghost")

    def test_empty_exports_rejected(self):
        with pytest.raises(IntegrationError):
            MediatedSchema.build([])
