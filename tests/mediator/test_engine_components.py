"""Unit tests for fragmenter, integrator, control, history, warehouse."""

import pytest

from repro.errors import AuditRefusal, IntegrationError, ReproError
from repro.mediator import (
    MediatorHistory,
    PrivacyControl,
    SequenceGuard,
    Warehouse,
)
from repro.mediator.fragmenter import QueryFragmenter
from repro.mediator.mediated_schema import MediatedSchema, SourceExport
from repro.mediator.schema_matching import describe_attribute
from repro.policy import DisclosureForm
from repro.query import parse_piql

SECRET = "s"


def schema():
    def d(name, values):
        return describe_attribute(name, values, SECRET)

    export_a = SourceExport(
        "HMO1",
        {"dob": d("dob", ["1970-01-01"]), "hba1c": d("hba1c", [70.0, 80.0]),
         "hmo": d("hmo", ["HMO1"])},
        {"dob": DisclosureForm.RANGE, "hba1c": DisclosureForm.AGGREGATE,
         "hmo": DisclosureForm.EXACT},
    )
    export_b = SourceExport(
        "LAB1",
        {"dateOfBirth": d("dateOfBirth", ["1975-05-05"]),
         "hba1c": d("hba1c", [72.0, 81.0])},
        {"dateOfBirth": DisclosureForm.EXACT,
         "hba1c": DisclosureForm.AGGREGATE},
    )
    return MediatedSchema.build([export_a, export_b])


class TestFragmenter:
    def test_relevant_sources_selected(self):
        fragmenter = QueryFragmenter(schema())
        plan = fragmenter.fragment(parse_piql("SELECT AVG(//patient/hba1c)"))
        assert plan.sources == ["HMO1", "LAB1"]

    def test_paths_translated_to_local_names(self):
        fragmenter = QueryFragmenter(schema())
        plan = fragmenter.fragment(parse_piql("SELECT //patient/dob"))
        assert "//patient/dob" in repr(plan.fragments["HMO1"])
        assert "//patient/dateOfBirth" in repr(plan.fragments["LAB1"])

    def test_sources_missing_attributes_skipped(self):
        fragmenter = QueryFragmenter(schema())
        plan = fragmenter.fragment(parse_piql("SELECT //patient/hmo"))
        assert plan.sources == ["HMO1"]
        assert "LAB1" in plan.skipped_sources

    def test_source_hint_restricts(self):
        fragmenter = QueryFragmenter(schema())
        plan = fragmenter.fragment(
            parse_piql("SELECT //patient/dob FROM LAB1")
        )
        assert plan.sources == ["LAB1"]

    def test_bad_hint_rejected(self):
        fragmenter = QueryFragmenter(schema())
        with pytest.raises(IntegrationError, match="hinted source"):
            fragmenter.fragment(parse_piql("SELECT //patient/hmo FROM LAB1"))

    def test_unresolvable_attribute_rejected(self):
        fragmenter = QueryFragmenter(schema())
        with pytest.raises(IntegrationError, match="suppressed"):
            fragmenter.fragment(parse_piql("SELECT //patient/zzzz"))

    def test_privacy_clauses_propagate_to_fragments(self):
        fragmenter = QueryFragmenter(schema())
        plan = fragmenter.fragment(parse_piql(
            "SELECT AVG(//hba1c) PURPOSE outbreak-surveillance MAXLOSS 0.4"
        ))
        fragment = plan.fragments["HMO1"]
        assert fragment.purpose == "outbreak-surveillance"
        assert fragment.max_loss == pytest.approx(0.4)


class TestPrivacyControl:
    def test_aggregated_loss_compounds(self):
        control = PrivacyControl()
        assert control.aggregated_loss({"a": 0.5, "b": 0.5}) == pytest.approx(0.75)
        assert control.aggregated_loss({}) == 0.0

    def test_loss_validation(self):
        with pytest.raises(ReproError):
            PrivacyControl().aggregated_loss({"a": 1.5})

    def test_verify_passes_within_budgets(self):
        control = PrivacyControl()
        rows = [{"_source": "a"}, {"_source": "b"}]
        kept, aggregated, notices = control.verify(
            rows, {"a": 0.1, "b": 0.1}, {"a": 0.5, "b": 0.5}
        )
        assert len(kept) == 2
        assert notices == []
        assert aggregated == pytest.approx(0.19)

    def test_verify_withholds_violating_source(self):
        control = PrivacyControl()
        rows = [{"_source": "a"}, {"_source": "b"}]
        # combined loss 0.75 exceeds a's budget 0.6; dropping b (higher
        # loss? equal — tie broken by name) brings a within budget.
        kept, aggregated, notices = control.verify(
            rows, {"a": 0.5, "b": 0.5}, {"a": 0.6, "b": 1.0}
        )
        assert len(notices) == 1
        assert len(kept) == 1
        assert aggregated <= 0.6

    def test_merged_rows_need_all_sources(self):
        control = PrivacyControl()
        rows = [{"_source": "a+b"}]
        kept, _aggregated, _notices = control.verify(
            rows, {"a": 0.5, "b": 0.5}, {"a": 0.6, "b": 1.0}
        )
        assert kept == []  # merged row includes a withheld source


class TestHistoryGuard:
    def test_history_records(self):
        history = MediatorHistory()
        history.record("alice", ["hba1c"], "p1", True)
        history.record("bob", ["dob"], "p2", False)
        assert len(history) == 2
        assert len(history.entries("alice")) == 1

    def test_guard_allows_repeats_of_same_query(self):
        history = MediatorHistory()
        guard = SequenceGuard(history, {"hba1c"}, max_distinct_probes=2)
        for _ in range(5):
            guard.check("alice", ["hba1c"], "sig-1", True)
            history.record("alice", ["hba1c"], "sig-1", True)

    def test_guard_blocks_distinct_probes(self):
        history = MediatorHistory()
        guard = SequenceGuard(history, {"hba1c"}, max_distinct_probes=2)
        for i in range(2):
            signature = f"sig-{i}"
            guard.check("alice", ["hba1c"], signature, True)
            history.record("alice", ["hba1c"], signature, True)
        with pytest.raises(AuditRefusal, match="probed"):
            guard.check("alice", ["hba1c"], "sig-9", True)

    def test_guard_ignores_public_attributes(self):
        guard = SequenceGuard(MediatorHistory(), {"hba1c"}, 1)
        for i in range(5):
            guard.check("alice", ["hmo"], f"sig-{i}", True)

    def test_guard_ignores_record_level(self):
        guard = SequenceGuard(MediatorHistory(), {"hba1c"}, 1)
        for i in range(5):
            guard.check("alice", ["hba1c"], f"sig-{i}", False)

    def test_guard_is_per_requester(self):
        history = MediatorHistory()
        guard = SequenceGuard(history, {"x"}, 1)
        guard.check("alice", ["x"], "s1", True)
        history.record("alice", ["x"], "s1", True)
        guard.check("bob", ["x"], "s2", True)  # bob unaffected by alice

    def test_guard_validation(self):
        with pytest.raises(ReproError):
            SequenceGuard(MediatorHistory(), set(), 0)


class TestWarehouse:
    def compute_counter(self):
        calls = {"n": 0}

        def compute():
            calls["n"] += 1
            return f"result-{calls['n']}"

        return compute, calls

    def test_virtual_always_recomputes(self):
        warehouse = Warehouse(mode="virtual")
        compute, calls = self.compute_counter()
        warehouse.answer("q", compute, 3)
        warehouse.answer("q", compute, 3)
        assert calls["n"] == 2
        assert warehouse.total_source_calls == 6

    def test_warehouse_serves_cache_until_refresh(self):
        warehouse = Warehouse(mode="warehouse", refresh_interval=5)
        compute, calls = self.compute_counter()
        warehouse.answer("q", compute, 3)
        warehouse.tick(3)
        result, stats = warehouse.answer("q", compute, 3)
        assert stats.from_cache and stats.staleness == 3
        warehouse.tick(10)
        _result, stats = warehouse.answer("q", compute, 3)
        assert not stats.from_cache
        assert calls["n"] == 2

    def test_hybrid_recomputes_when_stale(self):
        warehouse = Warehouse(mode="hybrid", max_staleness=2)
        compute, calls = self.compute_counter()
        warehouse.answer("q", compute, 3)
        warehouse.tick(1)
        _result, stats = warehouse.answer("q", compute, 3)
        assert stats.from_cache
        warehouse.tick(5)
        _result, stats = warehouse.answer("q", compute, 3)
        assert not stats.from_cache

    def test_hybrid_emergency_forces_fresh(self):
        warehouse = Warehouse(mode="hybrid", max_staleness=100)
        compute, calls = self.compute_counter()
        warehouse.answer("q", compute, 3)
        _result, stats = warehouse.answer("q", compute, 3, emergency=True)
        assert not stats.from_cache
        assert calls["n"] == 2

    def test_mode_validation(self):
        with pytest.raises(ReproError):
            Warehouse(mode="psychic")
