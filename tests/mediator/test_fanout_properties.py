"""Property-based fan-out invariants (seeded, stdlib-only generators).

Concurrency must be *unobservable* in the answers: the dispatcher may
reorder completions, retry transients, and race sources against each
other, but the integrated result — rows, per-source losses, the
aggregated loss checked against MAXLOSS, refusal accounting — has to be
byte-identical to the blocking sequential reference.  Each property runs
over several seeds drawn with ``random.Random``; the same seed always
replays the same deployment, data, and fault schedule.
"""

import json
import random

import pytest

from repro.errors import PrivacyViolation
from repro.mediator.dispatch import DispatchPolicy
from repro.testing import FaultSchedule, build_flaky_system

SEEDS = [11, 23, 47]
QUERY = "SELECT //patient/age PURPOSE research"
AGGREGATE = "SELECT AVG(//patient/visits) AS load PURPOSE research"


def result_bytes(result):
    """Canonical byte serialization of an IntegratedResult."""
    return json.dumps(
        {
            "rows": result.rows,
            "per_source_loss": result.per_source_loss,
            "aggregated_loss": result.aggregated_loss,
            "duplicates_removed": result.duplicates_removed,
            "refused": {
                s: (r.kind, r.reason)
                for s, r in sorted(result.refused_sources.items())
            },
        },
        sort_keys=True, default=str,
    ).encode()


def run_query(seed, dispatch, text=QUERY, schedule_for=None, n_sources=5):
    system, flaky = build_flaky_system(
        n_sources, seed=seed, dispatch=dispatch, schedule_for=schedule_for
    )
    result = system.query(text, requester="prop")
    return result, flaky


class TestZeroFaultEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_concurrent_equals_sequential_byte_for_byte(self, seed):
        sequential, _ = run_query(seed, DispatchPolicy(mode="sequential"))
        concurrent, _ = run_query(seed, DispatchPolicy(mode="concurrent"))
        assert result_bytes(concurrent) == result_bytes(sequential)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_aggregates_equal_across_modes(self, seed):
        sequential, _ = run_query(
            seed, DispatchPolicy(mode="sequential"), text=AGGREGATE
        )
        concurrent, _ = run_query(
            seed, DispatchPolicy(mode="concurrent"), text=AGGREGATE
        )
        assert result_bytes(concurrent) == result_bytes(sequential)

    def test_scrambled_completion_order_is_unobservable(self):
        # Seeded random per-source delays scramble completion order; the
        # integrated result must not care.
        def delays(name, index):
            rng = random.Random(1000 + index)
            return FaultSchedule(
                [("delay", rng.uniform(0.0, 0.03))]
            )

        baseline, _ = run_query(3, DispatchPolicy(mode="sequential"))
        scrambled, _ = run_query(
            3, DispatchPolicy(mode="concurrent"), schedule_for=delays
        )
        assert result_bytes(scrambled) == result_bytes(baseline)


class TestRefusalsAreFinal:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_refused_sources_called_exactly_once(self, seed):
        rng = random.Random(seed)
        refusers = {f"src{i:02d}" for i in rng.sample(range(5), 2)}

        def schedule_for(name, index):
            if name in refusers:
                return FaultSchedule.always(("refuse",), 5)
            return None

        result, flaky = run_query(
            seed,
            DispatchPolicy(mode="concurrent", retries=3),
            schedule_for=schedule_for,
        )
        for name, source in flaky.items():
            if name in refusers:
                # a PrivacyViolation is a final answer: one call, no retry
                assert source.calls == 1, name
                assert result.refused_sources[name].kind == "PrivacyViolation"
            else:
                assert name in result.per_source_loss
        assert {r["_source"] for r in result.rows}.isdisjoint(refusers)


class TestLossEnforcementOrderIndependent:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_aggregated_loss_identical_under_retries_and_delays(self, seed):
        rng = random.Random(seed * 7)

        def noisy(name, index):
            events = []
            if rng.random() < 0.5:
                events.append(("transient",))
            events.append(("delay", rng.uniform(0.0, 0.02)))
            return FaultSchedule(events)

        baseline, _ = run_query(seed, DispatchPolicy(mode="sequential"))
        noisy_result, _ = run_query(
            seed,
            DispatchPolicy(mode="concurrent", retries=2,
                           backoff_base_s=0.005),
            schedule_for=noisy,
        )
        assert noisy_result.aggregated_loss == baseline.aggregated_loss
        assert noisy_result.per_source_loss == baseline.per_source_loss

    @pytest.mark.parametrize("seed", SEEDS)
    def test_maxloss_violation_identical_across_modes(self, seed):
        tight = QUERY + " MAXLOSS 0.001"
        with pytest.raises(PrivacyViolation) as sequential_error:
            run_query(seed, DispatchPolicy(mode="sequential"), text=tight)
        with pytest.raises(PrivacyViolation) as concurrent_error:
            run_query(seed, DispatchPolicy(mode="concurrent"), text=tight)
        assert str(concurrent_error.value) == str(sequential_error.value)
