"""Unit tests for mediation-engine error paths and session plumbing."""

import pytest

from repro import IntegrationError, PrivateIye, ReproError, Session
from repro.access import Permission, RbacPolicy, Role
from repro.errors import AccessDenied, PrivacyViolation
from repro.mediator import MediationEngine
from repro.relational import Table

POLICY = """
POLICY solo DEFAULT deny {
    ALLOW //patient/age FOR research;
}
"""


def solo_system(rbac=None):
    system = PrivateIye()
    system.load_policies(POLICY)
    table = Table.from_dicts(
        "patients", [{"age": 30 + i, "name": f"p{i}"} for i in range(10)]
    )
    system.add_relational_source("solo", table, rbac=rbac)
    return system


class TestEngineErrors:
    def test_no_sources_registered(self):
        engine = MediationEngine()
        with pytest.raises(IntegrationError, match="no sources"):
            engine.build_schema()
        with pytest.raises(IntegrationError):
            engine.pose("SELECT //x")

    def test_bad_query_type(self):
        system = solo_system()
        with pytest.raises(IntegrationError, match="PIQL"):
            system.engine.pose(42)

    def test_unanswerable_attribute(self):
        system = solo_system()
        with pytest.raises(IntegrationError):
            system.query("SELECT //patient/zzzzz PURPOSE research")

    def test_all_sources_refusing_reports_reasons(self):
        system = solo_system()
        with pytest.raises(PrivacyViolation, match="solo:"):
            system.query("SELECT //patient/age PURPOSE marketing")

    def test_reregistering_source_rebuilds_schema(self):
        system = solo_system()
        assert "age" in system.vocabulary()
        extra = Table.from_dicts("patients", [{"age": 9, "zipcode": "x"}])
        system.add_relational_source("other", extra)
        # schema invalidated and lazily rebuilt with the new source
        assert "zipcode" in system.vocabulary()


class TestSessionsAndRbac:
    def test_session_validation(self):
        with pytest.raises(ReproError):
            Session("")
        with pytest.raises(ReproError):
            Session("x", default_max_loss=2.0)

    def test_session_counts_queries(self):
        system = solo_system()
        system.query("SELECT //patient/age PURPOSE research", requester="r")
        system.query("SELECT COUNT(*) PURPOSE research", requester="r")
        assert system.session("r").queries_posed == 2

    def test_rbac_role_gates_source_access(self):
        rbac = RbacPolicy()
        rbac.add_role(Role("reader", [Permission("read", "patients.*")]))
        rbac.assign("alice", "reader")
        system = solo_system(rbac=rbac)
        result = system.query(
            "SELECT //patient/age PURPOSE research", requester="alice"
        )
        assert len(result.rows) == 10
        # mallory holds no role: the source raises AccessDenied, which is
        # not a policy refusal — it propagates (fail fast, per §2's split
        # between access control and privacy control).
        with pytest.raises(AccessDenied):
            system.query(
                "SELECT //patient/age PURPOSE research", requester="mallory"
            )
