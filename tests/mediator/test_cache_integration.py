"""Engine-level cache coherence: epochs, auditing, races, explain.

These tests drive the *wired* pipeline (``build_flaky_system`` →
``PrivateIye`` → ``MediationEngine``) and pin the invalidation edges the
multi-tier cache must honour:

* a policy registration at any source changes the policy epoch, hence
  the fingerprint, hence every materialized answer becomes unreachable;
* a requester's audit-state advance (novel aggregate probe, or explicit
  ``invalidate_requester``) invalidates *only their* answers;
* TTL expiry and LRU eviction on the answer tier are distinct,
  separately-counted ways to die;
* cache hits never bypass auditing — history grows, the guard still
  refuses — and a cached static REFUSE replays the identical message;
* the explain ledger's ``cache`` section and ``mediator.cache.*``
  metrics tell hits from misses per tier.
"""

import threading

import pytest

from repro.errors import AuditRefusal, PrivacyViolation
from repro.mediator.warehouse import Warehouse
from repro.testing import build_flaky_system

ALLOWED = "SELECT //patient/age PURPOSE research MAXLOSS 0.9"
AGG_AGE = "SELECT AVG(//patient/age) AS a PURPOSE research MAXLOSS 0.9"
AGG_VISITS = "SELECT AVG(//patient/visits) AS v PURPOSE research MAXLOSS 0.9"
REFUSED = "SELECT //patient/age PURPOSE marketing"

EXTRA_POLICY = """
POLICY extra DEFAULT deny {
    ALLOW //patient/age FOR research;
    ALLOW //patient/visits FOR research;
}
"""


def build(n_sources=3, telemetry=True, **kwargs):
    return build_flaky_system(n_sources, telemetry=telemetry, **kwargs)


def cache_section(system):
    return system.explain_last().to_dict()["cache"]


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def advance(self, seconds):
        self.now += seconds

    def __call__(self):
        return self.now


class TestEpochInvalidation:
    def test_policy_change_mid_sequence_invalidates_answers(self):
        system, _ = build()
        system.query(ALLOWED, requester="alice")
        system.query(ALLOWED, requester="alice")
        warm = cache_section(system)
        assert warm["answer"] == "hit"

        # A policy registration at ONE source moves the policy epoch;
        # the next pose fingerprints differently and recomputes.
        system.source("src00").policy_store.load_document(EXTRA_POLICY)
        system.query(ALLOWED, requester="alice")
        after = cache_section(system)
        assert after["answer"] == "miss"
        assert after["fingerprint"] != warm["fingerprint"]
        assert after["epochs"]["policy"] > warm["epochs"]["policy"]

        # The new policy state warms up again.
        system.query(ALLOWED, requester="alice")
        assert cache_section(system)["answer"] == "hit"

    def test_novel_probe_invalidates_only_that_requester(self):
        system, _ = build()
        for requester in ("alice", "bob"):
            system.query(AGG_AGE, requester=requester)
            system.query(AGG_AGE, requester=requester)
            assert cache_section(system)["answer"] == "hit"

        # alice's audit state advances on a NOVEL aggregate probe...
        system.query(AGG_VISITS, requester="alice")
        # ...so her materialized AVG(age) is epoch-stale and recomputes,
        system.query(AGG_AGE, requester="alice")
        assert cache_section(system)["answer"] == "miss"
        counters = system.metrics_snapshot()["counters"]
        assert counters.get("warehouse.epoch_invalidations", 0) >= 1
        # ...while bob's untouched answer is still served hot.
        system.query(AGG_AGE, requester="bob")
        assert cache_section(system)["answer"] == "hit"

    def test_repeating_an_identical_probe_keeps_the_cache_warm(self):
        """Repeats are explicitly harmless to the guard → stay cached."""
        system, _ = build()
        system.query(AGG_AGE, requester="alice")
        for _ in range(3):
            system.query(AGG_AGE, requester="alice")
            assert cache_section(system)["answer"] == "hit"

    def test_invalidate_requester_is_isolated(self):
        system, _ = build()
        for requester in ("alice", "bob"):
            system.query(ALLOWED, requester=requester)
        system.engine.cache.invalidate_requester("alice")
        system.query(ALLOWED, requester="alice")
        assert cache_section(system)["answer"] == "miss"
        system.query(ALLOWED, requester="bob")
        assert cache_section(system)["answer"] == "hit"

    def test_source_registration_bumps_schema_epoch(self):
        system, _ = build()
        system.query(ALLOWED, requester="alice")
        before = cache_section(system)["epochs"]["schema"]
        import random

        from repro.relational.catalog import Catalog
        from repro.relational.table import Table
        from repro.source.server import RemoteSource

        rng = random.Random(99)
        rows = [{"age": 30 + rng.randrange(40), "visits": rng.randrange(9),
                 "name": f"late-p{i}"} for i in range(4)]
        catalog = Catalog("late")
        catalog.add(Table.from_dicts("patients", rows))
        system.add_source(RemoteSource(
            "late", catalog, "patients", system.policy_store.replicate(),
            pseudonym_secret=system.engine.shared_secret,
        ))
        system.query(ALLOWED, requester="alice")
        info = cache_section(system)
        assert info["epochs"]["schema"] == before + 1
        assert info["plan"] == "miss"      # plans rekeyed on schema epoch
        assert info["answer"] == "miss"    # old epoch vector is dead


class TestAnswerTierLifetimes:
    def test_ttl_expiry_and_lru_eviction_are_counted_apart(self):
        clock = FakeClock()
        warehouse = Warehouse(mode="warehouse", max_entries=2, ttl=100.0,
                              clock=clock)
        for key in ("k1", "k2", "k3"):  # k3 evicts k1 (capacity)
            warehouse.answer(key, lambda: key.upper(), n_sources=1)
        stats = warehouse.store_stats()
        assert stats["evictions"] == 1
        assert stats["expirations"] == 0

        clock.advance(101.0)  # k2/k3 now older than the 100 s TTL
        result, answer_stats = warehouse.answer(
            "k3", lambda: "fresh", n_sources=1
        )
        assert answer_stats.from_cache is False
        assert result == "fresh"
        stats = warehouse.store_stats()
        assert stats["expirations"] == 1
        assert stats["evictions"] == 1  # unchanged: different cause

    def test_epoch_mismatch_is_an_invalidation_not_an_expiry(self):
        warehouse = Warehouse(mode="warehouse")
        epochs_v1 = (("policy", 1),)
        epochs_v2 = (("policy", 2),)
        warehouse.answer("k", lambda: "old", n_sources=1, epochs=epochs_v1)
        result, stats = warehouse.answer(
            "k", lambda: "new", n_sources=1, epochs=epochs_v2
        )
        assert (result, stats.from_cache) == ("new", False)
        snap = warehouse.store_stats()
        assert snap["invalidations"] == 1
        assert snap["expirations"] == 0
        # and the recomputed entry is servable under the new vector
        result, stats = warehouse.answer(
            "k", lambda: "newer", n_sources=1, epochs=epochs_v2
        )
        assert (result, stats.from_cache) == ("new", "answer-cache")


class TestAuditingNeverBypassed:
    def test_cached_hits_still_append_history(self):
        system, _ = build(telemetry=False)
        for _ in range(4):
            system.query(ALLOWED, requester="alice")
        entries = system.engine.history.entries("alice")
        assert len(entries) == 4  # one per pose, hot or cold

    def test_guard_still_refuses_after_the_cache_is_warm(self):
        # The guard watches *private* (sub-EXACT) attributes, so this
        # needs a FORM aggregate deployment rather than the flaky one.
        from repro import PrivateIye
        from repro.relational import Table

        system = PrivateIye()
        system.engine.max_distinct_probes = 2
        system.load_policies(
            """
            VIEW s1_private { PRIVATE //patient/salary FORM aggregate; }

            POLICY guard DEFAULT deny {
                ALLOW //patient/salary FOR research FORM aggregate
                    MAXLOSS 0.9;
                ALLOW //patient/age FOR research;
            }
            """,
            view_source={"s1_private": "s1"},
        )
        rows = [{"age": 25 + i, "salary": 1000.0 + 100 * i}
                for i in range(30)]
        system.add_relational_source("s1", Table.from_dicts("patients", rows))

        def probe(cutoff):
            return system.query(
                f"SELECT AVG(//patient/salary) "
                f"WHERE //patient/age > {cutoff} PURPOSE research",
                requester="snoop",
            )

        probe(30)
        probe(30)  # identical repeat: cached AND harmless to the guard
        assert system.cache_stats()["answer"]["hits"] >= 1
        probe(32)  # distinct probe #2: still within the limit
        # Distinct probe #3 exceeds max_distinct_probes=2 — the guard
        # must refuse even though earlier answers were served hot.
        with pytest.raises(AuditRefusal, match="distinct"):
            probe(34)
        assert system.engine.history.entries("snoop")[-1].refused is True

    def test_cached_static_refusal_replays_the_identical_message(self):
        system, _ = build()
        with pytest.raises(PrivacyViolation) as first:
            system.query(REFUSED, requester="alice")
        assert cache_section(system)["static"] == "miss"
        refusers_cold = system.explain_last().refusing_sources()

        with pytest.raises(PrivacyViolation) as second:
            system.query(REFUSED, requester="alice")
        assert cache_section(system)["static"] == "hit"
        assert str(second.value) == str(first.value)
        # the per-source refusal ledger is replayed entry for entry
        assert system.explain_last().refusing_sources() == refusers_cold
        assert refusers_cold  # and it is not vacuously empty


class TestConcurrency:
    def test_hits_race_invalidations_without_corruption(self):
        system, _ = build(telemetry=False)
        engine = system.engine
        baseline = repr(engine.pose(ALLOWED, requester="alice").rows)
        errors = []
        stop = threading.Event()

        def invalidator():
            while not stop.is_set():
                engine.cache.invalidate_requester("alice")
                engine.warehouse.invalidate()

        def poser():
            try:
                for _ in range(25):
                    result = engine.pose(ALLOWED, requester="alice")
                    if repr(result.rows) != baseline:
                        raise AssertionError("stale or corrupt answer")
            except Exception as error:  # pragma: no cover - fails the test
                errors.append(error)

        chaos = threading.Thread(target=invalidator)
        posers = [threading.Thread(target=poser) for _ in range(4)]
        chaos.start()
        for thread in posers:
            thread.start()
        for thread in posers:
            thread.join()
        stop.set()
        chaos.join()
        assert errors == []


class TestObservability:
    def test_explain_cache_section_and_metrics(self):
        system, _ = build()
        system.query(ALLOWED, requester="alice")
        cold = cache_section(system)
        assert cold["enabled"] is True
        assert len(cold["fingerprint"]) == 32
        assert (cold["plan"], cold["static"], cold["answer"]) == (
            "miss", "miss", "miss"
        )
        assert set(cold["epochs"]) == {"policy", "schema", "requester"}

        system.query(ALLOWED, requester="alice")
        warm = cache_section(system)
        assert (warm["plan"], warm["static"], warm["answer"]) == (
            "hit", "hit", "hit"
        )
        assert warm["fingerprint"] == cold["fingerprint"]

        warehouse = system.explain_last().to_dict()["warehouse"]
        assert warehouse["from_cache"] is True
        assert warehouse["origin"] == "answer-cache"
        assert warehouse["source_calls"] == 0

        counters = system.metrics_snapshot()["counters"]
        for tier in ("plan", "static", "answer"):
            assert counters[f"mediator.cache.{tier}.hits"] >= 1
            assert counters[f"mediator.cache.{tier}.misses"] >= 1
        assert counters["mediator.cache.rewrite.misses"] >= 1

    def test_cache_stats_facade(self):
        system, _ = build(telemetry=False)
        system.query(ALLOWED, requester="alice")
        system.query(ALLOWED, requester="alice")
        stats = system.cache_stats()
        assert set(stats) >= {"plan", "static", "rewrite", "answer",
                              "epochs"}
        assert stats["plan"]["hits"] >= 1
        assert stats["answer"]["hits"] >= 1

    def test_disabled_cache_still_reports_the_answer_tier(self):
        system, _ = build(telemetry=True, cache=False)
        system.query(ALLOWED, requester="alice")
        info = cache_section(system)
        assert info["enabled"] is False
        assert (info["plan"], info["static"], info["answer"]) == (
            "off", "off", "miss"
        )
        stats = system.cache_stats()
        assert set(stats) == {"answer"}
        assert stats["answer"]["misses"] >= 1
        # legacy epoch-less hits are labelled "warehouse", not
        # "answer-cache" — blind materialization is visible as such
        system.query(ALLOWED, requester="alice")
        warehouse = system.explain_last().to_dict()["warehouse"]
        assert warehouse["origin"] == "warehouse"
