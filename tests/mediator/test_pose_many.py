"""``pose_many`` vs N× ``pose``: the batch pipeline changes nothing.

Two identically-built systems run the identical mixed workload — one
through a plain ``pose()`` loop, one through ``pose_many`` — and every
observable output is compared: answers, refusal types and messages,
audit-journal hash chains (byte-identical under an injected clock),
per-source counters, cumulative budgets, and the normalized explain
ledgers.  Sharing inside the batch is recomputation elision only;
anything that diverges here is a privacy-semantics bug, not a perf bug.
"""

import json

import pytest

from repro import PrivateIye
from repro.errors import ReproError
from repro.mediator.dispatch import DispatchPolicy
from repro.observatory import Observatory
from repro.observatory.journal import AuditJournal
from repro.relational import Table
from repro.testing.faults import FaultSchedule, build_flaky_system

POLICIES = """
VIEW clinic_private {
    PRIVATE //patient/ssn;
    PRIVATE //patient/hba1c FORM aggregate;
}
VIEW lab_private {
    PRIVATE //patient/ssn;
    PRIVATE //patient/hba1c FORM aggregate;
}

POLICY clinic DEFAULT deny {
    DENY //patient/ssn FOR *;
    ALLOW //patient/hba1c FOR public-health-research FORM aggregate MAXLOSS 0.6;
    ALLOW //patient/city FOR research;
}

POLICY lab DEFAULT deny {
    DENY //patient/ssn FOR *;
    ALLOW //patient/hba1c FOR public-health-research FORM aggregate MAXLOSS 0.6;
    ALLOW //patient/city FOR research;
}
"""

WORKLOAD = [
    "SELECT //patient/city PURPOSE research MAXLOSS 0.9",
    "SELECT //patient/city PURPOSE research MAXLOSS 0.8",   # prep reuse
    "SELECT //patient/city PURPOSE research MAXLOSS 0.9",   # exact repeat
    ("SELECT AVG(//patient/hba1c) AS mean "
     "PURPOSE public-health-research MAXLOSS 0.6"),
    "SELECT AVG(//patient/hba1c) PURPOSE marketing",        # policy refusal
    "SELECT //patient/ssn PURPOSE research",                # static refusal
    ("SELECT AVG(//patient/hba1c) AS mean "
     "PURPOSE public-health-research MAXLOSS 0.6"),         # noise replay
    "SELECT //patient/city PURPOSE research MAXLOSS 0.7",
]


def ticking_clock():
    state = {"now": 1_000_000.0}

    def clock():
        state["now"] += 1.0
        return state["now"]

    return clock


def build_system(seed=23):
    system = PrivateIye(
        telemetry=True,
        observatory=Observatory(journal=AuditJournal(clock=ticking_clock())),
        dispatch=DispatchPolicy(mode="sequential"),
        seed=seed,
    )
    system.load_policies(
        POLICIES,
        view_source={"clinic_private": "clinic", "lab_private": "lab"},
    )
    clinic_rows = [
        {"ssn": f"1-{i:03d}", "hba1c": 60.0 + i % 25,
         "city": ["pittsburgh", "butler"][i % 2]}
        for i in range(30)
    ]
    lab_rows = [
        {"ssn": f"2-{i:03d}", "hba1c": 65.0 + i % 20,
         "city": ["pittsburgh", "erie"][i % 2]}
        for i in range(20)
    ]
    system.add_relational_source(
        "clinic", Table.from_dicts("patients", clinic_rows),
        noise_epsilon=0.5,
    )
    system.add_relational_source(
        "lab", Table.from_dicts("patients", lab_rows),
        noise_epsilon=0.5,
    )
    return system


def run_looped(system, queries, requester):
    outcomes = []
    for text in queries:
        try:
            outcomes.append(
                ("answered", system.query(text, requester=requester))
            )
        except ReproError as error:
            outcomes.append(("refused", error))
    return outcomes


def normalize_timing(value):
    """Timing fields (and trace ids) vary run to run; nothing else may."""
    if isinstance(value, dict):
        return {
            key: (None
                  if key in ("wall_ms", "duration_ms", "analysis_ms", "ts",
                             "trace_id")
                  else normalize_timing(item))
            for key, item in value.items()
        }
    if isinstance(value, list):
        return [normalize_timing(item) for item in value]
    return value


def ledgers(system):
    return [
        json.dumps(normalize_timing(report.to_dict()), sort_keys=True)
        for report in system.telemetry.explain.reports()
    ]


class TestPoseManyEquivalence:
    @pytest.fixture()
    def pair(self):
        looped_system = build_system()
        batch_system = build_system()
        looped = run_looped(looped_system, WORKLOAD, "epi")
        outcomes = batch_system.pose_many(WORKLOAD, requester="epi")
        return looped_system, batch_system, looped, outcomes

    def test_answers_and_refusals_match(self, pair):
        _, _, looped, outcomes = pair
        assert len(outcomes) == len(looped)
        for (status, loop_value), outcome in zip(looped, outcomes):
            if status == "answered":
                assert outcome.ok
                assert outcome.result.rows == loop_value.rows
                assert outcome.result.per_source_loss == \
                    loop_value.per_source_loss
                assert outcome.result.aggregated_loss == \
                    loop_value.aggregated_loss
            else:
                assert not outcome.ok
                assert type(outcome.error) is type(loop_value)
                assert str(outcome.error) == str(loop_value)
                with pytest.raises(type(loop_value)):
                    outcome.unwrap()

    def test_journal_hash_chains_are_byte_identical(self, pair):
        looped_system, batch_system, _, _ = pair
        looped_journal = looped_system.audit_journal()
        batch_journal = batch_system.audit_journal()
        assert looped_journal.verify_chain() == (True, None)
        assert batch_journal.verify_chain() == (True, None)
        looped_records = [r.to_dict() for r in looped_journal.records()]
        batch_records = [r.to_dict() for r in batch_journal.records()]
        assert batch_records == looped_records  # hashes included

    def test_cumulative_budgets_match(self, pair):
        looped_system, batch_system, _, _ = pair
        assert (batch_system.audit_journal().requesters()
                == looped_system.audit_journal().requesters())

    def test_per_source_counters_match(self, pair):
        looped_system, batch_system, _, _ = pair
        for name in ("clinic", "lab"):
            looped_source = looped_system.engine.sources[name]
            batch_source = batch_system.engine.sources[name]
            assert batch_source.queries_answered == \
                looped_source.queries_answered
            assert batch_source.queries_refused == \
                looped_source.queries_refused

    def test_explain_ledgers_are_byte_identical(self, pair):
        looped_system, batch_system, _, _ = pair
        assert ledgers(batch_system) == ledgers(looped_system)


class TestPoseStream:
    def test_stream_is_lazy_and_ordered(self):
        system = build_system()
        stream = system.pose_stream(WORKLOAD, requester="epi")
        first = next(stream)
        assert first.ok
        assert len(system.audit_journal()) == 1  # only one query ran
        rest = list(stream)
        assert len(rest) == len(WORKLOAD) - 1
        assert len(system.audit_journal()) == len(WORKLOAD)

    def test_session_accounting_counts_each_query(self):
        system = build_system()
        system.pose_many(WORKLOAD[:3], requester="epi")
        assert system.session("epi").queries_posed == 3


class TestSeededNoise:
    def test_same_seed_same_noise_different_seed_different(self):
        aggregate = WORKLOAD[3]
        answers = {}
        for seed in (23, 23, 24):
            system = build_system(seed=seed)
            result = system.query(aggregate, requester="epi")
            answers.setdefault(seed, []).append(result.rows)
        assert answers[23][0] == answers[23][1]
        assert answers[24][0] != answers[23][0]

    def test_flaky_harness_threads_the_seed(self):
        aggregate = ("SELECT AVG(//patient/age) AS mean PURPOSE research "
                     "MAXLOSS 0.9")
        rows = []
        for _ in range(2):
            system, _ = build_flaky_system(3, seed=11, noise_epsilon=0.5)
            rows.append(system.query(aggregate, requester="a").rows)
        assert rows[0] == rows[1]


class TestRefusalFinalityInBatch:
    def test_injected_refusal_is_not_retried_and_batch_continues(self):
        refusals = FaultSchedule([("refuse",)])
        system, flaky = build_flaky_system(
            2,
            schedule_for=lambda name, index: (
                refusals if index == 0 else None
            ),
        )
        queries = [
            "SELECT //patient/age PURPOSE research MAXLOSS 0.9",
            "SELECT //patient/visits PURPOSE research MAXLOSS 0.9",
        ]
        outcomes = system.pose_many(queries, requester="epi")
        # A per-source refusal excludes that source; the pose itself
        # still answers from the remaining sources.
        assert outcomes[0].ok
        assert sorted(outcomes[0].result.per_source_loss) == ["src01"]
        assert outcomes[1].ok
        assert sorted(outcomes[1].result.per_source_loss) == \
            ["src00", "src01"]
        # the refused source was called exactly once for the first query:
        # a refusal is final, batch or not — no retry consumed a second
        # schedule event.
        assert flaky["src00"].faults_injected == 1
        assert flaky["src00"].calls == 2
