"""The pre-dispatch static gate: engine wiring, ledger, and metrics."""

import pytest

from repro import PrivateIye
from repro.access import Permission, RbacPolicy, Role
from repro.analysis.plancheck import PlanAnalyzer
from repro.errors import AccessDenied, PrivacyViolation
from repro.relational import Table

POLICIES = """
VIEW clinic_private {
    PRIVATE //patient/ssn;
    PRIVATE //patient/hba1c FORM aggregate;
}
VIEW lab_private {
    PRIVATE //patient/ssn;
    PRIVATE //patient/hba1c FORM aggregate;
}

POLICY clinic DEFAULT deny {
    DENY //patient/ssn FOR *;
    ALLOW //patient/hba1c FOR public-health-research FORM aggregate MAXLOSS 0.6;
    ALLOW //patient/city FOR research;
}

POLICY lab DEFAULT deny {
    DENY //patient/ssn FOR *;
    ALLOW //patient/hba1c FOR public-health-research FORM aggregate MAXLOSS 0.6;
    ALLOW //patient/city FOR research;
}
"""

REFUSED = "SELECT AVG(//patient/hba1c) PURPOSE marketing"
ANSWERED = "SELECT //patient/city PURPOSE research"


def build_system(**kwargs):
    system = PrivateIye(**kwargs)
    system.load_policies(
        POLICIES,
        view_source={"clinic_private": "clinic", "lab_private": "lab"},
    )
    clinic_rows = [
        {"ssn": f"1-{i:03d}", "hba1c": 60.0 + i % 25,
         "city": ["pittsburgh", "butler"][i % 2]}
        for i in range(30)
    ]
    lab_rows = [
        {"ssn": f"2-{i:03d}", "hba1c": 65.0 + i % 20,
         "city": ["pittsburgh", "erie"][i % 2]}
        for i in range(20)
    ]
    system.add_relational_source(
        "clinic", Table.from_dicts("patients", clinic_rows)
    )
    system.add_relational_source(
        "lab", Table.from_dicts("patients", lab_rows)
    )
    return system


class TestGateWiring:
    def test_gate_is_on_by_default(self):
        system = build_system()
        assert isinstance(system.engine.static_analyzer, PlanAnalyzer)

    def test_gate_can_be_disabled(self):
        system = build_system(static_check=False)
        assert system.engine.static_analyzer is None

    def test_shared_analyzer_instance_accepted(self):
        analyzer = PlanAnalyzer()
        system = build_system(static_check=analyzer)
        assert system.engine.static_analyzer is analyzer

    def test_static_refusal_skips_dispatch_entirely(self):
        system = build_system()
        with pytest.raises(PrivacyViolation):
            system.query(REFUSED, requester="mkt")
        assert all(
            remote.queries_answered == 0
            for remote in system.engine.sources.values()
        )

    def test_refusal_message_same_with_gate_off(self):
        # callers see one refusal contract regardless of where the
        # verdict was decided; only the "decided statically" marker
        # distinguishes the static path
        gated = build_system()
        ungated = build_system(static_check=False)
        with pytest.raises(PrivacyViolation) as static_error:
            gated.query(REFUSED, requester="mkt")
        with pytest.raises(PrivacyViolation) as runtime_error:
            ungated.query(REFUSED, requester="mkt")
        assert "every relevant source refused" in str(static_error.value)
        assert "every relevant source refused" in str(runtime_error.value)
        assert "clinic:" in str(static_error.value)
        assert "clinic:" in str(runtime_error.value)

    def test_gate_off_still_refuses_at_runtime(self):
        system = build_system(static_check=False)
        with pytest.raises(PrivacyViolation, match="every relevant source"):
            system.query(REFUSED, requester="mkt")

    def test_access_denied_propagates_through_gate(self):
        rbac = RbacPolicy()
        rbac.add_role(Role("reader", [Permission("read", "patients.*")]))
        rbac.assign("alice", "reader")
        system = PrivateIye()
        system.load_policies(
            "POLICY solo DEFAULT deny { ALLOW //patient/age FOR research; }"
        )
        table = Table.from_dicts(
            "patients", [{"age": 30 + i} for i in range(10)]
        )
        system.add_relational_source("solo", table, rbac=rbac)
        result = system.query(
            "SELECT //patient/age PURPOSE research", requester="alice"
        )
        assert len(result.rows) == 10
        with pytest.raises(AccessDenied):
            system.query(
                "SELECT //patient/age PURPOSE research", requester="mallory"
            )


class TestGateLedger:
    def test_answered_query_records_static_verdict(self):
        system = build_system(telemetry=True)
        system.query(ANSWERED, requester="r1")
        report = system.explain_last()
        assert report.static is not None
        assert report.static["verdict"] == "SAFE"
        assert set(report.static["per_source"]) == {"clinic", "lab"}

    def test_refused_query_ledger_matches_runtime_shape(self):
        system = build_system(telemetry=True)
        with pytest.raises(PrivacyViolation):
            system.query(REFUSED, requester="mkt")
        report = system.explain_last()
        assert report.status == "refused"
        assert report.static["verdict"] == "REFUSE"
        assert report.refusing_sources() == ["clinic", "lab"]
        assert report.sources["clinic"]["kind"] == "PrivacyViolation"
        assert report.sources["clinic"]["static"] is True
        assert report.warehouse["from_cache"] is False

    def test_runtime_check_verdict_recorded(self):
        system = build_system(telemetry=True)
        system.query(
            "SELECT AVG(//patient/hba1c) AS mean "
            "PURPOSE outbreak-surveillance MAXLOSS 0.6",
            requester="epi",
        )
        report = system.explain_last()
        assert report.static["verdict"] == "RUNTIME_CHECK"
        assert report.static["runtime_checks"]

    def test_gate_off_leaves_static_section_empty(self):
        system = build_system(telemetry=True, static_check=False)
        system.query(ANSWERED, requester="r1")
        report = system.explain_last()
        assert report.static is None

    def test_report_serializes_with_static_section(self):
        import json

        system = build_system(telemetry=True)
        system.query(ANSWERED, requester="r1")
        data = system.explain_last().to_dict()
        assert data["static"]["verdict"] == "SAFE"
        json.dumps(data)  # the whole ledger stays JSON-serializable


class TestGateMetrics:
    def test_verdict_counters(self):
        system = build_system(telemetry=True)
        metrics = system.telemetry.metrics
        system.query(ANSWERED, requester="r1")
        assert metrics.counter("mediator.static.safe").value == 1
        with pytest.raises(PrivacyViolation):
            system.query(REFUSED, requester="mkt")
        assert metrics.counter("mediator.static.refuse").value == 1

    def test_saved_source_calls_accounted(self):
        system = build_system(telemetry=True)
        with pytest.raises(PrivacyViolation):
            system.query(REFUSED, requester="mkt")
        saved = system.telemetry.metrics.counter(
            "mediator.static.saved_source_calls"
        )
        assert saved.value == 2  # both sources spared a doomed fan-out

    def test_analysis_time_histogram_observed(self):
        system = build_system(telemetry=True)
        system.query(ANSWERED, requester="r1")
        snapshot = system.telemetry.metrics.snapshot()
        histogram = snapshot["histograms"]["mediator.static.analysis_ms"]
        assert histogram["count"] == 1
