"""Integration tests: attacks that span sources, and the mediator's answer.

The paper's §4 open problem is preventing a *set* of queries — possibly
against different sources — from jointly violating privacy.  Source-side
audits only see their own traffic; these tests verify the mediator-level
sequence guard catches what the per-source defenses cannot.
"""

import pytest

from repro import AuditRefusal, PrivateIye
from repro.relational import Table

POLICIES = """
VIEW s1_private {{ PRIVATE //patient/salary FORM aggregate; }}
VIEW s2_private {{ PRIVATE //patient/salary FORM aggregate; }}

POLICY {name} DEFAULT deny {{
    ALLOW //patient/salary FOR research FORM aggregate MAXLOSS 0.9;
    ALLOW //patient/dept FOR research;
    ALLOW //patient/age FOR research;
}}
"""


def build_system(max_probes=3):
    system = PrivateIye()
    system.engine.max_distinct_probes = max_probes
    for index, name in enumerate(("s1", "s2")):
        system.load_policies(
            POLICIES.format(name=name),
            view_source={f"s{index + 1}_private": name},
        )
        rows = [
            {"dept": ["sales", "eng"][i % 2], "age": 25 + i,
             "salary": 1000.0 + 100 * i + index * 37}
            for i in range(40)
        ]
        system.add_relational_source(name, Table.from_dicts("patients", rows))
    return system


class TestCrossSourceSequenceGuard:
    def test_probing_across_sources_counted_together(self):
        # The snooper alternates sources via FROM hints; the per-source
        # auditors each see only half the sequence, but the mediator's
        # history sees it all.
        system = build_system(max_probes=3)
        probes = [
            ("s1", "//patient/age > 30"),
            ("s2", "//patient/age > 32"),
            ("s1", "//patient/age > 34"),
        ]
        for source, predicate in probes:
            system.query(
                f"SELECT AVG(//patient/salary) FROM {source} "
                f"WHERE {predicate} PURPOSE research",
                requester="snoop",
            )
        with pytest.raises(AuditRefusal, match="probed"):
            system.query(
                "SELECT AVG(//patient/salary) FROM s2 "
                "WHERE //patient/age > 36 PURPOSE research",
                requester="snoop",
            )

    def test_refused_probe_recorded_in_history(self):
        system = build_system(max_probes=1)
        system.query(
            "SELECT AVG(//patient/salary) WHERE //patient/age > 30 "
            "PURPOSE research",
            requester="snoop",
        )
        with pytest.raises(AuditRefusal):
            system.query(
                "SELECT AVG(//patient/salary) WHERE //patient/age > 31 "
                "PURPOSE research",
                requester="snoop",
            )
        entries = system.history("snoop")
        assert entries[-1].refused

    def test_public_attribute_probing_unbounded(self):
        system = build_system(max_probes=1)
        for i in range(5):
            system.query(
                f"SELECT COUNT(*) WHERE //patient/age > {30 + i} "
                "PURPOSE research",
                requester="analyst",
            )

    def test_identical_repeats_never_blocked(self):
        system = build_system(max_probes=1)
        text = ("SELECT AVG(//patient/salary) WHERE //patient/age > 30 "
                "PURPOSE research")
        for _ in range(5):
            system.query(text, requester="refresher")
