"""Fault-injection tests for the concurrent fan-out dispatcher.

Drives :class:`~repro.mediator.dispatch.FanoutDispatcher` — standalone
and through a full ``pose()`` — with scripted
:class:`~repro.testing.FaultSchedule` events: timeouts, transient
errors, hangs, refusals, and circuit-breaker lifecycles.
"""

import itertools

import pytest

from repro.errors import (
    PrivacyViolation,
    SourceUnavailable,
    TransientSourceError,
)
from repro.mediator.dispatch import (
    FAULT_BREAKER,
    FAULT_DEADLINE,
    FAULT_TRANSIENT,
    CircuitBreaker,
    DispatchPolicy,
    FanoutDispatcher,
)
from repro.testing import FaultSchedule, build_flaky_system

QUERY = "SELECT //patient/age PURPOSE research"


class FakeClock:
    """A manually advanced monotonic clock."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestCircuitBreakerLifecycle:
    def test_opens_after_threshold_consecutive_failures(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=3, cooldown_s=10.0, clock=clock)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.times_opened == 1
        assert breaker.acquire() is None  # failing fast

    def test_success_resets_the_consecutive_count(self):
        breaker = CircuitBreaker(threshold=2, cooldown_s=10.0,
                                 clock=FakeClock())
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_probe_closes_on_success(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown_s=5.0, clock=clock)
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        clock.advance(5.0)
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.acquire() == "probe"
        # the probe slot is exclusive: concurrent callers fail fast
        assert breaker.acquire() is None
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.acquire() == CircuitBreaker.CLOSED

    def test_failed_probe_reopens_and_restarts_cooldown(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown_s=5.0, clock=clock)
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.acquire() == "probe"
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        clock.advance(4.9)
        assert breaker.acquire() is None  # cooldown restarted at probe
        clock.advance(0.2)
        assert breaker.acquire() == "probe"


def scripted_dispatcher(policy, scripts):
    """A dispatcher plus a ``call`` that replays ``scripts[name]``.

    Each script entry is ``"ok"``, ``"transient"``, or ``"refuse"``;
    exhausted scripts answer ``ok``.  Returns (dispatcher, call, calls).
    """
    iterators = {
        name: itertools.chain(script, itertools.repeat("ok"))
        for name, script in scripts.items()
    }
    calls = {name: 0 for name in scripts}

    def call(name):
        calls[name] += 1
        event = next(iterators[name])
        if event == "transient":
            raise TransientSourceError(f"{name}: scripted transient")
        if event == "refuse":
            raise PrivacyViolation(f"{name}: scripted refusal")
        return f"answer-from-{name}"

    return FanoutDispatcher(policy), call, calls


class TestRetries:
    @pytest.mark.parametrize("mode", ["sequential", "concurrent"])
    def test_retry_then_succeed(self, mode):
        policy = DispatchPolicy(mode=mode, retries=2, backoff_base_s=0.001)
        dispatcher, call, calls = scripted_dispatcher(
            policy, {"a": ["transient", "transient"], "b": []}
        )
        result = dispatcher.dispatch(["a", "b"], call)
        assert result.responses == {"a": "answer-from-a",
                                    "b": "answer-from-b"}
        outcome = result.outcomes["a"]
        assert outcome.attempts == 3 and outcome.retries == 2
        assert outcome.faults == [FAULT_TRANSIENT, FAULT_TRANSIENT]
        assert calls == {"a": 3, "b": 1}

    @pytest.mark.parametrize("mode", ["sequential", "concurrent"])
    def test_transients_exhaust_into_unavailable(self, mode):
        policy = DispatchPolicy(mode=mode, retries=1, backoff_base_s=0.001,
                                partial="best_effort")
        dispatcher, call, calls = scripted_dispatcher(
            policy, {"a": ["transient", "transient"], "b": []}
        )
        result = dispatcher.dispatch(["a", "b"], call)
        assert "a" in result.unavailable
        assert result.unavailable["a"].kind == FAULT_TRANSIENT
        assert result.outcomes["a"].attempts == 2
        assert calls["a"] == 2

    @pytest.mark.parametrize("mode", ["sequential", "concurrent"])
    def test_refusals_are_never_retried(self, mode):
        policy = DispatchPolicy(mode=mode, retries=5)
        dispatcher, call, calls = scripted_dispatcher(
            policy, {"a": ["refuse"], "b": []}
        )
        result = dispatcher.dispatch(["a", "b"], call)
        assert result.refused["a"].kind == "PrivacyViolation"
        assert result.outcomes["a"].attempts == 1
        assert calls["a"] == 1


class TestPartialPolicies:
    def _scripts(self):
        return {"a": ["transient", "transient"], "b": [], "c": []}

    def _policy(self, partial):
        return DispatchPolicy(mode="concurrent", retries=1,
                              backoff_base_s=0.001, partial=partial)

    def test_require_all_raises_source_unavailable(self):
        dispatcher, call, _ = scripted_dispatcher(
            self._policy("require_all"), self._scripts()
        )
        with pytest.raises(SourceUnavailable, match="require_all"):
            dispatcher.dispatch(["a", "b", "c"], call)

    def test_quorum_met_tolerates_a_lost_source(self):
        dispatcher, call, _ = scripted_dispatcher(
            self._policy(("quorum", 2)), self._scripts()
        )
        result = dispatcher.dispatch(["a", "b", "c"], call)
        assert sorted(result.responses) == ["b", "c"]

    def test_quorum_unmet_raises(self):
        dispatcher, call, _ = scripted_dispatcher(
            self._policy(("quorum", 3)), self._scripts()
        )
        with pytest.raises(SourceUnavailable, match="quorum"):
            dispatcher.dispatch(["a", "b", "c"], call)

    def test_best_effort_never_raises(self):
        dispatcher, call, _ = scripted_dispatcher(
            self._policy("best_effort"), self._scripts()
        )
        result = dispatcher.dispatch(["a", "b", "c"], call)
        assert sorted(result.responses) == ["b", "c"]
        assert sorted(result.unavailable) == ["a"]


class TestBreakerThroughDispatcher:
    def test_open_breaker_fails_fast_then_probe_recovers(self):
        clock = FakeClock()
        policy = DispatchPolicy(mode="sequential", retries=0,
                                breaker_threshold=2, breaker_cooldown_s=30.0,
                                partial="best_effort")
        scripts = {"a": ["transient", "transient", "ok", "ok"]}
        iterators = {
            name: itertools.chain(script, itertools.repeat("ok"))
            for name, script in scripts.items()
        }
        calls = {"a": 0}

        def call(name):
            calls[name] += 1
            if next(iterators[name]) == "transient":
                raise TransientSourceError("boom")
            return "answer"

        dispatcher = FanoutDispatcher(policy, clock=clock)
        dispatcher.dispatch(["a"], call)          # failure 1
        dispatcher.dispatch(["a"], call)          # failure 2 → opens
        assert dispatcher.breaker("a").state == CircuitBreaker.OPEN

        result = dispatcher.dispatch(["a"], call)  # fails fast, no call
        assert calls["a"] == 2
        assert result.unavailable["a"].kind == FAULT_BREAKER
        assert result.outcomes["a"].faults == [FAULT_BREAKER]

        clock.advance(30.0)                        # cooldown elapses
        result = dispatcher.dispatch(["a"], call)  # half-open probe → ok
        assert calls["a"] == 3
        assert result.responses["a"] == "answer"
        assert dispatcher.breaker("a").state == CircuitBreaker.CLOSED

    def test_failed_probe_goes_straight_back_to_open(self):
        clock = FakeClock()
        policy = DispatchPolicy(mode="sequential", retries=3,
                                breaker_threshold=1, breaker_cooldown_s=10.0,
                                partial="best_effort")
        calls = {"a": 0}

        def call(name):
            calls[name] += 1
            raise TransientSourceError("always down")

        dispatcher = FanoutDispatcher(policy, clock=clock)
        dispatcher.dispatch(["a"], call)           # opens on first failure
        assert dispatcher.breaker("a").state == CircuitBreaker.OPEN
        clock.advance(10.0)
        result = dispatcher.dispatch(["a"], call)  # probe fails → open
        # a failed half-open probe is never retried, even with retries=3
        assert result.outcomes["a"].attempts == 1
        assert dispatcher.breaker("a").state == CircuitBreaker.OPEN


class TestTimeouts:
    def test_timeout_becomes_unavailable_with_deadline_kind(self):
        system, flaky = build_flaky_system(
            3,
            schedule_for=lambda name, i: (
                FaultSchedule([("hang", 0.4)]) if i == 0 else None
            ),
            dispatch=DispatchPolicy(
                mode="concurrent", timeout_s=0.05, retries=0,
                partial="best_effort",
            ),
            telemetry=True,
        )
        result = system.query(QUERY, requester="ops")
        assert sorted(result.per_source_loss) == ["src01", "src02"]
        assert result.refused_sources["src00"].kind == FAULT_DEADLINE

        report = system.explain_last()
        assert report.unavailable_sources() == ["src00"]
        outcome = report.sources["src00"]
        assert outcome["outcome"] == "unavailable"
        assert outcome["faults"] == [FAULT_DEADLINE]
        assert outcome["attempts"] == 1
        counters = system.metrics_snapshot()["counters"]
        assert counters["mediator.fanout.timeouts"] == 1
        assert counters["mediator.fanout.unavailable"] == 1

    def test_quorum_satisfied_despite_one_hung_source(self):
        system, flaky = build_flaky_system(
            3,
            schedule_for=lambda name, i: (
                FaultSchedule([("hang", 0.8)]) if i == 2 else None
            ),
            # deadline far above healthy-source latency (load tolerance)
            # but well under the hang, so src02 alone can miss it
            dispatch=DispatchPolicy(
                mode="concurrent", timeout_s=0.2, retries=0,
                partial=("quorum", 2),
            ),
        )
        result = system.query(QUERY, requester="ops")
        assert sorted(result.per_source_loss) == ["src00", "src01"]
        # the pose returns without waiting for the hang to drain
        assert result.refused_sources["src02"].kind == FAULT_DEADLINE

    def test_all_sources_unreachable_raises_source_unavailable(self):
        system, _ = build_flaky_system(
            2,
            schedule_for=lambda name, i: FaultSchedule.always(
                ("transient",), 4
            ),
            dispatch=DispatchPolicy(
                mode="concurrent", retries=1, backoff_base_s=0.001,
                partial="best_effort",
            ),
            telemetry=True,
        )
        with pytest.raises(SourceUnavailable, match="could be reached"):
            system.query(QUERY, requester="ops")
        report = system.explain_last()
        assert report.status == "refused"
        assert report.refusal["kind"] == "SourceUnavailable"
        # ledger still carries the per-source fault accounting
        assert report.unavailable_sources() == ["src00", "src01"]


class TestExplainWallClock:
    def test_source_outcomes_record_where_time_went(self):
        system, _ = build_flaky_system(
            3,
            schedule_for=lambda name, i: (
                FaultSchedule([("delay", 0.08)]) if i == 1 else None
            ),
            telemetry=True,
        )
        system.query(QUERY, requester="epi")
        report = system.explain_last()
        walls = report.source_wall_ms()
        assert sorted(walls) == ["src00", "src01", "src02"]
        assert walls["src01"] >= 80.0
        assert max(walls, key=walls.get) == "src01"
        for outcome in report.sources.values():
            assert outcome["attempts"] == 1
            assert outcome["retries"] == 0
            assert outcome["breaker_state"] == CircuitBreaker.CLOSED
        assert report.dispatch["mode"] == "concurrent"
        # concurrent fan-out: total wall tracks the slowest source, not
        # the sum of all three
        assert report.dispatch["wall_ms"] < sum(walls.values())

    def test_retry_accounting_lands_in_ledger_and_metrics(self):
        system, flaky = build_flaky_system(
            2,
            schedule_for=lambda name, i: (
                FaultSchedule([("transient",)]) if i == 0 else None
            ),
            dispatch=DispatchPolicy(
                mode="concurrent", retries=2, backoff_base_s=0.001
            ),
            telemetry=True,
        )
        system.query(QUERY, requester="epi")
        outcome = system.explain_last().sources["src00"]
        assert outcome["outcome"] == "answered"
        assert outcome["attempts"] == 2
        assert outcome["retries"] == 1
        assert outcome["faults"] == [FAULT_TRANSIENT]
        counters = system.metrics_snapshot()["counters"]
        assert counters["mediator.fanout.retries"] == 1
        assert counters["mediator.fanout.transients"] == 1
