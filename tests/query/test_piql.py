"""Unit tests for the PIQL language and feature extraction."""

import pytest

from repro.errors import QueryError
from repro.policy import DisclosureForm, PrivacyView
from repro.query import (
    PiqlAggregate,
    PiqlPredicate,
    PiqlQuery,
    extract_features,
    parse_piql,
)
from repro.query.language import to_piql
from repro.xmlkit import parse_path


class TestModel:
    def test_aggregate_aliases(self):
        agg = PiqlAggregate("avg", "//test/result")
        assert agg.alias == "avg_result"
        assert PiqlAggregate("count", "*").alias == "count"

    def test_count_star_only(self):
        with pytest.raises(QueryError):
            PiqlAggregate("avg", "*")

    def test_unknown_aggregate(self):
        with pytest.raises(QueryError):
            PiqlAggregate("median", "//x")

    def test_predicate_validation(self):
        with pytest.raises(QueryError):
            PiqlPredicate("//x", "~", 1)

    def test_query_requires_select(self):
        with pytest.raises(QueryError):
            PiqlQuery([])

    def test_mixed_select_needs_group_by(self):
        with pytest.raises(QueryError):
            PiqlQuery(["//patient/hmo", PiqlAggregate("count", "*")])
        query = PiqlQuery(
            ["//patient/hmo", PiqlAggregate("count", "*")],
            group_by=["//patient/hmo"],
        )
        assert query.is_aggregate

    def test_max_loss_bounds(self):
        with pytest.raises(QueryError):
            PiqlQuery(["//x"], max_loss=1.5)

    def test_paths_touched(self):
        query = PiqlQuery(
            [PiqlAggregate("avg", "//test/result")],
            where=[PiqlPredicate("//patient/age", ">", 65)],
            group_by=["//patient/hmo"],
        )
        touched = {repr(p) for p in query.paths_touched()}
        assert touched == {"//test/result", "//patient/age", "//patient/hmo"}


class TestParsing:
    def test_simple_select(self):
        query = parse_piql("SELECT //patient/dob, //patient/zip")
        assert len(query.projections) == 2
        assert not query.is_aggregate

    def test_full_query(self):
        text = (
            "SELECT AVG(//test/result) AS mean_result "
            "FROM clinic "
            "WHERE //patient/age > 65 AND //patient/hmo = 'HMO1' "
            "GROUP BY //patient/hmo "
            "PURPOSE outbreak-surveillance MAXLOSS 0.4"
        )
        query = parse_piql(text)
        assert query.aggregates[0].alias == "mean_result"
        assert query.source_hint == "clinic"
        assert len(query.where) == 2
        assert query.where[1].value == "HMO1"
        assert query.purpose == "outbreak-surveillance"
        assert query.max_loss == pytest.approx(0.4)

    def test_count_star(self):
        query = parse_piql("SELECT COUNT(*) PURPOSE research")
        assert query.aggregates[0].path is None

    def test_predicates_with_path_brackets(self):
        query = parse_piql("SELECT //patient[@id='p1']/dob")
        assert "p1" in repr(query.projections[0])

    def test_diamond_and_boolean_literals(self):
        query = parse_piql("SELECT //x WHERE //flag <> true")
        assert query.where[0].op == "!="
        assert query.where[0].value is True

    def test_string_escapes(self):
        query = parse_piql("SELECT //x WHERE //name = 'O''Hara'")
        assert query.where[0].value == "O'Hara"

    def test_round_trip(self):
        text = (
            "SELECT //patient/zip, COUNT(*) AS count "
            "WHERE //patient/age >= 65 "
            "GROUP BY //patient/zip PURPOSE research MAXLOSS 0.3"
        )
        assert to_piql(parse_piql(text)) == text

    def test_errors(self):
        with pytest.raises(QueryError):
            parse_piql("")
        with pytest.raises(QueryError):
            parse_piql("SELECT")
        with pytest.raises(QueryError):
            parse_piql("SELECT //x trailing")
        with pytest.raises(QueryError):
            parse_piql("SELECT //x WHERE //y = ")
        with pytest.raises(QueryError):
            parse_piql("SELECT //x MAXLOSS lots")
        with pytest.raises(QueryError):
            parse_piql("SELECT //x WHERE //y = 'unterminated")


class TestFeatures:
    def view(self):
        return PrivacyView("v", [
            (parse_path("//test/result"), DisclosureForm.AGGREGATE),
        ])

    def test_record_level_query(self):
        query = parse_piql("SELECT //patient/dob WHERE //patient/zip = '15213'")
        features = extract_features(query, self.view())
        assert features["returns_individuals"] == 1.0
        assert features["touches_identifier"] == 1.0
        assert features["n_equality_predicates"] == 1.0
        assert features["touches_private"] == 0.0

    def test_aggregate_query(self):
        query = parse_piql(
            "SELECT AVG(//test/result) WHERE //patient/age > 65 "
            "GROUP BY //patient/hmo MAXLOSS 0.4"
        )
        features = extract_features(query, self.view())
        assert features["returns_individuals"] == 0.0
        assert features["agg_avg"] == 1.0
        assert features["has_group_by"] == 1.0
        assert features["n_range_predicates"] == 1.0
        assert features["touches_private"] == 1.0
        assert features["requested_loss_budget"] == pytest.approx(0.4)

    def test_vector_stable_order(self):
        query = parse_piql("SELECT COUNT(*)")
        features = extract_features(query)
        vector = features.to_vector()
        assert len(vector) == len(features.FIELDS)
        assert vector[features.FIELDS.index("agg_count")] == 1.0

    def test_type_check(self):
        with pytest.raises(QueryError):
            extract_features("SELECT //x")
