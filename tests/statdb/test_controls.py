"""Unit tests for set-size, overlap, and audit controls."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import AuditRefusal, PrivacyViolation, ReproError
from repro.statdb import OverlapController, SetSizeControl, SumAuditor


class TestSetSizeControl:
    def test_small_set_refused(self):
        control = SetSizeControl(3, 20)
        with pytest.raises(PrivacyViolation, match="below minimum"):
            control.check([1, 2])

    def test_large_complement_refused(self):
        control = SetSizeControl(3, 20)
        with pytest.raises(PrivacyViolation, match="complement"):
            control.check(list(range(18)))

    def test_legal_band_passes(self):
        control = SetSizeControl(3, 20)
        control.check([1, 2, 3])
        control.check(list(range(17)))

    def test_complement_restriction_optional(self):
        control = SetSizeControl(3, 20, restrict_complement=False)
        control.check(list(range(19)))

    def test_bad_parameters(self):
        with pytest.raises(ReproError):
            SetSizeControl(0, 20)
        with pytest.raises(ReproError):
            SetSizeControl(5, 8)


class TestOverlapController:
    def test_overlap_within_limit_ok(self):
        control = OverlapController(1)
        control.check_and_record([1, 2, 3])
        control.check_and_record([3, 4, 5])  # overlap = 1

    def test_excess_overlap_refused(self):
        control = OverlapController(1)
        control.check_and_record([1, 2, 3])
        with pytest.raises(PrivacyViolation, match="overlaps"):
            control.check_and_record([2, 3, 4])

    def test_refused_query_not_recorded(self):
        control = OverlapController(0)
        control.check_and_record([1, 2])
        with pytest.raises(PrivacyViolation):
            control.check_and_record([2, 3])
        assert len(control.answered) == 1

    def test_djl_bound(self):
        assert OverlapController(1).minimum_queries_to_compromise(5) == 5.0
        assert OverlapController(0).minimum_queries_to_compromise(5) == float("inf")

    def test_negative_overlap_rejected(self):
        with pytest.raises(ReproError):
            OverlapController(-1)


class TestSumAuditor:
    def test_single_record_query_refused(self):
        auditor = SumAuditor(5)
        with pytest.raises(AuditRefusal):
            auditor.check_and_record([2])

    def test_difference_attack_detected(self):
        auditor = SumAuditor(5)
        auditor.check_and_record([0, 1, 2])
        # {0,1,2,3} - {0,1,2} isolates record 3
        with pytest.raises(AuditRefusal, match="expose"):
            auditor.check_and_record([0, 1, 2, 3])

    def test_three_query_linear_attack_detected(self):
        auditor = SumAuditor(4)
        auditor.check_and_record([0, 1])
        auditor.check_and_record([1, 2])
        # (q1 - q2 + q3) / ... : {0,1} - {1,2} + {2,0} = 2*record0
        with pytest.raises(AuditRefusal):
            auditor.check_and_record([2, 0])

    def test_disjoint_pairs_safe(self):
        auditor = SumAuditor(6)
        auditor.check_and_record([0, 1])
        auditor.check_and_record([2, 3])
        auditor.check_and_record([4, 5])
        assert auditor.compromised_now() == []

    def test_duplicate_query_harmless(self):
        auditor = SumAuditor(5)
        auditor.check_and_record([0, 1, 2])
        auditor.check_and_record([0, 1, 2])  # dependent, adds nothing
        assert len(auditor.answered) == 2
        assert auditor.compromised_now() == []

    def test_would_compromise_is_side_effect_free(self):
        auditor = SumAuditor(5)
        auditor.check_and_record([0, 1])
        assert auditor.would_compromise([1])  # wait: [1] is itself a unit set
        assert auditor.compromised_now() == []
        auditor.check_and_record([2, 3])  # still accepted afterwards

    def test_empty_query_set_rejected(self):
        with pytest.raises(ReproError):
            SumAuditor(5).check_and_record([])

    def test_out_of_range_rejected(self):
        with pytest.raises(ReproError):
            SumAuditor(5).check_and_record([7])


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.sets(st.integers(min_value=0, max_value=7), min_size=2, max_size=6),
        min_size=1,
        max_size=6,
    )
)
def test_audit_invariant_no_record_ever_isolated(query_sets):
    """After any accepted sequence, no unit vector is in the span."""
    auditor = SumAuditor(8)
    for query_set in query_sets:
        try:
            auditor.check_and_record(query_set)
        except AuditRefusal:
            pass
    assert auditor.compromised_now() == []
