"""Unit tests for perturbation, the protected facade, and the tracker attack."""

import random
import statistics

import pytest

from repro.errors import PrivacyViolation, ReproError
from repro.relational import Comparison
from repro.statdb import (
    ProtectedStatDB,
    RandomSampleQueries,
    Rounder,
    StatQuery,
    additive_noise,
    distribution_distortion,
    individual_tracker_attack,
)
from repro.statdb.tracker import true_value
from repro.testing import salaries_table, tracker_predicate, victim_predicate


class TestInputPerturbation:
    def test_additive_noise_changes_values_preserves_mean(self):
        values = [50.0] * 2000
        noisy = additive_noise(values, 5.0, random.Random(1))
        assert noisy != values
        assert statistics.mean(noisy) == pytest.approx(50.0, abs=0.5)

    def test_zero_sigma_identity(self):
        assert additive_noise([1.0, 2.0], 0.0, random.Random(1)) == [1.0, 2.0]

    def test_negative_sigma_rejected(self):
        with pytest.raises(ReproError):
            additive_noise([1.0], -1.0)

    def test_distortion_preserves_moments(self):
        rng = random.Random(2)
        values = [rng.gauss(70.0, 8.0) for _ in range(4000)]
        distorted = distribution_distortion(values, random.Random(3))
        assert statistics.mean(distorted) == pytest.approx(70.0, abs=1.0)
        assert statistics.stdev(distorted) == pytest.approx(8.0, abs=1.0)
        assert not set(values) & set(distorted)  # no original value survives

    def test_distortion_clip(self):
        values = [99.0, 98.0, 97.0, 96.0]
        distorted = distribution_distortion(
            values, random.Random(4), clip=(0.0, 100.0)
        )
        assert all(0.0 <= v <= 100.0 for v in distorted)

    def test_distortion_uniform_family(self):
        distorted = distribution_distortion(
            [0.0, 10.0], random.Random(5), family="uniform"
        )
        assert all(0.0 <= v <= 10.0 for v in distorted)

    def test_distortion_bad_family(self):
        with pytest.raises(ReproError):
            distribution_distortion([1.0], family="zipf")

    def test_distortion_empty_rejected(self):
        with pytest.raises(ReproError):
            distribution_distortion([])


class TestOutputPerturbation:
    def test_rsq_deterministic_per_query(self):
        rsq = RandomSampleQueries(0.8)
        values = [float(i) for i in range(50)]
        query_set = list(range(40))
        first = rsq.sampled_sum(query_set, values)
        second = rsq.sampled_sum(query_set, values)
        assert first == second  # no averaging attack

    def test_rsq_roughly_unbiased(self):
        rsq = RandomSampleQueries(0.5)
        values = [1.0] * 1000
        estimate = rsq.sampled_sum(list(range(1000)), values)
        assert estimate == pytest.approx(1000.0, rel=0.15)

    def test_rsq_full_rate_exact(self):
        rsq = RandomSampleQueries(1.0)
        values = [2.0, 3.0, 4.0]
        assert rsq.sampled_sum([0, 1, 2], values) == 9.0

    def test_rsq_bad_rate(self):
        with pytest.raises(ReproError):
            RandomSampleQueries(0.0)

    def test_rounder_deterministic(self):
        assert Rounder(5.0).round(12.4) == 10.0
        assert Rounder(5.0).round(13.0) == 15.0

    def test_rounder_random_unbiased(self):
        rounder = Rounder(10.0, mode="random", rng=random.Random(6))
        estimates = [rounder.round(14.0) for _ in range(2000)]
        assert statistics.mean(estimates) == pytest.approx(14.0, abs=0.5)

    def test_rounder_bad_args(self):
        with pytest.raises(ReproError):
            Rounder(0.0)
        with pytest.raises(ReproError):
            Rounder(5.0, mode="up")


class TestProtectedStatDB:
    def test_plain_answers(self):
        db = ProtectedStatDB(salaries_table())
        assert db.answer(StatQuery("count")) == 30.0
        total = db.answer(StatQuery("sum", "salary"))
        assert total == sum(1000.0 + 100.0 * i for i in range(30))
        avg = db.answer(StatQuery("avg", "salary"))
        assert avg == pytest.approx(total / 30)

    def test_set_size_enforced(self):
        db = ProtectedStatDB(salaries_table(), min_set_size=5)
        with pytest.raises(PrivacyViolation):
            db.answer(StatQuery("count", predicate=Comparison("id", "=", 3)))
        assert db.queries_refused == 1

    def test_audit_blocks_difference_attack(self):
        db = ProtectedStatDB(salaries_table(), audit=True)
        db.answer(StatQuery("sum", "salary", Comparison("id", "<", 10)))
        with pytest.raises(PrivacyViolation):
            db.answer(StatQuery("sum", "salary", Comparison("id", "<", 11)))

    def test_audit_ignores_counts(self):
        db = ProtectedStatDB(salaries_table(), audit=True)
        db.answer(StatQuery("count", predicate=Comparison("id", "<", 10)))
        db.answer(StatQuery("count", predicate=Comparison("id", "<", 11)))

    def test_overlap_control(self):
        db = ProtectedStatDB(salaries_table(), max_overlap=2)
        db.answer(StatQuery("count", predicate=Comparison("id", "<", 10)))
        with pytest.raises(PrivacyViolation):
            db.answer(StatQuery("count", predicate=Comparison("id", "<", 9)))

    def test_empty_query_set_refused(self):
        db = ProtectedStatDB(salaries_table())
        with pytest.raises(PrivacyViolation, match="empty"):
            db.answer(StatQuery("count", predicate=Comparison("id", "=", 999)))

    def test_perturbed_answers(self):
        db = ProtectedStatDB(
            salaries_table(), output_perturbation=Rounder(100.0)
        )
        assert db.answer(StatQuery("count")) % 100.0 == 0.0

    def test_unknown_column(self):
        db = ProtectedStatDB(salaries_table())
        with pytest.raises(ReproError):
            db.answer(StatQuery("sum", "bonus"))

    def test_statquery_validation(self):
        with pytest.raises(ReproError):
            StatQuery("median", "x")
        with pytest.raises(ReproError):
            StatQuery("sum")


class TestTrackerAttack:
    def victim(self):
        return victim_predicate()

    def tracker(self):
        return tracker_predicate()

    def test_attack_beats_bare_size_control(self):
        db = ProtectedStatDB(
            salaries_table(), min_set_size=3, restrict_complement=False
        )
        result = individual_tracker_attack(
            db, self.victim(), self.tracker(), func="sum", column="salary"
        )
        assert result.succeeded
        truth = true_value(db, self.victim(), func="sum", column="salary")
        assert result.inferred_value == pytest.approx(truth)

    def test_attack_blocked_by_audit(self):
        db = ProtectedStatDB(
            salaries_table(),
            min_set_size=3,
            restrict_complement=False,
            audit=True,
        )
        result = individual_tracker_attack(
            db, self.victim(), self.tracker(), func="sum", column="salary"
        )
        assert not result.succeeded

    def test_attack_blocked_by_overlap_control(self):
        db = ProtectedStatDB(
            salaries_table(),
            min_set_size=3,
            restrict_complement=False,
            max_overlap=2,
        )
        result = individual_tracker_attack(
            db, self.victim(), self.tracker(), func="count"
        )
        assert not result.succeeded

    def test_attack_degraded_by_sampling(self):
        db = ProtectedStatDB(
            salaries_table(),
            min_set_size=3,
            restrict_complement=False,
            output_perturbation=RandomSampleQueries(0.7, secret="s1"),
        )
        result = individual_tracker_attack(
            db, self.victim(), self.tracker(), func="sum", column="salary"
        )
        truth = true_value(db, self.victim(), func="sum", column="salary")
        assert result.succeeded  # answered, but wrong
        assert result.inferred_value != pytest.approx(truth, rel=0.001)
