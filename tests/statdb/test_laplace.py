"""Unit tests for the Laplace mechanism and privacy budgets."""

import random
import statistics

import pytest

from repro.errors import PrivacyViolation, ReproError
from repro.relational import Comparison
from repro.statdb import LaplaceMechanism, PrivacyBudget, ProtectedStatDB, StatQuery
from repro.statdb.tracker import individual_tracker_attack, true_value
from repro.testing import salaries_table, tracker_predicate, victim_predicate


class TestLaplaceMechanism:
    def test_noise_scale(self):
        assert LaplaceMechanism(0.5, sensitivity=2.0).noise_scale == 4.0

    def test_memoized_per_fingerprint(self):
        mechanism = LaplaceMechanism(1.0, rng=random.Random(1))
        a = mechanism.answer(100.0, "q1")
        b = mechanism.answer(100.0, "q1")
        c = mechanism.answer(100.0, "q2")
        assert a == b  # repeat replays, no averaging attack
        assert a != c  # distinct queries get fresh noise

    def test_memo_is_per_requester(self):
        mechanism = LaplaceMechanism(1.0, rng=random.Random(2))
        assert mechanism.answer(5.0, "q", "alice") != mechanism.answer(
            5.0, "q", "bob"
        )

    def test_noise_distribution(self):
        mechanism = LaplaceMechanism(1.0, sensitivity=1.0,
                                     rng=random.Random(3))
        noises = [
            mechanism.answer(0.0, f"q{i}") for i in range(4000)
        ]
        assert statistics.mean(noises) == pytest.approx(0.0, abs=0.1)
        # E|Laplace(b)| = b = 1
        assert statistics.mean(abs(n) for n in noises) == pytest.approx(
            1.0, abs=0.1
        )

    def test_validation(self):
        with pytest.raises(ReproError):
            LaplaceMechanism(0.0)
        with pytest.raises(ReproError):
            LaplaceMechanism(1.0, sensitivity=0.0)


class TestPrivacyBudget:
    def test_charging_and_exhaustion(self):
        budget = PrivacyBudget(1.0)
        budget.charge("alice", 0.4)
        budget.charge("alice", 0.4)
        assert budget.remaining("alice") == pytest.approx(0.2)
        with pytest.raises(PrivacyViolation, match="exhausted"):
            budget.charge("alice", 0.4)

    def test_budgets_are_per_requester(self):
        budget = PrivacyBudget(1.0)
        budget.charge("alice", 1.0)
        budget.charge("bob", 1.0)  # bob has his own ledger

    def test_validation(self):
        with pytest.raises(ReproError):
            PrivacyBudget(0.0)
        with pytest.raises(ReproError):
            PrivacyBudget(1.0).charge("x", -0.1)


class TestLaplaceProtectedDb:
    def db(self, epsilon=0.5, budget_total=None, seed=7):
        budget = PrivacyBudget(budget_total) if budget_total else None
        mechanism = LaplaceMechanism(
            epsilon, sensitivity=1.0, budget=budget, rng=random.Random(seed)
        )
        return ProtectedStatDB(salaries_table(), output_perturbation=mechanism)

    def test_counts_are_noisy_but_close(self):
        db = self.db(epsilon=1.0)
        answer = db.answer(StatQuery("count"))
        assert answer != 30.0
        assert abs(answer - 30.0) < 15.0

    def test_repeated_query_same_answer(self):
        db = self.db()
        query = StatQuery("count", predicate=Comparison("dept", "=", "sales"))
        assert db.answer(query) == db.answer(query)

    def test_budget_exhaustion_refuses_novel_queries(self):
        db = self.db(epsilon=0.5, budget_total=1.0)
        db.answer(StatQuery("count"), requester="snoop")
        db.answer(StatQuery("count", predicate=Comparison("id", "<", 20)),
                  requester="snoop")
        with pytest.raises(PrivacyViolation, match="exhausted"):
            db.answer(StatQuery("count", predicate=Comparison("id", "<", 10)),
                      requester="snoop")
        # repeats of already-answered queries still work (memoized)
        db.answer(StatQuery("count"), requester="snoop")

    def test_tracker_attack_yields_wrong_value(self):
        db = ProtectedStatDB(
            salaries_table(),
            min_set_size=3,
            restrict_complement=False,
            output_perturbation=LaplaceMechanism(
                0.3, sensitivity=1.0, rng=random.Random(11)
            ),
        )
        victim = victim_predicate()
        result = individual_tracker_attack(
            db, victim, tracker_predicate(), func="count"
        )
        truth = true_value(db, victim, func="count")
        assert result.succeeded  # answered...
        assert result.inferred_value != pytest.approx(truth)  # ...but wrong
