"""Unit tests for randomized response, reconstruction, and RR naive Bayes."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ReproError
from repro.mining import RandomizedResponse, RRNaiveBayes, reconstruct_distribution


class TestRandomizedResponse:
    def test_p_validation(self):
        for bad in (0.0, 1.0, 0.5, -0.3):
            with pytest.raises(ReproError):
                RandomizedResponse(bad)

    def test_bool_randomization_flips_sometimes(self):
        rr = RandomizedResponse(0.7, random.Random(1))
        reports = rr.randomize_bools([True] * 1000)
        flips = sum(1 for r in reports if not r)
        assert 200 < flips < 400  # ≈ 30%

    def test_estimate_unbiased(self):
        rr = RandomizedResponse(0.75, random.Random(2))
        truth = [i % 5 == 0 for i in range(20000)]  # 20% True
        reports = rr.randomize_bools(truth)
        estimate = rr.estimate_proportion(reports)
        assert estimate == pytest.approx(0.2, abs=0.02)

    def test_estimate_count(self):
        rr = RandomizedResponse(0.9, random.Random(3))
        truth = [True] * 300 + [False] * 700
        reports = rr.randomize_bools(truth)
        assert rr.estimate_count(reports) == pytest.approx(300, abs=40)

    def test_randomize_bool_type_check(self):
        with pytest.raises(ReproError):
            RandomizedResponse(0.8).randomize_bool(1)

    def test_empty_reports_rejected(self):
        with pytest.raises(ReproError):
            RandomizedResponse(0.8).estimate_proportion([])

    def test_category_randomization_and_estimation(self):
        rng = random.Random(4)
        rr = RandomizedResponse(0.7, rng)
        domain = ["flu", "hiv", "cancer"]
        truth = ["flu"] * 600 + ["hiv"] * 300 + ["cancer"] * 100
        reports = [rr.randomize_category(v, domain) for v in truth]
        estimates = rr.estimate_category_counts(reports, domain)
        assert estimates["flu"] == pytest.approx(600, abs=60)
        assert estimates["hiv"] == pytest.approx(300, abs=60)
        assert estimates["cancer"] == pytest.approx(100, abs=60)

    def test_category_value_validation(self):
        rr = RandomizedResponse(0.7)
        with pytest.raises(ReproError):
            rr.randomize_category("x", ["a", "b"])
        with pytest.raises(ReproError):
            rr.estimate_category_counts(["x"], ["a", "b"])


class TestReconstruction:
    def test_recovers_bimodal_mixture(self):
        rng = random.Random(5)
        true_values = [rng.gauss(30, 4) for _ in range(3000)] + [
            rng.gauss(70, 4) for _ in range(3000)
        ]
        sigma = 10.0
        perturbed = [v + rng.gauss(0, sigma) for v in true_values]
        result = reconstruct_distribution(
            perturbed, sigma, bins=50, value_range=(0, 100)
        )
        # Perturbed data looks unimodal-ish; reconstruction re-separates.
        assert result.l1_error(true_values) < 0.35
        assert result.mean() == pytest.approx(50.0, abs=2.0)
        # two modes recovered: density at 30 and 70 beats density at 50
        centers = result.bin_centers
        def density_near(x):
            import numpy as np
            return result.probs[int(np.argmin(abs(centers - x)))]
        assert density_near(30) > density_near(50)
        assert density_near(70) > density_near(50)

    def test_moments_recovered(self):
        rng = random.Random(6)
        true_values = [rng.gauss(55, 6) for _ in range(4000)]
        perturbed = [v + rng.gauss(0, 12) for v in true_values]
        result = reconstruct_distribution(perturbed, 12.0, bins=60)
        assert result.mean() == pytest.approx(55.0, abs=1.5)
        assert result.std() == pytest.approx(6.0, abs=3.0)

    def test_validation(self):
        with pytest.raises(ReproError):
            reconstruct_distribution([], 1.0)
        with pytest.raises(ReproError):
            reconstruct_distribution([1.0], 0.0)
        with pytest.raises(ReproError):
            reconstruct_distribution([1.0], 1.0, bins=1)
        with pytest.raises(ReproError):
            reconstruct_distribution([1.0], 1.0, value_range=(5, 5))

    def test_probabilities_normalized(self):
        rng = random.Random(7)
        perturbed = [rng.gauss(0, 2) for _ in range(500)]
        result = reconstruct_distribution(perturbed, 1.0, bins=20)
        assert result.probs.sum() == pytest.approx(1.0)
        assert (result.probs >= 0).all()


class TestRRNaiveBayes:
    def dataset(self, n, rng):
        rows, labels = [], []
        for _ in range(n):
            cls = rng.random() < 0.5
            f1 = rng.random() < (0.9 if cls else 0.2)
            f2 = rng.random() < (0.7 if cls else 0.3)
            f3 = rng.random() < 0.5
            rows.append([f1, f2, f3])
            labels.append("pos" if cls else "neg")
        return rows, labels

    def test_learns_from_randomized_data(self):
        rng = random.Random(8)
        rows, labels = self.dataset(4000, rng)
        mechanism = RandomizedResponse(0.8, random.Random(9))
        randomized = [mechanism.randomize_bools(r) for r in rows]
        model = RRNaiveBayes(mechanism).fit(randomized, labels)
        test_rows, test_labels = self.dataset(500, random.Random(10))
        assert model.accuracy(test_rows, test_labels) > 0.8

    def test_validation(self):
        mechanism = RandomizedResponse(0.8)
        model = RRNaiveBayes(mechanism)
        with pytest.raises(ReproError):
            model.fit([], [])
        with pytest.raises(ReproError):
            model.predict([True])
        model.fit([[True, False]], ["a"])
        with pytest.raises(ReproError):
            model.predict([True])  # arity mismatch


@settings(max_examples=20, deadline=None)
@given(
    st.floats(min_value=0.55, max_value=0.95),
    st.integers(min_value=0, max_value=2**31),
)
def test_rr_estimator_within_sampling_error(p, seed):
    """For any legal p, the Warner estimator lands near the truth."""
    rng = random.Random(seed)
    rr = RandomizedResponse(p, rng)
    truth = [i % 4 == 0 for i in range(4000)]  # 25%
    estimate = rr.estimate_proportion(rr.randomize_bools(truth))
    # sampling error scales with 1/(2p-1); allow a generous band
    assert abs(estimate - 0.25) < 0.30 / (2 * p - 1) * 0.25 + 0.05
