"""Unit tests for Apriori and the distributed secure-union miner."""

import random

import pytest

from repro.crypto import TEST_GROUP
from repro.errors import ReproError
from repro.mining import PartitionedMiner, apriori, association_rules, secure_union
from repro.mining.apriori import itemset_support


def baskets():
    return [
        {"bread", "milk"},
        {"bread", "diapers", "beer", "eggs"},
        {"milk", "diapers", "beer", "cola"},
        {"bread", "milk", "diapers", "beer"},
        {"bread", "milk", "diapers", "cola"},
    ]


class TestApriori:
    def test_frequent_singletons(self):
        frequent = apriori(baskets(), 0.6)
        assert frequent[frozenset(["bread"])] == pytest.approx(0.8)
        assert frequent[frozenset(["milk"])] == pytest.approx(0.8)
        assert frequent[frozenset(["diapers"])] == pytest.approx(0.8)

    def test_frequent_pairs(self):
        frequent = apriori(baskets(), 0.6)
        assert frozenset(["diapers", "beer"]) in frequent
        assert frozenset(["bread", "milk"]) in frequent
        assert frozenset(["beer", "milk"]) not in frequent

    def test_support_threshold_monotone(self):
        loose = apriori(baskets(), 0.2)
        strict = apriori(baskets(), 0.8)
        assert set(strict) <= set(loose)

    def test_supports_correct(self):
        frequent = apriori(baskets(), 0.2)
        for itemset, support in frequent.items():
            assert support == pytest.approx(itemset_support(baskets(), itemset))

    def test_validation(self):
        with pytest.raises(ReproError):
            apriori(baskets(), 0.0)
        with pytest.raises(ReproError):
            apriori([], 0.5)

    def test_rules(self):
        frequent = apriori(baskets(), 0.4)
        rules = association_rules(frequent, 0.75)
        as_pairs = {(tuple(sorted(a)), tuple(sorted(c))) for a, c, *_ in rules}
        assert (("beer",), ("diapers",)) in as_pairs  # conf 1.0
        for _a, _c, support, confidence, lift in rules:
            assert 0 < support <= 1
            assert confidence >= 0.75
            assert lift > 0

    def test_rules_sorted_by_confidence(self):
        rules = association_rules(apriori(baskets(), 0.4), 0.5)
        confidences = [r[3] for r in rules]
        assert confidences == sorted(confidences, reverse=True)

    def test_rules_validation(self):
        with pytest.raises(ReproError):
            association_rules({}, 0.0)


class TestSecureUnion:
    def test_union_correct(self):
        sites = [
            [frozenset(["a"]), frozenset(["a", "b"])],
            [frozenset(["a"]), frozenset(["c"])],
        ]
        union, _wire = secure_union(sites, TEST_GROUP, random.Random(1))
        assert set(union) == {
            frozenset(["a"]), frozenset(["a", "b"]), frozenset(["c"]),
        }

    def test_duplicates_collapse(self):
        sites = [[frozenset(["x"])], [frozenset(["x"])], [frozenset(["x"])]]
        union, _wire = secure_union(sites, TEST_GROUP, random.Random(2))
        assert union == [frozenset(["x"])]

    def test_needs_two_sites(self):
        with pytest.raises(ReproError):
            secure_union([[frozenset(["a"])]], TEST_GROUP)

    def test_wire_counts_positive(self):
        sites = [[frozenset(["a"])], [frozenset(["b"])]]
        _union, wire = secure_union(sites, TEST_GROUP, random.Random(3))
        assert wire == 2  # each singleton crosses one other site


class TestPartitionedMiner:
    def split(self, transactions, n_sites, seed=0):
        rng = random.Random(seed)
        sites = [[] for _ in range(n_sites)]
        for t in transactions:
            sites[rng.randrange(n_sites)].append(t)
        return [s for s in sites if s]

    def test_matches_centralized_mining(self):
        transactions = baskets() * 4  # 20 transactions
        sites = self.split(transactions, 3, seed=1)
        miner = PartitionedMiner(
            sites, 0.6, group=TEST_GROUP, rng=random.Random(4)
        )
        distributed = miner.globally_frequent()
        centralized = apriori(transactions, 0.6)
        assert set(distributed) == set(centralized)
        for itemset, support in distributed.items():
            assert support == pytest.approx(centralized[itemset])

    def test_rules_match_centralized(self):
        transactions = baskets() * 4
        sites = self.split(transactions, 2, seed=2)
        miner = PartitionedMiner(
            sites, 0.4, group=TEST_GROUP, rng=random.Random(5)
        )
        distributed_rules = miner.rules(0.8)
        centralized_rules = association_rules(apriori(transactions, 0.4), 0.8)
        assert {
            (tuple(sorted(a)), tuple(sorted(c))) for a, c, *_ in distributed_rules
        } == {
            (tuple(sorted(a)), tuple(sorted(c))) for a, c, *_ in centralized_rules
        }

    def test_overhead_counters(self):
        sites = self.split(baskets() * 2, 2, seed=3)
        miner = PartitionedMiner(sites, 0.5, group=TEST_GROUP, rng=random.Random(6))
        miner.globally_frequent()
        assert miner.union_wire_messages > 0
        assert miner.secure_sums_run > 0

    def test_validation(self):
        with pytest.raises(ReproError):
            PartitionedMiner([baskets()], 0.5)
        with pytest.raises(ReproError):
            PartitionedMiner([baskets(), []], 0.5)
        with pytest.raises(ReproError):
            PartitionedMiner([baskets(), baskets()], 1.5)
