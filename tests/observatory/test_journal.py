"""The hash-chained disclosure audit journal: chaining, tamper evidence."""

import json

import pytest

from repro.errors import ReproError
from repro.observatory.journal import (
    GENESIS_HASH,
    AuditJournal,
    _chain_hash,
    verify_records,
)


def filled_journal():
    """Three answered poses by two requesters plus one refusal."""
    journal = AuditJournal(clock=lambda: 1000.0)
    journal.append("epi", "fp-1", "answered",
                   per_source_loss={"clinic": 0.2, "lab": 0.3},
                   aggregated_loss=0.3)
    journal.append("epi", "fp-2", "answered", aggregated_loss=0.1)
    journal.append("bob", "fp-3", "answered", aggregated_loss=0.5)
    journal.append("epi", "fp-4", "refused", kind="PrivacyViolation")
    return journal


class TestChaining:
    def test_first_record_links_to_genesis(self):
        journal = AuditJournal()
        record = journal.append("epi", "fp", "answered", aggregated_loss=0.1)
        assert record.prev_hash == GENESIS_HASH
        assert record.hash == _chain_hash(record.payload(), GENESIS_HASH)
        assert record.seq == 1

    def test_each_record_links_to_its_predecessor(self):
        journal = filled_journal()
        records = journal.records()
        assert [r.seq for r in records] == [1, 2, 3, 4]
        for previous, record in zip(records, records[1:]):
            assert record.prev_hash == previous.hash

    def test_intact_chain_verifies(self):
        assert filled_journal().verify_chain() == (True, None)
        assert AuditJournal().verify_chain() == (True, None)

    def test_unknown_status_rejected(self):
        with pytest.raises(ReproError, match="unknown journal status"):
            AuditJournal().append("epi", "fp", "maybe")


class TestCumulativeDisclosure:
    def test_answered_poses_compound(self):
        journal = filled_journal()
        # 1 − (1 − 0.3)(1 − 0.1) = 0.37
        assert journal.cumulative_loss("epi") == pytest.approx(0.37)
        assert journal.cumulative_loss("bob") == pytest.approx(0.5)
        assert journal.cumulative_loss("nobody") == 0.0
        assert journal.requesters() == {
            "epi": pytest.approx(0.37), "bob": pytest.approx(0.5),
        }

    def test_refused_pose_carries_unchanged_cumulative(self):
        journal = filled_journal()
        refusal = journal.last()
        assert refusal.status == "refused"
        assert refusal.kind == "PrivacyViolation"
        assert refusal.cumulative_loss == pytest.approx(0.37)

    def test_record_filtering_and_last(self):
        journal = filled_journal()
        assert len(journal) == 4
        assert [r.fingerprint for r in journal.records("bob")] == ["fp-3"]
        assert journal.last().fingerprint == "fp-4"
        assert AuditJournal().last() is None


class TestTamperEvidence:
    @pytest.mark.parametrize("position", [0, 1, 2, 3])
    @pytest.mark.parametrize("field, value", [
        ("requester", "mallory"),
        ("aggregated_loss", 0.0),
        ("status", "answered"),
    ])
    def test_field_tamper_detected_at_first_bad_record(self, position,
                                                       field, value):
        records = [r.to_dict() for r in filled_journal().records()]
        if records[position][field] == value:
            pytest.skip("mutation is a no-op for this record")
        records[position][field] = value
        ok, bad_seq = verify_records(records)
        assert not ok
        assert bad_seq == position + 1

    def test_single_byte_tamper_in_serialized_journal_detected(self):
        journal = filled_journal()
        lines = journal.to_jsonl().splitlines()
        # flip one byte inside record 2's requester field: "epi" → "eqi"
        assert '"requester": "epi"' in lines[1]
        lines[1] = lines[1].replace('"requester": "epi"',
                                    '"requester": "eqi"', 1)
        tampered = [json.loads(line) for line in lines]
        assert verify_records(tampered) == (False, 2)

    def test_deleted_record_breaks_the_chain(self):
        records = [r.to_dict() for r in filled_journal().records()]
        del records[1]
        ok, bad_seq = verify_records(records)
        assert not ok
        assert bad_seq == 3  # the first survivor after the gap

    def test_reordered_records_break_the_chain(self):
        records = [r.to_dict() for r in filled_journal().records()]
        records[1], records[2] = records[2], records[1]
        ok, bad_seq = verify_records(records)
        assert not ok
        assert bad_seq == 3

    def test_missing_hash_fields_count_as_tampered(self):
        records = [r.to_dict() for r in filled_journal().records()]
        del records[0]["hash"]
        assert verify_records(records) == (False, 1)


class TestSerialization:
    def test_jsonl_round_trip_reverifies(self):
        journal = filled_journal()
        replayed = [json.loads(line)
                    for line in journal.to_jsonl().splitlines()]
        assert verify_records(replayed) == (True, None)
        assert replayed[0]["per_source_loss"] == {"clinic": 0.2, "lab": 0.3}

    def test_dump_writes_verifiable_file(self, tmp_path):
        from repro.telemetry.report import load_jsonl

        path = tmp_path / "journal.jsonl"
        filled_journal().dump(path)
        assert verify_records(load_jsonl(path)) == (True, None)

    def test_append_only_no_clear(self):
        assert not hasattr(AuditJournal(), "clear")
