"""The observatory wired through PrivateIye: journal, events, differential."""

import json

import pytest

from repro import PrivateIye
from repro.errors import PrivacyViolation, ReproError
from repro.observatory import Observatory, resolve_observatory
from repro.relational import Table
from repro.telemetry.events import NOOP_EVENTS

POLICIES = """
VIEW clinic_private {
    PRIVATE //patient/ssn;
    PRIVATE //patient/hba1c FORM aggregate;
}
VIEW lab_private {
    PRIVATE //patient/ssn;
    PRIVATE //patient/hba1c FORM aggregate;
}

POLICY clinic DEFAULT deny {
    DENY //patient/ssn FOR *;
    ALLOW //patient/hba1c FOR public-health-research FORM aggregate MAXLOSS 0.6;
    ALLOW //patient/city FOR research;
}

POLICY lab DEFAULT deny {
    DENY //patient/ssn FOR *;
    ALLOW //patient/hba1c FOR public-health-research FORM aggregate MAXLOSS 0.6;
    ALLOW //patient/city FOR research;
}
"""

AGGREGATE = (
    "SELECT AVG(//patient/hba1c) AS mean "
    "PURPOSE outbreak-surveillance MAXLOSS 0.6"
)
FORBIDDEN = "SELECT AVG(//patient/hba1c) PURPOSE marketing"
STATIC_REFUSAL = "SELECT //patient/ssn PURPOSE research"


def build_system(**kwargs):
    system = PrivateIye(**kwargs)
    system.load_policies(
        POLICIES,
        view_source={"clinic_private": "clinic", "lab_private": "lab"},
    )
    clinic_rows = [
        {"ssn": f"1-{i:03d}", "hba1c": 60.0 + i % 25,
         "city": ["pittsburgh", "butler"][i % 2]}
        for i in range(30)
    ]
    lab_rows = [
        {"ssn": f"2-{i:03d}", "hba1c": 65.0 + i % 20,
         "city": ["pittsburgh", "erie"][i % 2]}
        for i in range(20)
    ]
    system.add_relational_source(
        "clinic", Table.from_dicts("patients", clinic_rows)
    )
    system.add_relational_source(
        "lab", Table.from_dicts("patients", lab_rows)
    )
    return system


class TestJournalIntegration:
    def test_every_pose_is_journaled_answered_and_refused(self):
        system = build_system(telemetry=True, observatory=True)
        system.query(AGGREGATE, requester="epi")
        system.query(AGGREGATE, requester="epi")
        with pytest.raises(PrivacyViolation):
            system.query(FORBIDDEN, requester="advertiser")

        journal = system.audit_journal()
        assert len(journal) == 3
        first, second, third = journal.records()

        assert first.status == "answered"
        assert first.requester == "epi"
        assert isinstance(first.fingerprint, str) and first.fingerprint
        assert set(first.per_source_loss) == {"clinic", "lab"}
        assert first.aggregated_loss > 0.0

        # identical queries share a fingerprint; disclosure compounds
        assert second.fingerprint == first.fingerprint
        assert second.cumulative_loss == pytest.approx(
            1.0 - (1.0 - first.aggregated_loss) ** 2
        )

        assert third.status == "refused"
        assert third.kind == "PrivacyViolation"
        assert third.aggregated_loss == 0.0
        assert third.cumulative_loss == 0.0  # refusals disclose nothing

        assert journal.verify_chain() == (True, None)

    def test_static_refusal_is_journaled_too(self):
        system = build_system(telemetry=True, observatory=True)
        with pytest.raises(ReproError):
            system.query(STATIC_REFUSAL, requester="snoop")
        record = system.audit_journal().last()
        assert record.status == "refused"
        assert record.requester == "snoop"
        assert record.kind

    def test_events_narrate_the_pose_sequence(self):
        system = build_system(telemetry=True, observatory=True)
        system.query(AGGREGATE, requester="epi")
        with pytest.raises(PrivacyViolation):
            system.query(FORBIDDEN, requester="advertiser")
        names = [e.name for e in system.events_tail(50)]
        assert "pose.answered" in names
        assert "pose.refused" in names
        answered = system.telemetry.events.events(name="pose.answered")[0]
        assert answered.attributes["requester"] == "epi"
        assert answered.attributes["rows"] == 2
        assert answered.attributes["cumulative_loss"] == pytest.approx(
            system.audit_journal().cumulative_loss("epi")
        )

    def test_answered_aggregates_feed_the_snooper_ledger(self):
        system = build_system(telemetry=True, observatory=True)
        system.query(AGGREGATE, requester="epi")
        ledger = system.observatory.watch._knowledge["epi"]
        assert set(ledger.cells) == {("mean", "clinic"), ("mean", "lab")}
        assert system.observatory.alerts == []  # both cells were *released*

    def test_explain_report_carries_audit_and_events(self):
        system = build_system(telemetry=True, observatory=True)
        system.query(AGGREGATE, requester="epi")
        document = system.explain_last().to_dict()
        assert document["audit"]["status"] == "answered"
        assert document["audit"]["hash"]
        event_names = [e["name"] for e in document["events"]]
        assert "pose.answered" in event_names

        with pytest.raises(PrivacyViolation):
            system.query(FORBIDDEN, requester="advertiser")
        document = system.explain_last().to_dict()
        assert document["audit"]["status"] == "refused"
        assert any(e["name"] == "pose.refused" for e in document["events"])

    def test_observatory_report_shape(self):
        system = build_system(telemetry=True, observatory=True)
        system.query(AGGREGATE, requester="epi")
        report = system.observatory_report()
        assert report["journal"]["records"] == 1
        assert report["journal"]["chain_valid"] is True
        assert report["journal"]["first_bad_seq"] is None
        assert "epi" in report["journal"]["cumulative_loss"]
        assert report["snooper_watch"]["threshold"] == 5.0
        assert report["snooper_watch"]["alerts"] == []
        json.dumps(report)  # the whole report is JSON-serializable


class TestExplainRoundTrip:
    """ISSUE satellite: every section survives json.dumps → json.loads."""

    def pose_all_shapes(self):
        system = build_system(telemetry=True, observatory=True)
        documents = {}
        system.query(AGGREGATE, requester="epi")
        documents["answered"] = system.explain_last().to_dict()
        system.query(AGGREGATE, requester="epi")
        documents["cache_hit"] = system.explain_last().to_dict()
        assert documents["cache_hit"]["warehouse"]["from_cache"] is True
        with pytest.raises(PrivacyViolation):
            system.query(FORBIDDEN, requester="advertiser")
        documents["refused"] = system.explain_last().to_dict()
        with pytest.raises(ReproError):
            system.query(STATIC_REFUSAL, requester="snoop")
        documents["static_refusal"] = system.explain_last().to_dict()
        return documents

    def test_every_report_shape_round_trips(self):
        for shape, document in self.pose_all_shapes().items():
            replayed = json.loads(json.dumps(document))
            assert replayed == document, f"{shape} report mangled by JSON"
            # the observability PR's sections are present in every shape
            assert "audit" in document, shape
            assert "events" in document, shape
            assert document["audit"] is not None, shape


class TestDifferential:
    def test_pose_results_identical_observatory_on_vs_off(self):
        """The observatory must never perturb answers — byte for byte."""
        plain = build_system()
        observed = build_system(telemetry=True, observatory=True,
                                events=True)
        queries = [
            (AGGREGATE, "epi"),
            ("SELECT //patient/city PURPOSE research", "bob"),
            (AGGREGATE, "epi"),  # warehouse hit on both sides
        ]
        for text, requester in queries:
            a = plain.query(text, requester=requester)
            b = observed.query(text, requester=requester)
            assert (json.dumps(a.rows, sort_keys=True, default=repr)
                    == json.dumps(b.rows, sort_keys=True, default=repr))
            assert a.aggregated_loss == b.aggregated_loss
            assert a.per_source_loss == b.per_source_loss
        # and the observed side really was observing
        assert len(observed.audit_journal()) == len(queries)


class TestDisabledAndResolution:
    def test_disabled_by_default(self):
        system = build_system()
        assert system.observatory is None
        assert system.engine.observatory is None
        assert system.audit_journal() is None
        assert system.observatory_report() == {}

    def test_journal_works_without_telemetry(self):
        system = build_system(observatory=True)
        system.query(AGGREGATE, requester="epi")
        assert len(system.audit_journal()) == 1
        assert system.observatory.events is NOOP_EVENTS
        assert system.events_tail() == []

    def test_shared_observatory_pools_the_journal(self):
        shared = Observatory()
        build_system(observatory=shared).query(AGGREGATE, requester="epi")
        build_system(observatory=shared).query(AGGREGATE, requester="epi")
        assert len(shared.journal) == 2
        assert shared.journal.verify_chain() == (True, None)

    def test_resolution_rejects_junk(self):
        assert resolve_observatory(None) is None
        assert resolve_observatory(False) is None
        assert isinstance(resolve_observatory(True), Observatory)
        with pytest.raises(ReproError, match="observatory must be"):
            PrivateIye(observatory="yes")
