"""SnooperWatch: replaying Figure 1 against the requesters, live."""

import pytest

from repro.data import FIGURE1
from repro.errors import ReproError
from repro.observatory import SnooperWatch
from repro.telemetry.events import EventLog


def feed_full_figure1(watch, requester="HMO1"):
    """Everything Figure 1(c) says the snooping HMO1 knows."""
    for measure, value in zip(FIGURE1.measures, FIGURE1.hmo1_values):
        watch.note_cell(requester, measure, "HMO1", value)
    for measure, mean, std in zip(FIGURE1.measures, FIGURE1.row_means,
                                  FIGURE1.row_stds):
        watch.note_row_stat(requester, measure, mean, std=std,
                            over=FIGURE1.sources)
    for source, mean in zip(FIGURE1.sources, FIGURE1.source_means):
        watch.note_source_mean(requester, source, mean,
                               over=FIGURE1.measures)


class TestFigure1Replay:
    def test_full_knowledge_reproduces_the_paper_breach(self):
        watch = SnooperWatch(min_interval_width=5.0)
        feed_full_figure1(watch)
        alerts = watch.check("HMO1")
        assert 6 <= len(alerts) <= len(FIGURE1.paper_intervals)
        breached = {(a.measure, a.source) for a in alerts}
        # every breach is one of the paper's Figure 1(d) cells, and the
        # sharpest inference the paper reports is certainly among them
        assert breached <= set(FIGURE1.paper_intervals)
        assert ("HbA1c", "HMO2") in breached
        assert all(a.source != "HMO1" for a in alerts)
        for alert in alerts:
            assert alert.width < 5.0
            assert alert.width == pytest.approx(alert.high - alert.low)

    def test_staged_release_sequence_alerts_before_the_final_query(self):
        """The ISSUE's pinned scenario: the watch must fire *mid-sequence*.

        Releases arrive one at a time, as separate interactions; the
        breach completes only at the last source mean, but the interval
        already collapses once the row sigmas land — three releases
        early.
        """
        watch = SnooperWatch(min_interval_width=5.0)
        requester = "HMO1"

        # release 1: the requester's own column — nothing inferable yet
        for measure, value in zip(FIGURE1.measures, FIGURE1.hmo1_values):
            watch.note_cell(requester, measure, "HMO1", value)
        assert watch.check(requester) == []

        # release 2: the published per-test means over all four HMOs
        for measure, mean in zip(FIGURE1.measures, FIGURE1.row_means):
            watch.note_row_stat(requester, measure, mean,
                                over=FIGURE1.sources)
        assert watch.check(requester) == []

        # release 3: the per-test standard deviations — ALERT, with the
        # final three releases still unpublished
        for measure, mean, std in zip(FIGURE1.measures, FIGURE1.row_means,
                                      FIGURE1.row_stds):
            watch.note_row_stat(requester, measure, mean, std=std,
                                over=FIGURE1.sources)
        mid_sequence = watch.check(requester)
        assert mid_sequence, "watch must alert before the sequence completes"

        # releases 4-6: the per-HMO means, one at a time — the alert
        # already on record predates every one of them
        first_alert_ts = mid_sequence[0].ts
        for source, mean in zip(FIGURE1.sources, FIGURE1.source_means):
            if source == "HMO1":
                continue
            watch.note_source_mean(requester, source, mean,
                                   over=FIGURE1.measures)
            watch.check(requester)
        assert watch.alerts[0].ts == first_alert_ts
        assert watch.alerts_for(requester)[0] is watch.alerts[0]

    def test_alerts_fire_once_per_cell(self):
        watch = SnooperWatch(min_interval_width=5.0)
        feed_full_figure1(watch)
        first = watch.check("HMO1")
        assert first
        assert watch.check("HMO1") == []  # deduplicated on re-replay
        assert len(watch.alerts) == len(first)


class TestMechanics:
    def test_check_cadence(self):
        watch = SnooperWatch(check_every=3)
        calls = []
        watch.check = lambda requester: calls.append(requester) or []
        for _ in range(7):
            watch.note_pose("epi")
        assert len(calls) == 2  # poses 3 and 6

    def test_alert_emits_event(self):
        watch = SnooperWatch(min_interval_width=5.0)
        watch.events = EventLog()
        feed_full_figure1(watch)
        alerts = watch.check("HMO1")
        events = watch.events.events(name="snooperwatch.alert")
        assert len(events) == len(alerts)
        attributes = events[0].attributes
        assert attributes["requester"] == "HMO1"
        assert attributes["width"] < attributes["threshold"]

    def test_inconsistent_knowledge_is_infeasible_not_fatal(self):
        watch = SnooperWatch()
        watch.events = EventLog()
        # the requester "knows" a cell the published row mean contradicts
        watch.note_cell("epi", "m", "s1", 100.0)
        watch.note_row_stat("epi", "m", 10.0, over=("s1", "s2"))
        assert watch.check("epi") == []
        events = watch.events.events(name="snooperwatch.infeasible")
        assert len(events) == 1
        assert "inconsistent" in events[0].attributes["reason"]

    def test_underdetermined_ledgers_pose_no_problem(self):
        watch = SnooperWatch()
        assert watch.check("nobody") == []          # never seen
        watch.note_cell("epi", "m", "s1", 50.0)
        assert watch.check("epi") == []             # one column, no stats

    def test_mismatched_span_statistics_are_held_back(self):
        """A row mean over four sources must not constrain a 2-column view."""
        watch = SnooperWatch()
        watch.note_cell("epi", "m", "s1", 50.0)
        watch.note_row_stat("epi", "m", 50.0, over=("s1", "s2", "s3", "s4"))
        # only s1+s2 materialized so far: the 4-source mean must not be
        # applied to a 2-column matrix, so there is nothing to solve
        assert watch._constraints(watch._knowledge["epi"]) is not None
        # ...the span widened the matrix to all four columns instead
        assert watch._knowledge["epi"].sources == ["s1", "s2", "s3", "s4"]

    def test_constructor_validation(self):
        with pytest.raises(ReproError, match="min_interval_width"):
            SnooperWatch(min_interval_width=0)
        with pytest.raises(ReproError, match="check_every"):
            SnooperWatch(check_every=0)
