"""Unit tests for l-diversity-aware full-domain generalization."""

import pytest

from repro.anonymity import (
    FullDomainGeneralizer,
    distinct_l_diversity,
    interval_hierarchy,
    is_k_anonymous,
)
from repro.errors import ReproError


def generalizer():
    return FullDomainGeneralizer([interval_hierarchy("age", [5, 10, 20])])


def records():
    return [
        {"age": 31, "disease": "flu"},
        {"age": 33, "disease": "flu"},
        {"age": 36, "disease": "hiv"},
        {"age": 38, "disease": "flu"},
        {"age": 61, "disease": "cancer"},
        {"age": 63, "disease": "flu"},
        {"age": 66, "disease": "hiv"},
        {"age": 68, "disease": "cancer"},
    ]


class TestDiverseSearch:
    def test_result_is_k_anonymous_and_l_diverse(self):
        result = generalizer().anonymize(
            records(), k=2, l=2, sensitive="disease"
        )
        assert is_k_anonymous(result.records, ["age"], 2)
        assert distinct_l_diversity(result.records, ["age"], "disease", 2)

    def test_diversity_can_force_higher_node(self):
        # At age bands of 5, the [30-35) class holds only 'flu' — k=2 alone
        # accepts it, l=2 must generalize further (or suppress).
        plain = generalizer().anonymize(records(), k=2)
        diverse = generalizer().anonymize(
            records(), k=2, l=2, sensitive="disease"
        )
        assert sum(diverse.node) >= sum(plain.node)

    def test_suppression_allowance_counts_undiverse_classes(self):
        result = generalizer().anonymize(
            records(), k=2, l=3, sensitive="disease", max_suppressed=8
        )
        assert distinct_l_diversity(result.records, ["age"], "disease", 3)

    def test_impossible_diversity_raises(self):
        uniform = [{"age": 30 + i, "disease": "flu"} for i in range(6)]
        with pytest.raises(ReproError, match="2-diversity"):
            generalizer().anonymize(uniform, k=2, l=2, sensitive="disease")

    def test_l_without_sensitive_rejected(self):
        with pytest.raises(ReproError):
            generalizer().anonymize(records(), k=2, l=2)
        with pytest.raises(ReproError):
            generalizer().anonymize(records(), k=2, sensitive="disease")
        with pytest.raises(ReproError):
            generalizer().anonymize(records(), k=2, l=0, sensitive="disease")

    def test_satisfying_nodes_respect_diversity(self):
        nodes_plain = set(generalizer().satisfying_nodes(records(), k=2))
        nodes_diverse = set(
            generalizer().satisfying_nodes(
                records(), k=2, l=2, sensitive="disease"
            )
        )
        assert nodes_diverse <= nodes_plain
