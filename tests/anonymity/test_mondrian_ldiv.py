"""Unit tests for Mondrian partitioning and l-diversity."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.anonymity import (
    distinct_l_diversity,
    entropy_l_diversity,
    is_k_anonymous,
    mondrian_partition,
)
from repro.anonymity.ldiversity import measured_l
from repro.anonymity.mondrian import anonymized_records
from repro.errors import ReproError


def numeric_records(n=40, seed=1):
    rng = random.Random(seed)
    return [
        {"age": rng.randint(20, 80), "income": rng.randint(10, 200) * 1000,
         "disease": rng.choice(["flu", "hiv", "cancer", "diabetes"])}
        for _ in range(n)
    ]


class TestMondrian:
    def test_partitions_respect_k(self):
        partitions = mondrian_partition(numeric_records(), ["age", "income"], k=5)
        assert all(len(members) >= 5 for _ranges, members in partitions)

    def test_partitions_cover_all_records(self):
        records = numeric_records()
        partitions = mondrian_partition(records, ["age", "income"], k=4)
        assert sum(len(m) for _r, m in partitions) == len(records)

    def test_released_records_k_anonymous(self):
        records = numeric_records()
        partitions = mondrian_partition(records, ["age", "income"], k=5)
        released = anonymized_records(partitions, ["age", "income"])
        assert is_k_anonymous(released, ["age", "income"], 5)

    def test_ranges_bound_members(self):
        partitions = mondrian_partition(numeric_records(), ["age"], k=3)
        for ranges, members in partitions:
            low, high = ranges["age"]
            assert all(low <= m["age"] <= high for m in members)

    def test_more_partitions_for_smaller_k(self):
        records = numeric_records(60)
        few = mondrian_partition(records, ["age"], k=20)
        many = mondrian_partition(records, ["age"], k=3)
        assert len(many) > len(few)

    def test_point_partition_released_as_scalar(self):
        records = [{"age": 30}] * 4
        partitions = mondrian_partition(records, ["age"], k=2)
        released = anonymized_records(partitions, ["age"])
        assert all(r["age"] == 30 for r in released)

    def test_too_few_records_rejected(self):
        with pytest.raises(ReproError):
            mondrian_partition([{"age": 1}], ["age"], k=2)

    def test_non_numeric_qi_rejected(self):
        with pytest.raises(ReproError, match="numeric"):
            mondrian_partition([{"age": "old"}] * 3, ["age"], k=2)

    def test_no_qi_rejected(self):
        with pytest.raises(ReproError):
            mondrian_partition(numeric_records(), [], k=2)


class TestLDiversity:
    def homogeneous(self):
        return [
            {"zip": "a", "disease": "flu"},
            {"zip": "a", "disease": "flu"},
            {"zip": "b", "disease": "flu"},
            {"zip": "b", "disease": "hiv"},
        ]

    def test_distinct_l(self):
        assert distinct_l_diversity(self.homogeneous(), ["zip"], "disease", 1)
        assert not distinct_l_diversity(self.homogeneous(), ["zip"], "disease", 2)

    def test_measured_l(self):
        assert measured_l(self.homogeneous(), ["zip"], "disease") == 1
        assert measured_l([], ["zip"], "disease") == 0

    def test_entropy_l(self):
        balanced = [
            {"zip": "a", "disease": "flu"},
            {"zip": "a", "disease": "hiv"},
        ]
        assert entropy_l_diversity(balanced, ["zip"], "disease", 2)
        skewed = balanced + [{"zip": "a", "disease": "flu"}] * 8
        assert not entropy_l_diversity(skewed, ["zip"], "disease", 2)
        # but it still has 2 distinct values
        assert distinct_l_diversity(skewed, ["zip"], "disease", 2)

    def test_empty_records_diverse(self):
        assert distinct_l_diversity([], ["zip"], "disease", 3)
        assert entropy_l_diversity([], ["zip"], "disease", 3)

    def test_bad_l_rejected(self):
        with pytest.raises(ReproError):
            distinct_l_diversity([], ["zip"], "disease", 0)


@settings(max_examples=20, deadline=None)
@given(
    st.lists(
        st.fixed_dictionaries(
            {"age": st.integers(min_value=0, max_value=100),
             "income": st.integers(min_value=0, max_value=10**6)}
        ),
        min_size=6,
        max_size=40,
    ),
    st.integers(min_value=2, max_value=5),
)
def test_mondrian_k_property(rows, k):
    """Every Mondrian partition meets k and covers all records."""
    if len(rows) < k:
        return
    partitions = mondrian_partition(rows, ["age", "income"], k)
    assert all(len(m) >= k for _r, m in partitions)
    assert sum(len(m) for _r, m in partitions) == len(rows)
