"""Unit tests for hierarchies, the lattice, and k-anonymity search."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.anonymity import (
    FullDomainGeneralizer,
    GeneralizationLattice,
    equivalence_classes,
    interval_hierarchy,
    is_k_anonymous,
    taxonomy_hierarchy,
)
from repro.anonymity.hierarchy import SUPPRESSED, GeneralizationHierarchy
from repro.anonymity.kanonymity import measured_k
from repro.errors import ReproError


def age_hierarchy():
    return interval_hierarchy("age", [5, 10, 20])


def zip_hierarchy():
    return taxonomy_hierarchy(
        "zip",
        {
            "15213": "152**",
            "15217": "152**",
            "15090": "150**",
            "152**": "15***",
            "150**": "15***",
        },
    )


def records():
    return [
        {"age": 34, "zip": "15213", "disease": "flu"},
        {"age": 36, "zip": "15217", "disease": "flu"},
        {"age": 33, "zip": "15217", "disease": "hiv"},
        {"age": 62, "zip": "15090", "disease": "cancer"},
        {"age": 64, "zip": "15090", "disease": "flu"},
        {"age": 67, "zip": "15090", "disease": "hiv"},
    ]


class TestHierarchies:
    def test_interval_levels(self):
        h = age_hierarchy()
        assert h.height == 4  # identity + 3 widths + '*'
        assert h.generalize(34, 0) == 34
        assert h.generalize(34, 1) == "[30-35)"
        assert h.generalize(34, 2) == "[30-40)"
        assert h.generalize(34, 3) == "[20-40)"
        assert h.generalize(34, 4) == SUPPRESSED

    def test_interval_validation(self):
        with pytest.raises(ReproError):
            interval_hierarchy("a", [])
        with pytest.raises(ReproError):
            interval_hierarchy("a", [10, 5])
        with pytest.raises(ReproError):
            interval_hierarchy("a", [0])

    def test_level_out_of_range(self):
        with pytest.raises(ReproError):
            age_hierarchy().generalize(34, 9)

    def test_none_suppressed(self):
        assert age_hierarchy().generalize(None, 1) == SUPPRESSED

    def test_taxonomy_levels(self):
        h = zip_hierarchy()
        assert h.generalize("15213", 1) == "152**"
        assert h.generalize("15213", 2) == "15***"
        assert h.generalize("15213", h.height) == SUPPRESSED

    def test_taxonomy_stays_at_root(self):
        h = zip_hierarchy()
        assert h.generalize("15090", 2) == "15***"
        # one more climb stays at the root
        assert h.generalize("15090", h.height - 1) == "15***"

    def test_taxonomy_cycle_detected(self):
        with pytest.raises(ReproError, match="cycle"):
            taxonomy_hierarchy("x", {"a": "b", "b": "a"})

    def test_custom_hierarchy(self):
        h = GeneralizationHierarchy("sex", [lambda v: "person"])
        assert h.generalize("m", 1) == "person"


class TestLattice:
    def lattice(self):
        return GeneralizationLattice([age_hierarchy(), zip_hierarchy()])

    def test_bottom_top(self):
        lattice = self.lattice()
        assert lattice.bottom == (0, 0)
        assert lattice.top == (4, 3)

    def test_nodes_at_height(self):
        nodes = self.lattice().nodes_at_height(1)
        assert nodes == [(0, 1), (1, 0)]

    def test_all_nodes_monotone_height(self):
        heights = [sum(n) for n in self.lattice().all_nodes()]
        assert heights == sorted(heights)

    def test_successors(self):
        lattice = self.lattice()
        assert lattice.successors((4, 2)) == [(4, 3)]
        assert lattice.successors((4, 3)) == []

    def test_generalize_record(self):
        lattice = self.lattice()
        out = lattice.generalize_record(records()[0], (1, 1))
        assert out == {"age": "[30-35)", "zip": "152**", "disease": "flu"}

    def test_invalid_node_rejected(self):
        with pytest.raises(ReproError):
            self.lattice().generalize_record(records()[0], (9, 9))
        with pytest.raises(ReproError):
            self.lattice().successors((1,))


class TestKAnonymity:
    def test_raw_records_not_2_anonymous(self):
        assert not is_k_anonymous(records(), ["age", "zip"], 2)

    def test_equivalence_classes(self):
        classes = equivalence_classes(records(), ["zip"])
        assert len(classes[("15090",)]) == 3

    def test_measured_k(self):
        assert measured_k(records(), ["zip"]) == 1  # 15213 occurs once
        assert measured_k([], ["zip"]) == 0

    def test_empty_is_k_anonymous(self):
        assert is_k_anonymous([], ["age"], 5)

    def test_bad_k_rejected(self):
        with pytest.raises(ReproError):
            is_k_anonymous(records(), ["age"], 0)

    def test_generalizer_finds_minimal_node(self):
        generalizer = FullDomainGeneralizer([age_hierarchy(), zip_hierarchy()])
        result = generalizer.anonymize(records(), k=2)
        assert is_k_anonymous(result.records, ["age", "zip"], 2)
        assert result.suppressed == []
        # Verify minimality: no node of smaller height satisfies 2-anonymity.
        height = sum(result.node)
        for node in generalizer.lattice.all_nodes():
            if sum(node) < height:
                released = generalizer.lattice.generalize_records(records(), node)
                assert not is_k_anonymous(released, ["age", "zip"], 2)

    def test_suppression_allowance_lowers_height(self):
        generalizer = FullDomainGeneralizer([age_hierarchy(), zip_hierarchy()])
        strict = generalizer.anonymize(records(), k=3)
        relaxed = generalizer.anonymize(records(), k=3, max_suppressed=2)
        assert sum(relaxed.node) <= sum(strict.node)

    def test_k_larger_than_population_fails_without_allowance(self):
        generalizer = FullDomainGeneralizer([age_hierarchy()])
        with pytest.raises(ReproError):
            generalizer.anonymize(records(), k=10)

    def test_satisfying_nodes_monotone(self):
        # If a node satisfies k-anonymity, so does every successor.
        generalizer = FullDomainGeneralizer([age_hierarchy(), zip_hierarchy()])
        satisfying = set(generalizer.satisfying_nodes(records(), k=2))
        for node in satisfying:
            for successor in generalizer.lattice.successors(node):
                assert successor in satisfying


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.fixed_dictionaries(
            {"age": st.integers(min_value=0, max_value=99),
             "zip": st.sampled_from(["15213", "15217", "15090"])}
        ),
        min_size=2,
        max_size=25,
    ),
    st.integers(min_value=1, max_value=3),
)
def test_anonymize_always_satisfies_k_property(rows, k):
    """Whatever the data, the search result is k-anonymous."""
    generalizer = FullDomainGeneralizer([age_hierarchy(), zip_hierarchy()])
    if len(rows) < k:
        return
    result = generalizer.anonymize(rows, k=k, max_suppressed=len(rows) - k)
    assert is_k_anonymous(result.records, ["age", "zip"], k)
