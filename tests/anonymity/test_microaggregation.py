"""Unit tests for MDAV microaggregation."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.anonymity import is_k_anonymous, mdav_microaggregate, sse_information_loss
from repro.errors import ReproError


def records(n=60, seed=4):
    rng = random.Random(seed)
    return [
        {"age": rng.randint(20, 80), "income": rng.uniform(10, 200),
         "disease": rng.choice(["flu", "hiv"])}
        for _ in range(n)
    ]


class TestMdav:
    def test_group_sizes_between_k_and_2k_minus_1(self):
        _released, groups = mdav_microaggregate(records(), ["age", "income"], 5)
        for group in groups:
            assert 5 <= len(group) <= 9

    def test_groups_partition_everything(self):
        rows = records()
        _released, groups = mdav_microaggregate(rows, ["age"], 4)
        flat = sorted(i for g in groups for i in g)
        assert flat == list(range(len(rows)))

    def test_released_is_k_anonymous(self):
        rows = records()
        released, _groups = mdav_microaggregate(rows, ["age", "income"], 5)
        assert is_k_anonymous(released, ["age", "income"], 5)

    def test_group_members_share_centroid(self):
        rows = records()
        released, groups = mdav_microaggregate(rows, ["age"], 3)
        for group in groups:
            values = {released[i]["age"] for i in group}
            assert len(values) == 1
            truth = sum(rows[i]["age"] for i in group) / len(group)
            assert values.pop() == pytest.approx(truth)

    def test_non_qi_attributes_untouched(self):
        rows = records()
        released, _groups = mdav_microaggregate(rows, ["age"], 3)
        assert [r["disease"] for r in released] == [r["disease"] for r in rows]

    def test_means_preserved_exactly(self):
        rows = records()
        released, _groups = mdav_microaggregate(rows, ["income"], 5)
        original_mean = sum(r["income"] for r in rows) / len(rows)
        released_mean = sum(r["income"] for r in released) / len(rows)
        assert released_mean == pytest.approx(original_mean)

    def test_loss_grows_with_k(self):
        rows = records(80)
        losses = []
        for k in (2, 5, 10, 20):
            released, _g = mdav_microaggregate(rows, ["age", "income"], k)
            losses.append(sse_information_loss(rows, released, ["age", "income"]))
        assert losses == sorted(losses)
        assert 0.0 <= losses[0] <= losses[-1] <= 1.0

    def test_validation(self):
        with pytest.raises(ReproError):
            mdav_microaggregate(records(3), ["age"], 5)
        with pytest.raises(ReproError):
            mdav_microaggregate(records(), [], 2)
        with pytest.raises(ReproError):
            mdav_microaggregate([{"age": "old"}] * 5, ["age"], 2)
        with pytest.raises(ReproError):
            mdav_microaggregate(records(), ["age"], 0)

    def test_loss_validation(self):
        with pytest.raises(ReproError):
            sse_information_loss([], [], ["age"])
        with pytest.raises(ReproError):
            sse_information_loss([{"age": 1}], [], ["age"])

    def test_constant_column_zero_loss(self):
        rows = [{"age": 50} for _ in range(6)]
        released, _g = mdav_microaggregate(rows, ["age"], 3)
        assert sse_information_loss(rows, released, ["age"]) == 0.0


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.fixed_dictionaries({
            "x": st.integers(min_value=0, max_value=1000),
            "y": st.integers(min_value=-100, max_value=100),
        }),
        min_size=4,
        max_size=40,
    ),
    st.integers(min_value=2, max_value=4),
)
def test_mdav_invariants_property(rows, k):
    """Partition covers all records; every group ≥ k; release k-anonymous."""
    if len(rows) < k:
        return
    released, groups = mdav_microaggregate(rows, ["x", "y"], k)
    assert sorted(i for g in groups for i in g) == list(range(len(rows)))
    assert all(len(g) >= k for g in groups)
    assert is_k_anonymous(released, ["x", "y"], k)
