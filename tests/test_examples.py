"""Smoke tests: every example script runs to completion.

Each example is executed in a subprocess (fresh interpreter, as a user
would run it) and its headline output lines are asserted, so the examples
cannot silently rot.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

EXPECTED_MARKERS = {
    "quickstart.py": ["mediated vocabulary", "refused:"],
    "clinical_integration.py": [
        "inferred intervals", "BLOCKED", "ReleaseDecision(SAFE)",
    ],
    "outbreak_surveillance.py": [
        "epidemic curves", "case fatality", "EMERGENCY",
    ],
    "private_linkage_demo.py": [
        "private set intersection", "Bloom linkage", "secure union",
    ],
    "policy_negotiation.py": [
        "ACCEPT", "REJECT", "CHOSEN:",
    ],
}


@pytest.mark.parametrize("script", sorted(EXPECTED_MARKERS))
def test_example_runs(script):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"example missing: {path}"
    completed = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    for marker in EXPECTED_MARKERS[script]:
        assert marker in completed.stdout, (
            f"{script} output lacks {marker!r}"
        )
