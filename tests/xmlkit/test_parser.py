"""Unit tests for the XML parser and serializer round-trip."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import XmlError
from repro.xmlkit import Element, element, parse_xml, serialize


class TestParsing:
    def test_simple_document(self):
        root = parse_xml("<a><b>hi</b></a>")
        assert root.tag == "a"
        assert root.find("b").text == "hi"

    def test_attributes_both_quote_styles(self):
        root = parse_xml("""<a x="1" y='2'/>""")
        assert root.attrs == {"x": "1", "y": "2"}

    def test_self_closing(self):
        root = parse_xml("<a><b/><c/></a>")
        assert [c.tag for c in root.child_elements()] == ["b", "c"]

    def test_xml_declaration_and_comments_skipped(self):
        doc = "<?xml version='1.0'?><!-- hi --><a><!-- in --><b/></a><!-- post -->"
        root = parse_xml(doc)
        assert root.find("b") is not None

    def test_processing_instruction_skipped(self):
        root = parse_xml("<a><?php echo ?><b/></a>")
        assert root.find("b") is not None

    def test_entities_decoded_in_text_and_attrs(self):
        root = parse_xml('<a x="&lt;&amp;&gt;">&quot;&apos;&#65;&#x42;</a>')
        assert root.attrs["x"] == "<&>"
        assert root.text == "\"'AB"

    def test_mismatched_tags_rejected(self):
        with pytest.raises(XmlError, match="mismatched"):
            parse_xml("<a><b></a></b>")

    def test_unterminated_element_rejected(self):
        with pytest.raises(XmlError):
            parse_xml("<a><b>")

    def test_trailing_content_rejected(self):
        with pytest.raises(XmlError, match="trailing"):
            parse_xml("<a/><b/>")

    def test_unknown_entity_rejected(self):
        with pytest.raises(XmlError, match="unknown entity"):
            parse_xml("<a>&nope;</a>")

    def test_unquoted_attribute_rejected(self):
        with pytest.raises(XmlError):
            parse_xml("<a x=1/>")

    def test_non_string_input_rejected(self):
        with pytest.raises(XmlError):
            parse_xml(b"<a/>")

    def test_error_reports_line_number(self):
        with pytest.raises(XmlError, match="line 3"):
            parse_xml("<a>\n<b>\n</a>")


class TestSerialization:
    def test_compact_round_trip(self):
        root = Element("a", {"k": 'va"l'})
        root.append(element("b", "x < y & z"))
        root.append(Element("c"))
        text = serialize(root)
        again = parse_xml(text)
        assert again.structurally_equal(root)

    def test_empty_element_serialized_self_closing(self):
        assert serialize(Element("a")) == "<a/>"

    def test_pretty_print_indents(self):
        root = Element("a", children=[Element("b", children=[element("c", "t")])])
        text = serialize(root, indent=2)
        assert "<a>\n  <b>\n    <c>t</c>\n  </b>\n</a>\n" == text

    def test_pretty_round_trip_structure(self):
        root = Element("a", children=[element("b", "hello"), Element("c")])
        assert parse_xml(serialize(root, indent=4)).structurally_equal(root)


_tag = st.from_regex(r"[a-z][a-z0-9_]{0,6}", fullmatch=True)
_text = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=20
)


def _tree(depth=0):
    children = st.lists(
        st.one_of(_text.filter(lambda t: t.strip()), st.deferred(lambda: _tree(depth + 1)))
        if depth < 2
        else _text.filter(lambda t: t.strip()),
        max_size=3,
    )
    return st.builds(
        lambda tag, attrs, kids: _build(tag, attrs, kids),
        _tag,
        st.dictionaries(_tag, _text, max_size=2),
        children,
    )


def _build(tag, attrs, kids):
    node = Element(tag, attrs)
    node.extend(kids)
    return node


@given(_tree())
def test_round_trip_property(root):
    """serialize → parse is the identity on structure."""
    assert parse_xml(serialize(root)).structurally_equal(root)
