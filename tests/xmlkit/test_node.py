"""Unit tests for the element tree."""

import pytest

from repro.errors import XmlError
from repro.xmlkit import Element, element, text_of


def sample_tree():
    root = Element("clinic")
    patient = root.append(Element("patient", {"id": "p1"}))
    patient.append(element("name", "Alice"))
    patient.append(element("dob", "1970-01-01"))
    tests = patient.append(Element("tests"))
    tests.append(element("test", "75", type="HbA1c"))
    tests.append(element("test", "56", type="Lipid"))
    return root


class TestConstruction:
    def test_element_requires_valid_tag(self):
        with pytest.raises(XmlError):
            Element("")
        with pytest.raises(XmlError):
            Element("1bad")
        with pytest.raises(XmlError):
            Element("has space")

    def test_children_must_be_element_or_str(self):
        root = Element("r")
        with pytest.raises(XmlError):
            root.append(42)

    def test_append_sets_parent(self):
        root = Element("r")
        child = root.append(Element("c"))
        assert child.parent is root

    def test_set_attribute_coerces_to_str(self):
        node = Element("n")
        node.set("count", 3)
        assert node.attrs["count"] == "3"

    def test_set_rejects_bad_attribute_name(self):
        node = Element("n")
        with pytest.raises(XmlError):
            node.set("bad name", "v")

    def test_element_helper_builds_text_and_attrs(self):
        node = element("dob", "1970-01-01", unit="year")
        assert node.text == "1970-01-01"
        assert node.attrs == {"unit": "year"}

    def test_extend_appends_all(self):
        node = Element("r")
        node.extend([Element("a"), "txt", Element("b")])
        assert [c.tag for c in node.child_elements()] == ["a", "b"]

    def test_remove_clears_parent(self):
        root = Element("r")
        child = root.append(Element("c"))
        root.remove(child)
        assert child.parent is None
        assert root.children == []


class TestNavigation:
    def test_find_returns_first_match(self):
        root = sample_tree()
        patient = root.find("patient")
        assert patient is not None
        assert patient.get("id") == "p1"

    def test_find_missing_returns_none(self):
        assert sample_tree().find("nope") is None

    def test_find_all(self):
        tests = sample_tree().find("patient").find("tests")
        assert len(tests.find_all("test")) == 2

    def test_iter_preorder(self):
        tags = [n.tag for n in sample_tree().iter()]
        assert tags == ["clinic", "patient", "name", "dob", "tests", "test", "test"]

    def test_text_property_is_direct_text_only(self):
        root = sample_tree()
        assert root.text == ""
        assert root.find("patient").find("name").text == "Alice"

    def test_text_of_collects_descendants(self):
        tests = sample_tree().find("patient").find("tests")
        assert text_of(tests) == "7556"

    def test_depth_and_path_tags(self):
        root = sample_tree()
        test = root.find("patient").find("tests").find("test")
        assert test.depth() == 3
        assert test.path_tags() == ["clinic", "patient", "tests", "test"]


class TestCopyEquality:
    def test_copy_is_deep_and_detached(self):
        root = sample_tree()
        clone = root.copy()
        assert clone.parent is None
        assert clone.structurally_equal(root)
        clone.find("patient").set("id", "p2")
        assert root.find("patient").get("id") == "p1"

    def test_structural_equality_ignores_whitespace_text(self):
        a = Element("r", children=[Element("c"), "  "])
        b = Element("r", children=[Element("c")])
        assert a.structurally_equal(b)

    def test_structural_inequality_on_attrs(self):
        a = Element("r", {"x": "1"})
        b = Element("r", {"x": "2"})
        assert not a.structurally_equal(b)

    def test_structural_inequality_on_text(self):
        a = element("r", "hello")
        b = element("r", "world")
        assert not a.structurally_equal(b)

    def test_adjacent_text_merged_for_equality(self):
        a = Element("r", children=["he", "llo"])
        b = Element("r", children=["hello"])
        assert a.structurally_equal(b)
