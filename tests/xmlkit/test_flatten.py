"""Unit tests for XML flattening (hierarchical → relational bridge)."""

import pytest

from repro.errors import XmlError
from repro.relational import ColumnType
from repro.xmlkit import parse_xml, table_from_xml, xml_from_table
from repro.xmlkit.flatten import validate_record_path

DOC = """
<clinic county="allegheny">
  <patient id="p1">
    <name>Alice</name>
    <age>61</age>
    <hba1c>75.5</hba1c>
    <consented>true</consented>
  </patient>
  <patient id="p2">
    <name>Bob</name>
    <age>70</age>
    <hba1c>82.0</hba1c>
    <consented>false</consented>
  </patient>
  <patient id="p3">
    <name>Cara</name>
    <age>55</age>
  </patient>
</clinic>
"""


class TestTableFromXml:
    def table(self):
        return table_from_xml(parse_xml(DOC), "//patient", "patients")

    def test_one_row_per_record(self):
        assert len(self.table()) == 3

    def test_columns_from_attrs_and_children(self):
        assert self.table().schema.column_names() == [
            "id", "name", "age", "hba1c", "consented",
        ]

    def test_types_inferred(self):
        schema = self.table().schema
        assert schema.column("age").type is ColumnType.INT
        assert schema.column("hba1c").type is ColumnType.FLOAT
        assert schema.column("consented").type is ColumnType.BOOL
        assert schema.column("name").type is ColumnType.TEXT

    def test_missing_children_become_null(self):
        rows = list(self.table().rows_as_dicts())
        assert rows[2]["hba1c"] is None
        assert rows[2]["consented"] is None

    def test_repeated_children_first_wins(self):
        document = parse_xml("<r><p><x>1</x><x>2</x></p></r>")
        table = table_from_xml(document, "//p")
        assert table.rows[0] == (1,)

    def test_empty_selection_rejected(self):
        with pytest.raises(XmlError, match="selects no elements"):
            table_from_xml(parse_xml(DOC), "//physician")

    def test_attribute_record_path_rejected(self):
        with pytest.raises(XmlError):
            table_from_xml(parse_xml(DOC), "//patient/@id")

    def test_validate_record_path(self):
        validate_record_path("//patient")
        with pytest.raises(XmlError):
            validate_record_path("//patient/@id")


class TestXmlFromTable:
    def test_round_trip(self):
        table = table_from_xml(parse_xml(DOC), "//patient", "patients")
        document = xml_from_table(table, root_tag="patients", record_tag="p")
        again = table_from_xml(document, "//p", "patients")
        assert list(again.rows_as_dicts()) == list(table.rows_as_dicts())

    def test_nulls_marked(self):
        table = table_from_xml(parse_xml(DOC), "//patient")
        document = xml_from_table(table)
        third = document.child_elements()[2]
        hba1c = third.find("hba1c")
        assert hba1c.get("null") == "true"
