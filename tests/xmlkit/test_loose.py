"""Unit tests for loose path matching (the //patient//dob problem)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import PathError
from repro.xmlkit import LoosePathMatcher, SynonymTable
from repro.xmlkit.loose import name_tokens, normalize_name, trigram_dice


class TestNormalization:
    def test_normalize_strips_separators(self):
        assert normalize_name("date_of-birth") == "dateofbirth"
        assert normalize_name("dateOfBirth") == "dateofbirth"

    def test_tokens_split_camel_and_snake(self):
        assert name_tokens("dateOfBirth") == ["date", "of", "birth"]
        assert name_tokens("date_of_birth") == ["date", "of", "birth"]
        assert name_tokens("HbA1c") == ["hb", "a1c"]

    def test_trigram_dice_identical(self):
        assert trigram_dice("patient", "patient") == 1.0

    def test_trigram_dice_disjoint(self):
        assert trigram_dice("abc", "xyz") == 0.0


class TestSynonymTable:
    def test_defaults_cover_dob(self):
        table = SynonymTable()
        assert table.are_synonyms("dob", "dateOfBirth")
        assert table.are_synonyms("dateOfBirth", "dob")

    def test_custom_entries_merge_groups(self):
        table = SynonymTable({"cholesterol": {"ldl", "lipid"}})
        assert table.are_synonyms("LDL", "lipid")

    def test_transitive_merge(self):
        table = SynonymTable(include_defaults=False)
        table.add("a", "b")
        table.add("b", "c")
        assert table.are_synonyms("a", "c")

    def test_group_of_contains_self(self):
        table = SynonymTable(include_defaults=False)
        assert table.group_of("solo") == {"solo"}

    def test_non_synonyms(self):
        assert not SynonymTable().are_synonyms("dob", "address")


class TestLooseMatching:
    def test_synonym_resolution(self):
        matcher = LoosePathMatcher()
        resolved = matcher.resolve("//patient//dateOfBirth", {"patient", "dob"})
        assert repr(resolved) == "//patient//dob"

    def test_exact_vocabulary_kept(self):
        matcher = LoosePathMatcher()
        resolved = matcher.resolve("//patient/dob", {"patient", "dob"})
        assert repr(resolved) == "//patient/dob"

    def test_similar_spelling_resolution(self):
        matcher = LoosePathMatcher()
        resolved = matcher.resolve(
            "//patients/diagnosis", {"patient", "diagnoses", "treatment"}
        )
        assert resolved.tag_names() == ["patient", "diagnoses"]

    def test_predicates_preserved(self):
        matcher = LoosePathMatcher()
        resolved = matcher.resolve(
            "//patient[@id='p1']/dateOfBirth", {"patient", "dob"}
        )
        assert repr(resolved) == "//patient[@id='p1']/dob"

    def test_wildcard_steps_kept(self):
        matcher = LoosePathMatcher()
        resolved = matcher.resolve("//patient/*", {"patient"})
        assert repr(resolved) == "//patient/*"

    def test_unresolvable_raises_with_score(self):
        matcher = LoosePathMatcher()
        with pytest.raises(PathError, match="zzqq"):
            matcher.resolve("//zzqq", {"patient", "dob"})

    def test_threshold_controls_acceptance(self):
        lax = LoosePathMatcher(threshold=0.05)
        resolved = lax.resolve("//dxy", {"dxz"})
        assert resolved.tag_names() == ["dxz"]
        strict = LoosePathMatcher(threshold=0.99)
        with pytest.raises(PathError):
            strict.resolve("//dxy", {"dxz"})

    def test_best_match_tie_break_deterministic(self):
        matcher = LoosePathMatcher(threshold=0.0)
        name, _score = matcher.best_match("ab", {"abx", "aby"})
        assert name == "abx"  # lexicographically first among equals

    def test_score_name_symmetric_enough(self):
        matcher = LoosePathMatcher()
        a = matcher.score_name("dateOfBirth", "birth_date")
        b = matcher.score_name("birth_date", "dateOfBirth")
        assert a == pytest.approx(b)
        assert a > 0.3


_name = st.from_regex(r"[a-z][a-zA-Z_]{0,11}", fullmatch=True)


@given(_name, _name)
def test_score_bounds_property(a, b):
    """Scores always lie in [0, 1] and self-similarity is 1."""
    matcher = LoosePathMatcher()
    score = matcher.score_name(a, b)
    assert 0.0 <= score <= 1.0
    assert matcher.score_name(a, a) == 1.0
