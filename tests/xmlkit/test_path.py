"""Unit tests for the XPath-subset evaluator."""

import pytest

from repro.errors import PathError
from repro.xmlkit import Element, element, evaluate_path, parse_path, text_of


def clinic():
    root = Element("clinic", {"county": "allegheny"})
    for pid, name, dob, hba1c in [
        ("p1", "Alice", "1970-01-01", "75"),
        ("p2", "Bob", "1980-02-02", "83"),
        ("p3", "Cara", "1990-03-03", "91"),
    ]:
        patient = root.append(Element("patient", {"id": pid}))
        patient.append(element("name", name))
        record = patient.append(Element("record"))
        record.append(element("dob", dob))
        record.append(element("test", hba1c, type="HbA1c"))
    return root


class TestParsing:
    def test_parse_rejects_relative_path(self):
        with pytest.raises(PathError):
            parse_path("patient/dob")

    def test_parse_rejects_empty(self):
        with pytest.raises(PathError):
            parse_path("   ")

    def test_parse_rejects_interior_attribute_step(self):
        with pytest.raises(PathError):
            parse_path("/a/@b/c")

    def test_parse_rejects_unbalanced_bracket(self):
        with pytest.raises(PathError):
            parse_path("/a[@x='1'")

    def test_parse_rejects_bad_literal(self):
        with pytest.raises(PathError):
            parse_path("/a[@x=unquoted]")

    def test_repr_round_trips(self):
        text = "//patient[@id='p1']/record/test[type='HbA1c']"
        assert repr(parse_path(text)) == text

    def test_equality(self):
        assert parse_path("//a/b") == parse_path("//a/b")
        assert parse_path("//a/b") != parse_path("/a/b")


class TestEvaluation:
    def test_absolute_child_path(self):
        names = evaluate_path("/clinic/patient/name", clinic())
        assert [text_of(n) for n in names] == ["Alice", "Bob", "Cara"]

    def test_root_tag_must_match(self):
        assert evaluate_path("/hospital/patient", clinic()) == []

    def test_descendant_axis(self):
        dobs = evaluate_path("//dob", clinic())
        assert len(dobs) == 3

    def test_descendant_then_child(self):
        tests = evaluate_path("//record/test", clinic())
        assert len(tests) == 3

    def test_descendant_within_descendant(self):
        assert len(evaluate_path("//patient//test", clinic())) == 3

    def test_wildcard(self):
        children = evaluate_path("/clinic/*", clinic())
        assert all(c.tag == "patient" for c in children)

    def test_attribute_selection(self):
        ids = evaluate_path("//patient/@id", clinic())
        assert ids == ["p1", "p2", "p3"]

    def test_attribute_wildcard(self):
        values = evaluate_path("/clinic/@*", clinic())
        assert values == ["allegheny"]

    def test_attribute_predicate(self):
        found = evaluate_path("//patient[@id='p2']/name", clinic())
        assert [text_of(n) for n in found] == ["Bob"]

    def test_child_value_predicate(self):
        found = evaluate_path("//patient[name='Cara']", clinic())
        assert [n.get("id") for n in found] == ["p3"]

    def test_numeric_comparison_predicate(self):
        found = evaluate_path("//record[test>80]", clinic())
        assert len(found) == 2

    def test_numeric_le_predicate(self):
        found = evaluate_path("//record[test<=83]", clinic())
        assert len(found) == 2

    def test_not_equal_predicate(self):
        found = evaluate_path("//patient[@id!='p1']", clinic())
        assert [n.get("id") for n in found] == ["p2", "p3"]

    def test_positional_predicate(self):
        found = evaluate_path("/clinic/patient[2]", clinic())
        assert [n.get("id") for n in found] == ["p2"]

    def test_positional_out_of_range(self):
        assert evaluate_path("/clinic/patient[9]", clinic()) == []

    def test_existence_predicates(self):
        assert len(evaluate_path("//patient[@id]", clinic())) == 3
        assert len(evaluate_path("//patient[record]", clinic())) == 3
        assert evaluate_path("//patient[@missing]", clinic()) == []
        assert evaluate_path("//patient[missing]", clinic()) == []

    def test_chained_predicates(self):
        found = evaluate_path("//patient[@id][name='Alice']", clinic())
        assert len(found) == 1

    def test_attribute_comparison_on_test_type(self):
        found = evaluate_path("//test[@type='HbA1c']", clinic())
        assert len(found) == 3

    def test_results_deduplicated(self):
        # //patient//test and //record//test can both reach the same node;
        # a single path never yields duplicates even with // chains.
        root = clinic()
        found = evaluate_path("//clinic//test", root)
        assert len(found) == len({id(n) for n in found})

    def test_evaluate_requires_element_root(self):
        with pytest.raises(PathError):
            evaluate_path("/a", "not an element")

    def test_string_comparison_falls_back_lexicographic(self):
        found = evaluate_path("//patient[name<'B']", clinic())
        assert [n.get("id") for n in found] == ["p1"]
