"""The structured event log: ring, filters, sink backpressure."""

import json
import threading

import pytest

from repro.errors import ReproError
from repro.telemetry.events import (
    NOOP_EVENTS,
    EventLog,
    JsonlSink,
    NoopEventLog,
    resolve_events,
)


class RecordingSink:
    def __init__(self):
        self.records = []
        self.dropped = 0
        self.closed = False

    def offer(self, record):
        self.records.append(record)
        return True

    def close(self):
        self.closed = True


class TestEventLog:
    def test_emit_stamps_sequence_and_timestamp(self):
        log = EventLog(clock=lambda: 42.0)
        event = log.emit("pose.answered", requester="epi", rows=2)
        assert event.seq == 1
        assert event.ts == 42.0
        assert event.attributes == {"requester": "epi", "rows": 2}
        assert event.to_dict() == {
            "seq": 1, "name": "pose.answered", "ts": 42.0,
            "attributes": {"requester": "epi", "rows": 2},
        }
        assert log.enabled

    def test_ring_is_bounded_but_sequence_is_not(self):
        log = EventLog(max_events=3)
        for i in range(10):
            log.emit("tick", i=i)
        assert len(log) == 3
        assert [e.attributes["i"] for e in log.events()] == [7, 8, 9]
        assert log.mark() == 10
        # displacement is not loss — only sink backpressure counts
        assert log.dropped_events == 0
        with pytest.raises(ReproError, match="max_events"):
            EventLog(max_events=0)

    def test_name_filter_matches_exact_and_dotted_prefix(self):
        log = EventLog()
        log.emit("cache.requester_epoch")
        log.emit("cache.hit")
        log.emit("cachet")  # not a dotted child of "cache"
        log.emit("pose.answered")
        assert [e.name for e in log.events(name="cache")] == [
            "cache.requester_epoch", "cache.hit",
        ]
        assert [e.name for e in log.events(name="cache.hit")] == ["cache.hit"]

    def test_requester_filter(self):
        log = EventLog()
        log.emit("pose.answered", requester="epi")
        log.emit("pose.answered", requester="bob")
        log.emit("warehouse.epoch_invalidation")  # no requester at all
        assert len(log.events(requester="epi")) == 1
        assert log.events(requester="nobody") == []

    def test_mark_and_since_window_one_pose(self):
        log = EventLog()
        log.emit("before")
        mark = log.mark()
        log.emit("during.1")
        log.emit("during.2")
        assert [e.name for e in log.since(mark)] == ["during.1", "during.2"]
        assert log.since(log.mark()) == []

    def test_tail_and_clear(self):
        log = EventLog()
        for i in range(5):
            log.emit("tick", i=i)
        assert [e.attributes["i"] for e in log.tail(2)] == [3, 4]
        log.clear()
        assert len(log) == 0
        assert log.emit("next").seq == 6  # sequence keeps advancing

    def test_emit_offers_every_event_to_the_sink(self):
        sink = RecordingSink()
        log = EventLog(sink=sink)
        log.emit("one", a=1)
        log.emit("two")
        assert [r["name"] for r in sink.records] == ["one", "two"]
        log.close()
        assert sink.closed

    def test_concurrent_emitters_never_share_a_sequence_number(self):
        log = EventLog(max_events=4096)
        def emitter(k):
            for _ in range(200):
                log.emit("tick", worker=k)
        threads = [threading.Thread(target=emitter, args=(k,))
                   for k in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        sequences = [e.seq for e in log.events()]
        assert len(sequences) == len(set(sequences)) == 800
        assert log.mark() == 800


class TestJsonlSink:
    def test_events_land_in_the_file_on_close(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(sink=JsonlSink(path))
        log.emit("pose.answered", requester="epi")
        log.emit("pose.refused", requester="bob", kind="PrivacyViolation")
        log.close()
        records = [json.loads(line)
                   for line in path.read_text().splitlines()]
        assert [r["name"] for r in records] == ["pose.answered",
                                                "pose.refused"]
        assert records[1]["attributes"]["kind"] == "PrivacyViolation"
        assert log.sink.written == 2
        assert log.dropped_events == 0

    def test_full_queue_drops_and_counts_instead_of_blocking(self, tmp_path,
                                                             monkeypatch):
        release = threading.Event()
        monkeypatch.setattr(JsonlSink, "_drain",
                            lambda self: release.wait(10.0))
        sink = JsonlSink(tmp_path / "events.jsonl", max_queue=2)
        try:
            assert sink.offer({"seq": 1}) is True
            assert sink.offer({"seq": 2}) is True
            assert sink.offer({"seq": 3}) is False  # queue full → dropped
            assert sink.offer({"seq": 4}) is False
            assert sink.dropped == 2
        finally:
            release.set()

    def test_offers_after_close_are_dropped(self, tmp_path):
        sink = JsonlSink(tmp_path / "events.jsonl")
        sink.close()
        assert sink.offer({"seq": 1}) is False
        assert sink.dropped == 1
        sink.close()  # idempotent

    def test_validation(self, tmp_path):
        with pytest.raises(ReproError, match="max_queue"):
            JsonlSink(tmp_path / "x.jsonl", max_queue=0)


class TestNoopAndResolution:
    def test_noop_allocates_and_records_nothing(self):
        assert NOOP_EVENTS.emit("anything", requester="epi") is None
        assert NOOP_EVENTS.events() == []
        assert NOOP_EVENTS.tail() == []
        assert NOOP_EVENTS.since(NOOP_EVENTS.mark()) == []
        assert len(NOOP_EVENTS) == 0
        assert NOOP_EVENTS.dropped_events == 0
        assert not NOOP_EVENTS.enabled
        NOOP_EVENTS.clear()
        NOOP_EVENTS.close()

    def test_resolve_events(self, tmp_path):
        assert isinstance(resolve_events(None), EventLog)
        assert isinstance(resolve_events(True), EventLog)
        assert resolve_events(False) is NOOP_EVENTS
        log = EventLog()
        assert resolve_events(log) is log
        assert resolve_events(NOOP_EVENTS) is NOOP_EVENTS
        sinked = resolve_events(str(tmp_path / "events.jsonl"))
        assert isinstance(sinked.sink, JsonlSink)
        sinked.close()
        with pytest.raises(ReproError, match="events must be"):
            resolve_events(42)
