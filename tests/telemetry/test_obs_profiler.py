"""Sampling profiler: attribution, bounds, exports, lifecycle."""

import threading

import pytest

from repro.errors import ReproError
from repro.telemetry import Telemetry
from repro.telemetry.obs.profiler import OVERFLOW_KEY, UNTRACKED, StackProfiler


def make_profiler(**kwargs):
    telemetry = Telemetry(enabled=True)
    return StackProfiler(telemetry, **kwargs), telemetry


def sampled_worker(telemetry, profiler, span_name, samples=3):
    """Run a worker inside ``span_name`` and sample it from this thread."""
    entered = threading.Event()
    release = threading.Event()

    def worker():
        with telemetry.tracer.span(span_name):
            entered.set()
            release.wait(timeout=5.0)

    thread = threading.Thread(target=worker)
    thread.start()
    assert entered.wait(timeout=5.0)
    try:
        for _ in range(samples):
            profiler.sample_once()
    finally:
        release.set()
        thread.join()


class TestSampling:
    def test_rejects_nonpositive_hz(self):
        with pytest.raises(ReproError):
            make_profiler(hz=0)

    def test_attributes_samples_to_the_open_stage(self):
        profiler, telemetry = make_profiler()
        sampled_worker(telemetry, profiler, "mediator.pose", samples=4)
        totals = profiler.stage_totals()
        assert totals.get("mediator.pose", 0) >= 4

    def test_threads_without_spans_are_untracked(self):
        profiler, telemetry = make_profiler()
        release = threading.Event()
        thread = threading.Thread(target=release.wait, args=(5.0,))
        thread.start()
        try:
            profiler.sample_once()
        finally:
            release.set()
            thread.join()
        assert UNTRACKED in profiler.stage_totals()

    def test_own_thread_is_never_sampled(self):
        profiler, _ = make_profiler()
        profiler.sample_once()
        # only this (sampling) thread exists, and it skips itself — the
        # pytest main thread IS the sampler here.
        for (stage, stack) in profiler.snapshot():
            assert "sample_once" not in ";".join(stack)

    def test_table_is_bounded_with_overflow_bucket(self):
        profiler, telemetry = make_profiler(max_stacks=1)
        sampled_worker(telemetry, profiler, "stage.a")
        sampled_worker(telemetry, profiler, "stage.b")
        snapshot = profiler.snapshot()
        assert len(snapshot) <= 2  # one real key + the overflow bucket
        assert OVERFLOW_KEY in snapshot
        assert profiler.overflowed > 0
        metrics = telemetry.metrics.snapshot()
        assert metrics["counters"]["obs.profiler.overflow"] > 0

    def test_stack_depth_is_bounded(self):
        profiler, telemetry = make_profiler(max_depth=3)

        def deep(n):
            if n == 0:
                profiler_thread = threading.Thread(
                    target=profiler.sample_once
                )
                profiler_thread.start()
                profiler_thread.join()
                return
            deep(n - 1)

        with telemetry.tracer.span("deep"):
            deep(20)
        for (_, stack) in profiler.snapshot():
            assert len(stack) <= 3

    def test_snapshot_reset_clears_the_table(self):
        profiler, telemetry = make_profiler()
        sampled_worker(telemetry, profiler, "stage.a")
        assert profiler.snapshot(reset=True)
        assert profiler.snapshot() == {}
        assert profiler.sample_count == 0

    def test_self_measurement_instruments(self):
        profiler, telemetry = make_profiler()
        profiler.sample_once()
        metrics = telemetry.metrics.snapshot()
        assert metrics["counters"]["obs.profiler.samples"] == 1
        assert metrics["histograms"]["obs.profiler.sample_ms"]["count"] == 1


class TestExports:
    def test_collapsed_stack_format(self):
        profiler, telemetry = make_profiler()
        sampled_worker(telemetry, profiler, "mediator.pose")
        text = profiler.collapsed()
        assert text
        for line in text.splitlines():
            head, _, count = line.rpartition(" ")
            assert int(count) >= 1
            assert ";" in head

    def test_collapsed_limit_truncates(self):
        profiler, telemetry = make_profiler()
        sampled_worker(telemetry, profiler, "stage.a")
        sampled_worker(telemetry, profiler, "stage.b")
        limited = profiler.collapsed(limit=1)
        assert len(limited.splitlines()) == 1

    def test_chrome_trace_schema(self):
        profiler, telemetry = make_profiler()
        sampled_worker(telemetry, profiler, "mediator.pose", samples=2)
        document = profiler.chrome_trace()
        assert document["metadata"]["hz"] == profiler.hz
        assert document["metadata"]["samples"] == profiler.sample_count
        assert document["traceEvents"]
        for event in document["traceEvents"]:
            assert event["ph"] == "X"
            assert event["dur"] > 0
            assert "stage" in event["args"]

    def test_chrome_trace_lanes_are_per_stage(self):
        profiler, telemetry = make_profiler()
        sampled_worker(telemetry, profiler, "stage.a")
        sampled_worker(telemetry, profiler, "stage.b")
        events = profiler.chrome_trace()["traceEvents"]
        tids = {event["args"]["stage"]: event["tid"] for event in events}
        assert len(set(tids.values())) == len(tids)


class TestLifecycle:
    def test_start_stop_idempotent(self):
        profiler, _ = make_profiler(hz=200)
        assert not profiler.running
        profiler.start()
        profiler.start()
        assert profiler.running
        profiler.stop()
        profiler.stop()
        assert not profiler.running

    def test_background_thread_takes_samples(self):
        profiler, telemetry = make_profiler(hz=500)
        release = threading.Event()
        with telemetry.tracer.span("busy"):
            profiler.start()
            try:
                release.wait(timeout=0.2)
            finally:
                profiler.stop()
        assert profiler.sample_count > 0

    def test_observatory_threads_are_skipped(self):
        profiler, telemetry = make_profiler(hz=500)
        decoy_release = threading.Event()
        decoy = threading.Thread(
            target=decoy_release.wait, args=(5.0,),
            name="repro-obs-decoy",
        )
        decoy.start()
        try:
            profiler.sample_once()
        finally:
            decoy_release.set()
            decoy.join()
        for (_, stack) in profiler.snapshot():
            assert all("decoy" not in frame for frame in stack)
