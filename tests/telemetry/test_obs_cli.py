"""PerfObservatory composition, its CLI, and the HTTP obs routes."""

import json

import pytest

from repro.telemetry import Telemetry
from repro.telemetry.http import TelemetryServer
from repro.telemetry.obs import PerfObservatory
from repro.telemetry.obs.cli import build_parser, main


class TestPerfObservatory:
    def test_start_stop_composition(self):
        telemetry = Telemetry(enabled=True)
        observatory = PerfObservatory(telemetry, hz=200,
                                      slo_interval=60.0)
        assert not observatory.running
        observatory.start()
        try:
            assert observatory.running
            assert observatory.profiler.running
            assert observatory.slo.running
        finally:
            observatory.stop()
        assert not observatory.running

    def test_stock_objectives_by_default(self):
        telemetry = Telemetry(enabled=True)
        observatory = PerfObservatory(telemetry)
        names = {objective.name
                 for objective in observatory.slo.objectives}
        assert "pose-latency" in names

    def test_status_rolls_up_all_three(self):
        telemetry = Telemetry(enabled=True)
        observatory = PerfObservatory(telemetry, slo_interval=60.0)
        observatory.start()
        try:
            observatory.slo.tick()
            status = observatory.status()
        finally:
            observatory.stop()
        assert status["running"]
        assert "profiler" in status
        assert "slo" in status
        assert "recorder" in status

    def test_recorder_attached_while_running(self):
        telemetry = Telemetry(enabled=True)
        observatory = PerfObservatory(telemetry, slo_interval=60.0)
        observatory.start()
        try:
            telemetry.emit("dispatch.breaker_transition",
                           source="lab", state="open")
            assert observatory.recorder.last() is not None
        finally:
            observatory.stop()


class TestHttpRoutes:
    @pytest.fixture()
    def served(self):
        telemetry = Telemetry(enabled=True)
        observatory = PerfObservatory(telemetry, slo_interval=60.0)
        observatory.slo.tick()
        with TelemetryServer(telemetry, obs=observatory) as server:
            yield telemetry, observatory, server

    def fetch(self, server, path):
        from urllib.request import urlopen
        from urllib.error import HTTPError

        try:
            with urlopen(server.url + path) as response:
                return response.status, response.read().decode("utf-8")
        except HTTPError as error:
            return error.code, error.read().decode("utf-8")

    def test_slo_route(self, served):
        _, _, server = served
        status, body = self.fetch(server, "/slo")
        assert status == 200
        assert "pose-latency" in json.loads(body)

    def test_profile_route(self, served):
        telemetry, observatory, server = served
        with telemetry.tracer.span("busy"):
            pass
        status, body = self.fetch(server, "/profile?limit=5")
        assert status == 200  # empty profile is still a valid page

    def test_profile_route_validates_limit(self, served):
        _, _, server = served
        status, _ = self.fetch(server, "/profile?limit=nope")
        assert status == 400

    def test_flight_route_404_until_a_dump(self, served):
        _, observatory, server = served
        status, _ = self.fetch(server, "/flight")
        assert status == 404
        observatory.recorder.dump(reason="test", force=True)
        status, body = self.fetch(server, "/flight")
        assert status == 200
        assert json.loads(body)["reason"] == "test"

    def test_routes_404_without_an_observatory(self):
        telemetry = Telemetry(enabled=True)
        with TelemetryServer(telemetry) as server:
            for path in ("/profile", "/slo", "/flight"):
                status, _ = self.fetch(server, path)
                assert status == 404


class TestCli:
    def run(self, capsys, *argv):
        code = main(["--seconds", "0.3", *argv])
        return code, capsys.readouterr().out

    def test_requires_a_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_profile_prints_stage_totals(self, capsys):
        code, out = self.run(capsys, "profile", "--limit", "5")
        assert code == 0
        assert "# stage totals:" in out
        assert "samples" in out

    def test_profile_writes_chrome_trace(self, capsys, tmp_path):
        chrome = tmp_path / "trace.json"
        code, _ = self.run(capsys, "--hz", "200",
                           "profile", "--chrome", str(chrome))
        assert code == 0
        document = json.loads(chrome.read_text())
        assert "traceEvents" in document

    def test_slo_prints_burn_table(self, capsys):
        code, out = self.run(capsys, "slo")
        assert code == 0
        assert "pose-latency" in out
        assert "burn" in out

    def test_dump_writes_a_bundle(self, capsys, tmp_path):
        code, out = self.run(capsys, "--bundle-dir", str(tmp_path),
                             "dump")
        assert code == 0
        summary = json.loads(out)
        assert summary["reason"] == "cli"
        bundle_path = tmp_path / f"flight-{summary['seq']:04d}.json"
        assert bundle_path.exists()

    def test_report_is_json(self, capsys):
        code, out = self.run(capsys, "report")
        assert code == 0
        status = json.loads(out)
        assert status["poses"] >= 1
        assert "slo" in status
