"""Flight recorder: triggers, bundle shape, redaction, bounds."""

import json

from repro.telemetry import Telemetry
from repro.telemetry.obs.profiler import StackProfiler
from repro.telemetry.obs.recorder import BUNDLE_VERSION, FlightRecorder
from repro.telemetry.obs.slo import ExactObjective, SloEngine


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def make_recorder(**kwargs):
    telemetry = Telemetry(enabled=True)
    clock = FakeClock()
    recorder = FlightRecorder(telemetry, clock=clock, **kwargs)
    return recorder, telemetry, clock


class TestDump:
    def test_bundle_shape(self):
        recorder, telemetry, _ = make_recorder()
        with telemetry.tracer.span("mediator.pose", requester="r1"):
            pass
        telemetry.emit("pose.answered", requester="r1")
        bundle = recorder.dump(reason="manual")
        assert bundle["version"] == BUNDLE_VERSION
        assert bundle["seq"] == 1
        assert bundle["reason"] == "manual"
        assert [span["name"] for span in bundle["spans"]] == [
            "mediator.pose"
        ]
        assert any(event["name"] == "pose.answered"
                   for event in bundle["events"])
        assert "counters" in bundle["metrics"]
        json.dumps(bundle)  # the whole bundle must serialize

    def test_spans_carry_trace_ids(self):
        recorder, telemetry, _ = make_recorder()
        with telemetry.tracer.span("mediator.pose") as span:
            pass
        bundle = recorder.dump()
        assert bundle["spans"][0]["trace_id"] == span.trace_id

    def test_redaction_scrubs_free_text(self):
        recorder, telemetry, _ = make_recorder()
        telemetry.emit("pose.refused",
                       reason="loss 0.91 exceeds MAXLOSS 0.6 for ssn 123")
        with telemetry.tracer.span("mediator.pose",
                                   error="budget 42 exhausted"):
            pass
        bundle = recorder.dump(reason="probe run 77")
        assert "77" not in bundle["reason"]
        event = next(e for e in bundle["events"]
                     if e["name"] == "pose.refused")
        assert "123" not in event["attributes"]["reason"]
        assert "42" not in bundle["spans"][0]["attributes"]["error"]

    def test_auto_dumps_are_rate_limited(self):
        recorder, _, clock = make_recorder(min_interval_s=5.0)
        assert recorder.dump(reason="auto") is not None
        assert recorder.dump(reason="auto") is None
        assert recorder.suppressed == 1
        assert recorder.dump(reason="manual", force=True) is not None
        clock.advance(10.0)
        assert recorder.dump(reason="auto") is not None

    def test_ring_is_bounded(self):
        recorder, _, clock = make_recorder(max_bundles=3)
        for index in range(6):
            recorder.dump(reason=f"r{index}", force=True)
        bundles = recorder.bundles
        assert len(bundles) == 3
        assert [bundle["seq"] for bundle in bundles] == [4, 5, 6]
        assert recorder.last()["seq"] == 6

    def test_bundle_written_to_disk(self, tmp_path):
        recorder, _, _ = make_recorder(bundle_dir=tmp_path)
        bundle = recorder.dump(reason="manual")
        path = tmp_path / f"flight-{bundle['seq']:04d}.json"
        assert json.loads(path.read_text())["reason"] == "manual"

    def test_dump_announces_itself_without_recursion(self):
        recorder, telemetry, _ = make_recorder()
        recorder.attach()
        try:
            bundle = recorder.dump(reason="manual")
        finally:
            recorder.detach()
        assert recorder.dumps == 1  # the dump event did not re-trigger
        names = [event.name for event in telemetry.events.tail(10)]
        assert "obs.flight_recorder.dump" in names
        # and the bundle itself predates its own announcement
        assert all(event["name"] != "obs.flight_recorder.dump"
                   for event in bundle["events"])


class TestTriggers:
    def test_breaker_open_triggers_a_dump(self):
        recorder, telemetry, _ = make_recorder()
        recorder.attach()
        try:
            telemetry.emit("dispatch.breaker_transition",
                           source="lab", state="open")
        finally:
            recorder.detach()
        assert recorder.last()["reason"] == "breaker-open:lab"

    def test_other_breaker_states_do_not_trigger(self):
        recorder, telemetry, _ = make_recorder()
        recorder.attach()
        try:
            telemetry.emit("dispatch.breaker_transition",
                           source="lab", state="half-open")
            telemetry.emit("dispatch.breaker_transition",
                           source="lab", state="closed")
        finally:
            recorder.detach()
        assert recorder.last() is None

    def test_detach_stops_triggering(self):
        recorder, telemetry, _ = make_recorder()
        recorder.attach()
        recorder.detach()
        telemetry.emit("dispatch.breaker_transition",
                       source="lab", state="open")
        assert recorder.last() is None

    def test_slo_breach_triggers_a_dump(self):
        telemetry = Telemetry(enabled=True)
        slo = SloEngine(telemetry, [ExactObjective("exact", "violations")],
                        clock=FakeClock())
        recorder = FlightRecorder(telemetry, slo=slo, clock=FakeClock())
        recorder.attach()
        try:
            slo.tick()
            telemetry.metrics.counter("violations").inc()
            slo.tick()
        finally:
            recorder.detach()
        bundle = recorder.last()
        assert bundle["reason"] == "slo-breach:exact"
        assert bundle["slo"]["exact"]["breached"]

    def test_attach_is_idempotent(self):
        recorder, telemetry, _ = make_recorder()
        recorder.attach()
        recorder.attach()
        try:
            telemetry.emit("dispatch.breaker_transition",
                           source="lab", state="open")
        finally:
            recorder.detach()
        assert recorder.dumps == 1


class TestProfileSection:
    def test_bundle_embeds_the_heaviest_stacks(self):
        telemetry = Telemetry(enabled=True)
        profiler = StackProfiler(telemetry)
        import threading

        entered = threading.Event()
        release = threading.Event()

        def worker():
            with telemetry.tracer.span("mediator.pose"):
                entered.set()
                release.wait(timeout=5.0)

        thread = threading.Thread(target=worker)
        thread.start()
        assert entered.wait(timeout=5.0)
        try:
            profiler.sample_once()
        finally:
            release.set()
            thread.join()
        recorder = FlightRecorder(telemetry, profiler=profiler,
                                  clock=FakeClock())
        bundle = recorder.dump()
        assert "mediator.pose" in bundle["profile"]["stage_totals"]
        assert bundle["profile"]["collapsed"]
