"""Trace-id semantics: minting, inheritance, and TraceContext hand-off.

The cross-context propagation contract: every root span mints (or
inherits) a ``trace_id``, children share their parent's, and a
:class:`TraceContext` captured on one thread re-parents spans opened on
another — the mechanism the dispatcher, batch pipeline, and WAL writer
use to keep one pose's work under one id across threads.
"""

import threading

from repro.telemetry import Telemetry
from repro.telemetry.obs.context import EMPTY_CONTEXT, TraceContext
from repro.telemetry.tracer import new_trace_id


def make_tracer():
    return Telemetry(enabled=True).tracer


class TestSpanTraceIds:
    def test_root_span_mints_a_trace_id(self):
        tracer = make_tracer()
        with tracer.span("root") as span:
            assert span.trace_id is not None
            assert span.trace_id.startswith("t-")

    def test_children_inherit_the_root_id(self):
        tracer = make_tracer()
        with tracer.span("root") as root:
            with tracer.span("child") as child:
                with tracer.span("grandchild") as grandchild:
                    assert child.trace_id == root.trace_id
                    assert grandchild.trace_id == root.trace_id

    def test_distinct_roots_get_distinct_ids(self):
        tracer = make_tracer()
        with tracer.span("a") as a:
            pass
        with tracer.span("b") as b:
            pass
        assert a.trace_id != b.trace_id

    def test_explicit_trace_id_wins(self):
        tracer = make_tracer()
        with tracer.span("root", trace_id="t-pinned") as span:
            assert span.trace_id == "t-pinned"

    def test_to_dict_carries_the_trace_id(self):
        tracer = make_tracer()
        with tracer.span("root") as span:
            pass
        assert span.to_dict()["trace_id"] == span.trace_id

    def test_new_trace_id_is_unique(self):
        ids = {new_trace_id() for _ in range(100)}
        assert len(ids) == 100

    def test_current_trace_id_follows_the_stack(self):
        tracer = make_tracer()
        assert tracer.current_trace_id() is None
        with tracer.span("root") as span:
            assert tracer.current_trace_id() == span.trace_id
        assert tracer.current_trace_id() is None


class TestActivate:
    def test_activate_seeds_new_roots(self):
        tracer = make_tracer()
        with tracer.activate("t-ambient"):
            with tracer.span("root") as span:
                assert span.trace_id == "t-ambient"
        with tracer.span("after") as after:
            assert after.trace_id != "t-ambient"

    def test_activate_restores_previous_ambient(self):
        tracer = make_tracer()
        with tracer.activate("t-outer"):
            with tracer.activate("t-inner"):
                with tracer.span("inner") as inner:
                    pass
            with tracer.span("outer") as outer:
                pass
        assert inner.trace_id == "t-inner"
        assert outer.trace_id == "t-outer"

    def test_activate_parents_under_the_live_span(self):
        tracer = make_tracer()
        with tracer.span("root") as root:
            def worker():
                with tracer.activate(root.trace_id, parent=root):
                    with tracer.span("remote"):
                        pass

            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert [child.name for child in root.children] == ["remote"]
        assert root.children[0].trace_id == root.trace_id


class TestActiveStages:
    def test_reports_open_spans_across_threads(self):
        tracer = make_tracer()
        entered = threading.Event()
        release = threading.Event()
        seen = {}

        def worker():
            with tracer.span("mediator.fanout.attempt") as span:
                seen["trace_id"] = span.trace_id
                entered.set()
                release.wait(timeout=5.0)

        thread = threading.Thread(target=worker)
        thread.start()
        assert entered.wait(timeout=5.0)
        try:
            stages = tracer.active_stages()
            assert (("mediator.fanout.attempt", seen["trace_id"])
                    in stages.values())
        finally:
            release.set()
            thread.join()

    def test_dead_threads_are_pruned(self):
        tracer = make_tracer()

        def worker():
            with tracer.span("ephemeral"):
                pass

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert thread.ident not in tracer.active_stages()


class TestTraceContext:
    def test_capture_outside_any_span_is_empty(self):
        tracer = make_tracer()
        context = TraceContext.capture(tracer)
        assert context is EMPTY_CONTEXT
        assert not context

    def test_capture_inside_a_span(self):
        tracer = make_tracer()
        with tracer.span("root") as root:
            context = TraceContext.capture(tracer)
        assert context.trace_id == root.trace_id
        assert context.parent is root
        assert context

    def test_ensure_mints_when_empty(self):
        tracer = make_tracer()
        context = TraceContext.ensure(tracer)
        assert context.trace_id is not None

    def test_dict_round_trip_drops_the_live_parent(self):
        tracer = make_tracer()
        with tracer.span("root") as root:
            context = TraceContext.capture(tracer)
        payload = context.to_dict()
        assert payload == {"trace_id": root.trace_id}
        restored = TraceContext.from_dict(
            {"kind": "pose", "seq": 7, **payload}
        )
        assert restored.trace_id == root.trace_id
        assert restored.parent is None

    def test_from_dict_without_id_is_empty(self):
        assert not TraceContext.from_dict({"kind": "pose"})
        assert not TraceContext.from_dict(None)

    def test_activate_crosses_threads(self):
        tracer = make_tracer()
        with tracer.span("origin") as origin:
            context = TraceContext.capture(tracer)
        captured = {}

        def worker():
            with context.activate(tracer):
                with tracer.span("remote") as span:
                    captured["trace_id"] = span.trace_id

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert captured["trace_id"] == origin.trace_id

    def test_empty_activate_is_a_noop(self):
        tracer = make_tracer()
        with EMPTY_CONTEXT.activate(tracer):
            with tracer.span("fresh") as span:
                assert span.trace_id is not None
