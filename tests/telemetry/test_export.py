"""Exporter schemas: Chrome trace-event JSON and Prometheus text format."""

import json
import re

import pytest

from repro import PrivateIye
from repro.relational import Table
from repro.telemetry.events import EventLog
from repro.telemetry.export import (
    chrome_trace,
    events_jsonl,
    metric_name,
    prometheus_text,
)

POLICIES = """
VIEW clinic_private { PRIVATE //patient/hba1c FORM aggregate; }
POLICY clinic DEFAULT deny {
    ALLOW //patient/hba1c FOR public-health-research FORM aggregate MAXLOSS 0.6;
}
"""


class FakeSpan:
    def __init__(self, name, start, end, attributes=None, children=()):
        self.name = name
        self.start = start
        self.end = end
        self.attributes = attributes or {}
        self.children = list(children)

    def walk(self):
        yield self
        for child in self.children:
            yield from child.walk()


#: Keys the Chrome trace-event format requires of a complete event.
TRACE_EVENT_KEYS = {"name", "ph", "cat", "ts", "dur", "pid", "tid", "args"}


class TestChromeTrace:
    def test_document_schema(self):
        child = FakeSpan("source.answer", 1.001, 1.004, {"source": "clinic"})
        root = FakeSpan("mediator.pose", 1.0, 1.01,
                        {"requester": "epi", "query": object()}, [child])
        document = chrome_trace([root])
        assert set(document) == {"traceEvents", "displayTimeUnit"}
        assert document["displayTimeUnit"] == "ms"
        assert len(document["traceEvents"]) == 2
        for entry in document["traceEvents"]:
            assert set(entry) == TRACE_EVENT_KEYS
            assert entry["ph"] == "X"  # complete events
            assert entry["dur"] >= 0.0
        json.dumps(document)  # non-JSON attributes were coerced (repr)

    def test_timestamps_are_microseconds_sorted(self):
        spans = [FakeSpan("b", 2.0, 2.5), FakeSpan("a", 1.0, 1.25)]
        entries = chrome_trace(spans)["traceEvents"]
        assert [e["name"] for e in entries] == ["a", "b"]
        assert entries[0]["ts"] == pytest.approx(1.0e6)
        assert entries[0]["dur"] == pytest.approx(0.25e6)

    def test_accepts_a_single_span_none_and_unstarted(self):
        assert chrome_trace(None) == {"traceEvents": [],
                                      "displayTimeUnit": "ms"}
        lone = FakeSpan("x", 1.0, 2.0)
        assert len(chrome_trace(lone)["traceEvents"]) == 1
        unstarted = FakeSpan("y", None, None)
        assert chrome_trace([unstarted])["traceEvents"] == []

    def test_real_pose_trace_exports(self):
        system = PrivateIye(telemetry=True)
        system.load_policies(POLICIES,
                             view_source={"clinic_private": "clinic"})
        system.add_relational_source("clinic", Table.from_dicts(
            "patients", [{"hba1c": 60.0 + i} for i in range(10)]
        ))
        system.query(
            "SELECT AVG(//patient/hba1c) AS mean "
            "PURPOSE outbreak-surveillance MAXLOSS 0.6",
            requester="epi",
        )
        document = chrome_trace(system.telemetry.tracer.finished)
        names = {entry["name"] for entry in document["traceEvents"]}
        assert "mediator.pose" in names
        assert "source.answer" in names
        json.dumps(document)


class TestPrometheusText:
    SNAPSHOT = {
        "counters": {"mediator.queries_answered": 3,
                     "warehouse.hits": 1},
        "gauges": {"dispatch.open_breakers": 0.0},
        "histograms": {"mediator.pose_ms": {
            "count": 3, "sum": 12.0, "mean": 4.0, "min": 2.0, "max": 6.0,
            "p50": 4.0, "p95": 6.0, "p99": 6.0,
        }},
    }

    def test_exposition_format_lines(self):
        text = prometheus_text(self.SNAPSHOT)
        assert text.endswith("\n")  # required by the format
        lines = text.splitlines()
        assert "# TYPE repro_mediator_queries_answered_total counter" in lines
        assert "repro_mediator_queries_answered_total 3" in lines
        assert "# TYPE repro_dispatch_open_breakers gauge" in lines
        assert "# TYPE repro_mediator_pose_ms summary" in lines
        assert 'repro_mediator_pose_ms{quantile="0.5"} 4.0' in lines
        assert 'repro_mediator_pose_ms{quantile="0.99"} 6.0' in lines
        assert "repro_mediator_pose_ms_count 3" in lines
        assert "repro_mediator_pose_ms_sum 12.0" in lines

    def test_every_sample_line_is_schema_valid(self):
        sample = re.compile(
            r"^[a-zA-Z_:][a-zA-Z0-9_:]*"          # metric name
            r'(\{quantile="0\.\d+"\})?'           # optional summary label
            r" -?\d+(\.\d+([eE][+-]?\d+)?)?$"     # value
        )
        for line in prometheus_text(self.SNAPSHOT).splitlines():
            if line.startswith("#"):
                assert line.startswith(("# HELP ", "# TYPE "))
            else:
                assert sample.match(line), line

    def test_empty_snapshot(self):
        text = prometheus_text(
            {"counters": {}, "gauges": {}, "histograms": {}}
        )
        assert text == "\n"

    def test_metric_name_sanitization(self):
        assert metric_name("mediator.pose_ms") == "repro_mediator_pose_ms"
        assert metric_name("weird metric!") == "repro_weird_metric_"
        assert metric_name("x", prefix="") == "x"
        assert metric_name("9lives", prefix="").startswith("_")


class TestEventsJsonl:
    def test_round_trips_ring_objects_and_dicts(self):
        log = EventLog(clock=lambda: 7.0)
        log.emit("pose.answered", requester="epi")
        text = events_jsonl(log.events())
        assert text.endswith("\n")
        record = json.loads(text.splitlines()[0])
        assert record["name"] == "pose.answered"
        assert record["ts"] == 7.0
        # dicts (e.g. re-read from a file) encode identically
        assert events_jsonl([record]) == text
        assert events_jsonl([]) == ""


class TestObservatorySeriesRoundTrip:
    """S3: profiler and SLO series survive both exporters intact."""

    def make_observed_telemetry(self):
        from repro.telemetry import Telemetry
        from repro.telemetry.obs.profiler import StackProfiler
        from repro.telemetry.obs.slo import ExactObjective, SloEngine

        telemetry = Telemetry(enabled=True)
        profiler = StackProfiler(telemetry)
        import threading

        entered = threading.Event()
        release = threading.Event()

        def worker():
            with telemetry.tracer.span("mediator.pose"):
                entered.set()
                release.wait(timeout=5.0)

        thread = threading.Thread(target=worker)
        thread.start()
        assert entered.wait(timeout=5.0)
        try:
            profiler.sample_once()
            profiler.sample_once()
        finally:
            release.set()
            thread.join()
        engine = SloEngine(telemetry,
                           [ExactObjective("exact", "violations")])
        engine.tick()
        return telemetry, profiler

    def test_prometheus_exposes_profiler_and_slo_series(self):
        telemetry, _ = self.make_observed_telemetry()
        text = prometheus_text(telemetry.metrics.snapshot())
        lines = text.splitlines()
        assert "# TYPE repro_obs_profiler_samples_total counter" in lines
        assert "repro_obs_profiler_samples_total 2" in lines
        assert "# TYPE repro_obs_slo_burn_short_exact gauge" in lines
        assert "# TYPE repro_obs_profiler_sample_ms summary" in lines
        # and every emitted line still satisfies the exposition grammar
        sample = re.compile(
            r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
            r'(\{quantile="0\.\d+"\})?'
            r" -?\d+(\.\d+([eE][+-]?\d+)?)?$"
        )
        for line in lines:
            if not line.startswith("#") and line:
                assert sample.match(line), line

    def test_profiler_chrome_trace_json_round_trip(self):
        _, profiler = self.make_observed_telemetry()
        document = json.loads(json.dumps(profiler.chrome_trace()))
        assert document["metadata"]["samples"] == 2
        stages = {event["args"]["stage"]
                  for event in document["traceEvents"]}
        assert "mediator.pose" in stages
        # durations reconstruct the sampling budget: count / hz
        for event in document["traceEvents"]:
            samples = event["args"]["samples"]
            assert event["dur"] == samples * (1_000_000.0 / 50.0)

    def test_span_chrome_trace_carries_trace_ids(self):
        from repro.telemetry import Telemetry

        telemetry = Telemetry(enabled=True)
        with telemetry.span("mediator.pose") as span:
            with telemetry.span("mediator.fanout"):
                pass
        document = json.loads(
            json.dumps(chrome_trace(telemetry.tracer.finished))
        )
        args = [event["args"] for event in document["traceEvents"]]
        assert all(entry["trace_id"] == span.trace_id for entry in args)

    def test_spans_without_trace_ids_export_cleanly(self):
        root = FakeSpan("legacy", 1.0, 2.0)
        document = chrome_trace([root])
        assert "trace_id" not in document["traceEvents"][0]["args"]
