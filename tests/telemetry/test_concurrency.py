"""Concurrency-safety tests for the telemetry layer.

The fan-out dispatcher moved real traffic onto worker threads, so the
tracer and metrics registry are now written from many threads at once.
These tests hammer one shared instance from a thread pool and assert
nothing is lost or misparented: counter increments are not dropped
(``value += n`` is a non-atomic read-modify-write under the GIL),
histogram windows stay iterable while written, and spans opened on
worker threads with an explicit ``parent`` land under that parent —
never as stray roots.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

from repro.telemetry import MetricsRegistry, Telemetry, Tracer

THREADS = 8


def hammer(worker, threads=THREADS):
    """Run ``worker(index)`` on ``threads`` threads, rethrowing errors."""
    with ThreadPoolExecutor(max_workers=threads) as pool:
        futures = [pool.submit(worker, i) for i in range(threads)]
        for future in futures:
            future.result()


class TestMetricsUnderContention:
    def test_no_lost_counter_increments(self):
        registry = MetricsRegistry()
        per_thread = 5000

        def worker(index):
            counter = registry.counter("contended")
            for _ in range(per_thread):
                counter.inc()

        hammer(worker)
        assert registry.counter("contended").value == THREADS * per_thread

    def test_counter_instances_are_shared_across_threads(self):
        registry = MetricsRegistry()
        seen = []
        lock = threading.Lock()

        def worker(index):
            instrument = registry.counter("one")
            with lock:
                seen.append(instrument)

        hammer(worker)
        assert all(instrument is seen[0] for instrument in seen)

    def test_histogram_counts_every_observation(self):
        registry = MetricsRegistry()
        per_thread = 2000

        def worker(index):
            histogram = registry.histogram("lat")
            for i in range(per_thread):
                histogram.observe(float(i))

        hammer(worker)
        histogram = registry.histogram("lat")
        assert histogram.count == THREADS * per_thread
        # lifetime total survives the windowing
        expected_total = THREADS * sum(range(per_thread))
        assert histogram.total == float(expected_total)

    def test_summary_reads_race_safely_with_writes(self):
        registry = MetricsRegistry()
        stop = threading.Event()
        errors = []

        def reader():
            while not stop.is_set():
                try:
                    registry.histogram("busy").summary()
                    registry.histogram("busy").percentile(95)
                except RuntimeError as error:  # deque mutated during iter
                    errors.append(error)
                    return

        def worker(index):
            histogram = registry.histogram("busy")
            for i in range(3000):
                histogram.observe(i)

        reader_thread = threading.Thread(target=reader)
        reader_thread.start()
        try:
            hammer(worker)
        finally:
            stop.set()
            reader_thread.join()
        assert errors == []


class TestTracerUnderContention:
    def test_worker_spans_parent_correctly_across_threads(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            def worker(index):
                with tracer.span("attempt", parent=root, worker=index):
                    with tracer.span("inner"):
                        pass

            hammer(worker)
        assert len(root.children) == THREADS
        for child in root.children:
            assert child.name == "attempt"
            assert [grandchild.name for grandchild in child.children] == \
                ["inner"]
        # parented worker spans are children, not extra finished roots
        assert [span.name for span in tracer.finished] == ["root"]
        assert sum(1 for span in root.walk() if span.name == "inner") == \
            THREADS

    def test_unparented_worker_spans_stay_thread_local_roots(self):
        tracer = Tracer()

        def worker(index):
            with tracer.span("solo", worker=index):
                pass

        hammer(worker)
        finished = tracer.finished
        assert len(finished) == THREADS
        assert all(span.name == "solo" for span in finished)
        assert all(not span.children for span in finished)

    def test_nesting_on_each_thread_is_independent(self):
        tracer = Tracer()
        misnested = []

        def worker(index):
            with tracer.span(f"outer-{index}") as outer:
                with tracer.span(f"inner-{index}"):
                    if tracer.current().name != f"inner-{index}":
                        misnested.append(index)
                if outer.children[0].name != f"inner-{index}":
                    misnested.append(index)

        hammer(worker)
        assert misnested == []
        assert len(tracer.finished) == THREADS

    def test_full_telemetry_pose_shape_under_worker_load(self):
        telemetry = Telemetry(enabled=True)
        with telemetry.span("mediator.pose") as pose:
            with telemetry.span("mediator.fanout") as fanout:
                def worker(index):
                    with telemetry.tracer.span(
                        "mediator.fanout.attempt", parent=fanout,
                        source=f"src{index}",
                    ):
                        with telemetry.span("source.answer"):
                            telemetry.metrics.counter("answered").inc()

                hammer(worker)
        root = telemetry.tracer.last_root()
        assert root.name == "mediator.pose"
        names = [span.name for span in root.walk()]
        assert names.count("mediator.fanout.attempt") == THREADS
        assert names.count("source.answer") == THREADS
        assert telemetry.metrics.counter("answered").value == THREADS
        assert [span.name for span in pose.children] == ["mediator.fanout"]


class TestShortLockHolds:
    """The S2 lock discipline: snapshots copy under the lock, render outside.

    ``Histogram.summary()`` takes one internally-consistent snapshot
    (values, count, total copied together); ``window()`` copies then
    sorts outside the lock; ``MetricsRegistry.snapshot()`` copies the
    instrument lists under the registry lock and renders without it.
    These tests hammer every one of those readers against writers and
    assert both safety (no RuntimeError) and consistency (no torn
    count/total pairs).
    """

    def test_summary_is_internally_consistent_under_writes(self):
        registry = MetricsRegistry()
        stop = threading.Event()
        torn = []

        def reader():
            histogram = registry.histogram("hot")
            while not stop.is_set():
                summary = histogram.summary()
                # every observation is 1.0, so a consistent snapshot
                # always satisfies total == count exactly.
                if summary["count"] and (summary["sum"]
                                         != float(summary["count"])):
                    torn.append(summary)
                    return

        def worker(index):
            histogram = registry.histogram("hot")
            for _ in range(5000):
                histogram.observe(1.0)

        reader_thread = threading.Thread(target=reader)
        reader_thread.start()
        try:
            hammer(worker)
        finally:
            stop.set()
            reader_thread.join()
        assert torn == []

    def test_window_reads_race_safely_with_writes(self):
        registry = MetricsRegistry()
        stop = threading.Event()
        errors = []

        def reader():
            histogram = registry.histogram("hot")
            while not stop.is_set():
                try:
                    window = histogram.window()
                    # sorted copy, never the live deque
                    assert window == sorted(window)
                except RuntimeError as error:
                    errors.append(error)
                    return

        def worker(index):
            histogram = registry.histogram("hot")
            for i in range(4000):
                histogram.observe(float(i % 97))

        reader_thread = threading.Thread(target=reader)
        reader_thread.start()
        try:
            hammer(worker)
        finally:
            stop.set()
            reader_thread.join()
        assert errors == []

    def test_registry_snapshot_races_with_instrument_creation(self):
        registry = MetricsRegistry()
        stop = threading.Event()
        errors = []

        def reader():
            while not stop.is_set():
                try:
                    snapshot = registry.snapshot()
                    assert set(snapshot) >= {"counters", "gauges",
                                             "histograms"}
                except RuntimeError as error:  # dict changed during iter
                    errors.append(error)
                    return

        def worker(index):
            for i in range(300):
                registry.counter(f"c-{index}-{i}").inc()
                registry.gauge(f"g-{index}-{i}").set(float(i))
                registry.histogram(f"h-{index}-{i}").observe(float(i))

        reader_thread = threading.Thread(target=reader)
        reader_thread.start()
        try:
            hammer(worker)
        finally:
            stop.set()
            reader_thread.join()
        assert errors == []

    def test_event_listeners_race_with_emitters(self):
        from repro.telemetry.events import EventLog

        log = EventLog()
        stop = threading.Event()
        received = []
        errors = []

        def listener(event):
            received.append(event.name)

        def churner():
            # subscribe/unsubscribe churn while emits are in flight:
            # copy-on-write must keep every emit's iteration stable.
            while not stop.is_set():
                try:
                    log.subscribe(listener)
                    log.unsubscribe(listener)
                except RuntimeError as error:
                    errors.append(error)
                    return

        def worker(index):
            for i in range(2000):
                log.emit(f"event-{index}", i=i)

        churn_thread = threading.Thread(target=churner)
        churn_thread.start()
        try:
            hammer(worker)
        finally:
            stop.set()
            churn_thread.join()
        assert errors == []
