"""Unit tests for repro.telemetry.redact — the sanctioned sanitizers.

The flow analyzer (repro.analysis.flow) declares every function here a
sanitizer, so these tests are the runtime half of that contract: outputs
must be non-invertible (never contain the input) while staying useful
(stable, comparable, bounded).
"""

import pytest

from repro.errors import ReproError
from repro.telemetry import redact
from repro.telemetry.redact import (
    DIGEST_HEX_DIGITS,
    bucket,
    bucket_interval,
    digest,
    scrub_reason,
)


class TestDigest:
    def test_stable_and_short(self):
        assert digest("ssn-123-45-6789") == digest("ssn-123-45-6789")
        assert len(digest("ssn-123-45-6789")) == DIGEST_HEX_DIGITS

    def test_never_contains_the_value(self):
        value = "confidential-salary-120000"
        assert value not in digest(value)

    def test_distinguishes_values_and_types(self):
        assert digest("1") != digest(1)  # repr-canonical: type matters
        assert digest("alpha") != digest("beta")

    def test_bytes_digest_raw(self):
        assert digest(b"abc") == digest(b"abc")
        assert digest(b"abc") != digest("abc")

    def test_custom_length(self):
        assert len(digest("x", length=12)) == 12


class TestBucket:
    def test_integer_labels(self):
        assert bucket(23, 10) == "[20,30)"
        assert bucket(20, 10) == "[20,30)"  # half-open: low edge inside
        assert bucket(19.99, 10) == "[10,20)"

    def test_negative_values(self):
        assert bucket(-5, 10) == "[-10,0)"

    def test_fractional_width(self):
        assert bucket(0.97, 0.05) == "[0.95,1)"

    def test_rejects_non_positive_width(self):
        with pytest.raises(ReproError):
            bucket(5, 0)

    def test_never_contains_the_value(self):
        assert "23" not in bucket(23.0, 10)


class TestBucketInterval:
    def test_single_bucket_collapses(self):
        assert bucket_interval(21, 24, 10) == "[20,30)"

    def test_cross_bucket_interval(self):
        assert bucket_interval(18, 24, 10) == "[10,20)..[20,30)"

    def test_position_is_generalized(self):
        # two intervals of equal width in the same buckets are
        # indistinguishable — position is what must not leak
        assert bucket_interval(21, 24, 10) == bucket_interval(22, 25, 10)


class TestScrubReason:
    def test_digit_runs_generalized(self):
        scrubbed = scrub_reason("loss 0.73 exceeds MAXLOSS 0.5")
        assert "0.73" not in scrubbed
        assert "0.5" not in scrubbed
        assert scrubbed == "loss # exceeds MAXLOSS #"

    def test_keeps_first_line_only(self):
        assert scrub_reason("refused\nsecret second line") == "refused"

    def test_truncates(self):
        scrubbed = scrub_reason("x" * 500, max_length=40)
        assert len(scrubbed) == 40
        assert scrubbed.endswith("…")

    def test_empty_text(self):
        assert scrub_reason("") == ""


class TestModuleSurface:
    def test_all_sanitizers_exported(self):
        # the catalog declares these by name; keep the surface stable
        for name in ("digest", "bucket", "bucket_interval", "scrub_reason"):
            assert callable(getattr(redact, name))
