"""Span nesting, timing, and the allocation-free no-op tracer."""

import threading
import time

from repro.telemetry import NOOP_SPAN, NOOP_TRACER, NoopTracer, Tracer
from repro.telemetry.tracer import NoopSpan


class TestSpanNesting:
    def test_children_nest_under_open_parent(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("child-a"):
                with tracer.span("grandchild"):
                    pass
            with tracer.span("child-b"):
                pass
        assert [c.name for c in root.children] == ["child-a", "child-b"]
        assert [c.name for c in root.children[0].children] == ["grandchild"]

    def test_only_roots_are_retained(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("child"):
                pass
        assert [s.name for s in tracer.finished] == ["root"]
        assert tracer.last_root().name == "root"

    def test_current_tracks_innermost(self):
        tracer = Tracer()
        assert tracer.current() is None
        with tracer.span("outer") as outer:
            assert tracer.current() is outer
            with tracer.span("inner") as inner:
                assert tracer.current() is inner
            assert tracer.current() is outer
        assert tracer.current() is None

    def test_walk_yields_depth_first(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
            with tracer.span("d"):
                pass
        names = [s.name for s in tracer.last_root().walk()]
        assert names == ["a", "b", "c", "d"]

    def test_ring_buffer_bounds_roots(self):
        tracer = Tracer(max_roots=3)
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        assert [s.name for s in tracer.finished] == ["s2", "s3", "s4"]

    def test_threads_do_not_share_stacks(self):
        tracer = Tracer()
        seen = {}

        def worker(name):
            with tracer.span(name) as span:
                time.sleep(0.01)
                seen[name] = tracer.current() is span

        threads = [threading.Thread(target=worker, args=(f"t{i}",))
                   for i in range(4)]
        with tracer.span("main"):
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert all(seen.values())
        # each thread's span is its own root, not a child of "main"
        assert sorted(s.name for s in tracer.finished) == [
            "main", "t0", "t1", "t2", "t3"
        ]


class TestSpanTiming:
    def test_duration_measures_elapsed_time(self):
        tracer = Tracer()
        with tracer.span("timed") as span:
            time.sleep(0.02)
        assert span.duration_ms >= 15.0

    def test_duration_is_live_while_open(self):
        tracer = Tracer()
        with tracer.span("open") as span:
            time.sleep(0.005)
            live = span.duration_ms
            assert live > 0.0
        assert span.duration_ms >= live

    def test_attributes_and_error_capture(self):
        tracer = Tracer()
        try:
            with tracer.span("failing", stage="x") as span:
                span.set(rows=7)
                raise ValueError("boom")
        except ValueError:
            pass
        assert span.attributes == {
            "stage": "x", "rows": 7, "error": "ValueError",
        }

    def test_to_dict_round_trips_structure(self):
        tracer = Tracer()
        with tracer.span("root", a=1):
            with tracer.span("leaf"):
                pass
        d = tracer.last_root().to_dict()
        assert d["name"] == "root" and d["attributes"] == {"a": 1}
        assert [c["name"] for c in d["children"]] == ["leaf"]


class TestNoopTracer:
    def test_span_returns_shared_singleton(self):
        tracer = NoopTracer()
        a = tracer.span("anything", k="v")
        b = tracer.span("else")
        assert a is b is NOOP_SPAN
        assert isinstance(a, NoopSpan)

    def test_noop_span_records_nothing(self):
        with NOOP_TRACER.span("x") as span:
            span.set(ignored=True)
        assert NOOP_TRACER.finished == []
        assert NOOP_TRACER.last_root() is None
        assert span.duration_ms == 0.0
