"""The stdlib telemetry endpoint: /metrics, /events, /trace, /healthz."""

import json
from urllib.error import HTTPError
from urllib.request import urlopen

import pytest

from repro.errors import ReproError
from repro.telemetry import Telemetry
from repro.telemetry.http import (
    PROMETHEUS_CONTENT_TYPE,
    TelemetryServer,
    dump_events,
)


@pytest.fixture()
def telemetry():
    instance = Telemetry(enabled=True)
    instance.metrics.counter("mediator.queries_answered").inc(3)
    instance.metrics.histogram("mediator.pose_ms").observe(4.0)
    instance.events.emit("pose.answered", requester="epi", rows=2)
    instance.events.emit("pose.refused", requester="bob", kind="Refusal")
    return instance


@pytest.fixture()
def server(telemetry):
    with TelemetryServer(telemetry) as running:
        yield running


def fetch(server, path):
    with urlopen(server.url + path, timeout=5.0) as response:
        return response.status, response.headers, response.read().decode()


class TestRoutes:
    def test_metrics_is_prometheus_exposition(self, server):
        status, headers, body = fetch(server, "/metrics")
        assert status == 200
        assert headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
        assert "repro_mediator_queries_answered_total 3" in body
        assert "repro_mediator_pose_ms_count 1" in body

    def test_events_returns_bounded_tail(self, server):
        status, _, body = fetch(server, "/events")
        assert status == 200
        document = json.loads(body)
        assert document["dropped_events"] == 0
        assert [e["name"] for e in document["events"]] == [
            "pose.answered", "pose.refused",
        ]
        # the first scrape's own access log is now the newest event;
        # ?n=1 bounds the tail to exactly that
        _, _, body = fetch(server, "/events?n=1")
        assert [e["name"] for e in json.loads(body)["events"]] == [
            "http.request",
        ]

    def test_events_rejects_non_integer_n(self, server):
        with pytest.raises(HTTPError) as excinfo:
            fetch(server, "/events?n=soon")
        assert excinfo.value.code == 400
        assert "integer" in json.loads(excinfo.value.read().decode())["error"]

    def test_trace_is_a_chrome_trace_document(self, server, telemetry):
        with telemetry.span("mediator.pose", requester="epi"):
            pass
        status, _, body = fetch(server, "/trace")
        assert status == 200
        document = json.loads(body)
        assert "traceEvents" in document
        assert document["traceEvents"][0]["name"] == "mediator.pose"
        assert document["traceEvents"][0]["ph"] == "X"

    def test_healthz(self, server):
        status, _, body = fetch(server, "/healthz")
        assert status == 200
        document = json.loads(body)
        assert document["status"] == "ok"
        assert document["telemetry_enabled"] is True
        assert document["events_retained"] >= 2

    def test_unknown_path_is_404(self, server):
        with pytest.raises(HTTPError) as excinfo:
            fetch(server, "/nope")
        assert excinfo.value.code == 404

    def test_requests_are_logged_as_events_not_stderr(self, server,
                                                      telemetry):
        fetch(server, "/healthz")
        requests = telemetry.events.events(name="http.request")
        assert requests
        assert "/healthz" in requests[-1].attributes["line"]


class TestLifecycle:
    def test_address_before_start_raises(self, telemetry):
        server = TelemetryServer(telemetry)
        with pytest.raises(ReproError, match="not started"):
            server.address
        address = server.start()
        try:
            assert server.address == address
            assert server.url == f"http://{address[0]}:{address[1]}"
            with pytest.raises(ReproError, match="already started"):
                server.start()
        finally:
            server.close()
        server.close()  # idempotent
        assert "stopped" in repr(server)

    def test_dump_events_writes_replayable_jsonl(self, telemetry, tmp_path):
        path = dump_events(telemetry, tmp_path / "events.jsonl")
        lines = [json.loads(line)
                 for line in open(path, encoding="utf-8")]
        assert [r["name"] for r in lines] == ["pose.answered",
                                              "pose.refused"]
