"""``python -m repro.telemetry.report``: summaries, chain verdicts, exits."""

import json

import pytest

from repro.errors import ReproError
from repro.observatory.journal import AuditJournal
from repro.telemetry.report import load_jsonl, main, summarize

EVENTS = [
    {"seq": 1, "name": "pose.answered", "ts": 10.0,
     "attributes": {"requester": "epi", "rows": 2,
                    "cumulative_loss": 0.3}},
    {"seq": 2, "name": "pose.answered", "ts": 11.0,
     "attributes": {"requester": "epi", "rows": 2,
                    "cumulative_loss": 0.37}},
    {"seq": 3, "name": "pose.refused", "ts": 12.0,
     "attributes": {"requester": "advertiser",
                    "kind": "PrivacyViolation"}},
    {"seq": 4, "name": "snooperwatch.alert", "ts": 13.0,
     "attributes": {"requester": "epi", "measure": "mean",
                    "source": "lab", "width": 1.2}},
    {"seq": 5, "name": "warehouse.epoch_invalidation", "ts": 14.0,
     "attributes": {"key": "k"}},  # no requester: ignored by the summary
]


def write_events(tmp_path, events=EVENTS):
    path = tmp_path / "events.jsonl"
    path.write_text("".join(json.dumps(e) + "\n" for e in events))
    return str(path)


def write_journal(tmp_path, tamper=False):
    journal = AuditJournal(clock=lambda: 100.0)
    journal.append("epi", "fp-1", "answered", aggregated_loss=0.3)
    journal.append("epi", "fp-2", "answered", aggregated_loss=0.1)
    path = tmp_path / "journal.jsonl"
    text = journal.to_jsonl()
    if tamper:
        text = text.replace('"aggregated_loss": 0.3', '"aggregated_loss": 0.0')
    path.write_text(text)
    return str(path)


class TestSummarize:
    def test_per_requester_rows(self):
        summary = summarize(EVENTS)
        epi = summary["requesters"]["epi"]
        assert epi["poses"] == 2
        assert epi["answered"] == 2
        assert epi["alerts"] == 1
        assert epi["cumulative_disclosure"] == pytest.approx(0.37)
        assert epi["last_ts"] == 13.0
        advertiser = summary["requesters"]["advertiser"]
        assert advertiser["refused"] == 1
        assert advertiser["refusal_kinds"] == {"PrivacyViolation": 1}
        assert summary["totals"] == {
            "requesters": 2, "poses": 3, "answered": 2,
            "refused": 1, "alerts": 1,
        }

    def test_journal_is_authoritative_for_disclosure(self):
        records = [{"requester": "epi", "cumulative_loss": 0.5},
                   {"requester": "fresh", "cumulative_loss": 0.1}]
        summary = summarize(EVENTS, journal_records=records)
        assert summary["requesters"]["epi"][
            "cumulative_disclosure"] == pytest.approx(0.5)
        assert "fresh" in summary["requesters"]


class TestCli:
    def test_text_report(self, tmp_path, capsys):
        assert main([write_events(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "DISCLOSURE OBSERVATORY" in out
        assert "epi" in out and "advertiser" in out
        assert "refused[PrivacyViolation]" in out
        assert "journal chain" not in out  # no journal supplied

    def test_json_report_with_verified_journal(self, tmp_path, capsys):
        code = main([write_events(tmp_path), "--format", "json",
                     "--journal", write_journal(tmp_path)])
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["journal_chain"] == "VERIFIED"
        assert document["totals"]["poses"] == 3

    def test_tampered_journal_fails_the_run(self, tmp_path, capsys):
        code = main([write_events(tmp_path),
                     "--journal", write_journal(tmp_path, tamper=True)])
        assert code == 1
        assert "TAMPERED (first bad record seq=1)" in capsys.readouterr().out

    def test_requester_filter(self, tmp_path, capsys):
        assert main([write_events(tmp_path), "--requester", "epi",
                     "--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert list(document["requesters"]) == ["epi"]
        assert main([write_events(tmp_path), "--requester", "nobody",
                     "--format", "json"]) == 0
        assert json.loads(capsys.readouterr().out)["requesters"] == {}

    def test_unreadable_input_exits_2(self, tmp_path, capsys):
        assert main([str(tmp_path / "missing.jsonl")]) == 2
        assert "report:" in capsys.readouterr().err
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        assert main([str(bad)]) == 2

    def test_module_is_executable(self, tmp_path):
        import os
        import subprocess
        import sys
        from pathlib import Path

        import repro

        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(Path(repro.__file__).resolve().parents[1]),
             env.get("PYTHONPATH", "")]
        )
        completed = subprocess.run(
            [sys.executable, "-m", "repro.telemetry.report",
             write_events(tmp_path)],
            capture_output=True, text=True, env=env,
        )
        assert completed.returncode == 0
        assert "DISCLOSURE OBSERVATORY" in completed.stdout


class TestLoadJsonl:
    def test_skips_blank_lines_and_validates_objects(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('{"a": 1}\n\n{"b": 2}\n')
        assert load_jsonl(path) == [{"a": 1}, {"b": 2}]
        path.write_text("[1, 2]\n")
        with pytest.raises(ReproError, match="expected a JSON object"):
            load_jsonl(path)
