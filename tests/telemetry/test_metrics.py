"""Counters, gauges, histogram percentiles, and the no-op registry."""

import pytest

from repro.telemetry import NOOP_INSTRUMENT, MetricsRegistry, NoopMetrics
from repro.telemetry.metrics import Histogram


class TestInstruments:
    def test_counter_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("queries")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_counter_identity_per_name(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.counter("a") is not registry.counter("b")

    def test_gauge_last_value_wins(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("keys")
        gauge.set(3)
        gauge.set(11)
        assert gauge.value == 11


class TestHistogramPercentiles:
    def test_percentiles_on_uniform_distribution(self):
        histogram = Histogram("latency")
        for value in range(1, 101):  # 1..100
            histogram.observe(value)
        assert histogram.percentile(50) == pytest.approx(50, abs=1)
        assert histogram.percentile(95) == pytest.approx(95, abs=1)
        assert histogram.percentile(99) == pytest.approx(99, abs=1)

    def test_summary_fields(self):
        histogram = Histogram("loss")
        for value in (0.1, 0.2, 0.3, 0.4):
            histogram.observe(value)
        summary = histogram.summary()
        assert summary["count"] == 4
        assert summary["min"] == pytest.approx(0.1)
        assert summary["max"] == pytest.approx(0.4)
        assert summary["mean"] == pytest.approx(0.25)
        assert summary["p50"] == pytest.approx(0.3, abs=0.11)

    def test_empty_summary_is_zeroed(self):
        assert Histogram("empty").summary() == {
            "count": 0, "sum": 0.0, "mean": 0.0, "min": 0.0, "max": 0.0,
            "p50": 0.0, "p95": 0.0, "p99": 0.0,
        }

    def test_single_observation(self):
        histogram = Histogram("one")
        histogram.observe(42.0)
        assert histogram.percentile(50) == 42.0
        assert histogram.percentile(99) == 42.0

    def test_window_bounds_memory_but_count_is_lifetime(self):
        histogram = Histogram("windowed", max_observations=10)
        for value in range(100):
            histogram.observe(value)
        assert histogram.count == 100
        # window holds the last 10 values (90..99)
        assert histogram.percentile(0) == 90
        assert histogram.summary()["max"] == 99


class TestRegistry:
    def test_snapshot_is_plain_data(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.gauge("g").set(1.5)
        registry.histogram("h").observe(3.0)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"c": 2}
        assert snapshot["gauges"] == {"g": 1.5}
        assert snapshot["histograms"]["h"]["count"] == 1

    def test_reset_clears_everything(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.reset()
        assert registry.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }


class TestNoopMetrics:
    def test_every_instrument_is_the_shared_singleton(self):
        registry = NoopMetrics()
        assert registry.counter("a") is NOOP_INSTRUMENT
        assert registry.gauge("b") is NOOP_INSTRUMENT
        assert registry.histogram("c") is NOOP_INSTRUMENT

    def test_noop_instruments_accumulate_nothing(self):
        registry = NoopMetrics()
        registry.counter("a").inc(100)
        registry.histogram("c").observe(5.0)
        assert registry.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }
        assert NOOP_INSTRUMENT.value == 0
