"""SLO engine: objective math, multi-window burn, breach lifecycle."""

import pytest

from repro.errors import ReproError
from repro.telemetry import Telemetry
from repro.telemetry.obs.slo import (
    BURN_CEILING,
    ErrorRateObjective,
    ExactObjective,
    LatencyObjective,
    SloEngine,
    default_objectives,
)


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def make_engine(*objectives, **kwargs):
    telemetry = Telemetry(enabled=True)
    clock = FakeClock()
    kwargs.setdefault("short_window", 10.0)
    kwargs.setdefault("long_window", 60.0)
    engine = SloEngine(telemetry, objectives, clock=clock, **kwargs)
    return engine, telemetry, clock


class TestObjectives:
    def test_objective_bounds_validated(self):
        with pytest.raises(ReproError):
            LatencyObjective("x", "h", threshold_ms=1.0, objective=1.5)

    def test_latency_burn_is_bad_fraction_over_budget(self):
        engine, telemetry, _ = make_engine()
        histogram = telemetry.metrics.histogram("pose_ms")
        for value in (10.0, 10.0, 10.0, 90.0):  # 25% over threshold
            histogram.observe(value)
        objective = LatencyObjective("lat", "pose_ms",
                                     threshold_ms=50.0, objective=0.9)
        burn = objective.instantaneous_burn(telemetry.metrics)
        assert burn == pytest.approx(0.25 / 0.1)

    def test_latency_with_no_observations_is_zero(self):
        engine, telemetry, _ = make_engine()
        objective = LatencyObjective("lat", "pose_ms", threshold_ms=50.0)
        assert objective.instantaneous_burn(telemetry.metrics) == 0.0

    def test_error_rate_uses_tick_deltas(self):
        engine, telemetry, _ = make_engine()
        bad = telemetry.metrics.counter("bad")
        total = telemetry.metrics.counter("total")
        objective = ErrorRateObjective("err", "bad", "total",
                                       objective=0.9)
        # first look only establishes the baseline
        assert objective.instantaneous_burn(telemetry.metrics) == 0.0
        total.inc(10)
        bad.inc(2)
        burn = objective.instantaneous_burn(telemetry.metrics)
        assert burn == pytest.approx(0.2 / 0.1)
        # no movement since the last tick → no burn
        assert objective.instantaneous_burn(telemetry.metrics) == 0.0

    def test_exact_objective_burns_at_the_ceiling(self):
        engine, telemetry, _ = make_engine()
        counter = telemetry.metrics.counter("violations")
        objective = ExactObjective("exact", "violations")
        assert objective.instantaneous_burn(telemetry.metrics) == 0.0
        counter.inc()
        assert objective.instantaneous_burn(
            telemetry.metrics
        ) == BURN_CEILING

    def test_describe_is_json_shaped(self):
        objective = LatencyObjective("lat", "pose_ms", threshold_ms=5.0)
        info = objective.describe()
        assert info["name"] == "lat"
        assert info["kind"] == "latency"
        assert info["threshold_ms"] == 5.0


class TestEngine:
    def test_window_ordering_validated(self):
        telemetry = Telemetry(enabled=True)
        with pytest.raises(ReproError):
            SloEngine(telemetry, short_window=60.0, long_window=10.0)

    def test_breach_needs_both_windows(self):
        engine, telemetry, clock = make_engine(
            ExactObjective("exact", "violations"),
            short_window=10.0, long_window=60.0,
        )
        counter = telemetry.metrics.counter("violations")
        engine.tick()  # baseline
        clock.advance(1.0)
        counter.inc()
        status = engine.tick()
        # one hot tick: the short window is instantly hot, and with no
        # older history the long window mean is the same sample — breach.
        assert status["exact"]["breached"]
        names = [event.name for event in telemetry.events.tail(50)]
        assert "slo.breach" in names

    def test_long_window_of_calm_suppresses_a_blip(self):
        engine, telemetry, clock = make_engine(
            ErrorRateObjective("err", "bad", "total", objective=0.98),
            short_window=10.0, long_window=60.0,
        )
        bad = telemetry.metrics.counter("bad")
        total = telemetry.metrics.counter("total")
        # 50s of calm history: traffic flows, nothing fails
        for _ in range(50):
            total.inc(10)
            engine.tick()
            clock.advance(1.0)
        bad.inc(1)  # one fully-bad tick: burn 1.0 / 0.02 = 50
        total.inc(1)
        status = engine.tick()
        # short window is hot but the long-window mean stays dilute
        assert status["err"]["burn_short"] > engine.burn_factor
        assert status["err"]["burn_long"] < engine.burn_factor
        assert not status["err"]["breached"]

    def test_recovery_event_after_breach(self):
        engine, telemetry, clock = make_engine(
            ExactObjective("exact", "violations"),
            short_window=5.0, long_window=10.0,
        )
        counter = telemetry.metrics.counter("violations")
        engine.tick()
        clock.advance(1.0)
        counter.inc()
        assert engine.tick()["exact"]["breached"]
        # burn history ages out of both windows
        for _ in range(15):
            clock.advance(1.0)
            engine.tick()
        assert not engine.status()["exact"]["breached"]
        names = [event.name for event in telemetry.events.tail(100)]
        assert "slo.recovered" in names

    def test_on_breach_callback_fires_once_per_transition(self):
        engine, telemetry, clock = make_engine(
            ExactObjective("exact", "violations"),
        )
        calls = []
        engine.on_breach(lambda name, entry: calls.append(name))
        counter = telemetry.metrics.counter("violations")
        engine.tick()
        clock.advance(1.0)
        counter.inc()
        engine.tick()
        clock.advance(1.0)
        counter.inc()
        engine.tick()  # still breached: no second transition
        assert calls == ["exact"]

    def test_burn_gauges_are_exported(self):
        engine, telemetry, clock = make_engine(
            ExactObjective("exact", "violations"),
        )
        engine.tick()
        gauges = telemetry.metrics.snapshot()["gauges"]
        assert "obs.slo.burn_short.exact" in gauges

    def test_add_and_status(self):
        engine, telemetry, _ = make_engine()
        engine.add(LatencyObjective("lat", "pose_ms", threshold_ms=5.0))
        engine.tick()
        status = engine.status()
        assert set(status) == {"lat"}
        assert status["lat"]["kind"] == "latency"

    def test_ticker_thread_lifecycle(self):
        engine, _, _ = make_engine()
        engine.start(interval=60.0)
        engine.start(interval=60.0)
        assert engine.running
        engine.stop()
        assert not engine.running


class TestDefaultObjectives:
    def test_cover_the_mediators_guarantees(self):
        names = {objective.name for objective in default_objectives()}
        assert names == {"pose-latency", "fanout-availability",
                        "sink-delivery", "refusal-correctness"}

    def test_tick_cleanly_on_a_fresh_system(self):
        telemetry = Telemetry(enabled=True)
        engine = SloEngine(telemetry, default_objectives())
        status = engine.tick()
        assert not any(entry["breached"] for entry in status.values())
