"""Overhead guards: disabled observability must cost (almost) nothing.

The ISSUE pins two properties: with everything off, the query path holds
only no-op singletons — no event objects, no sink, no journal, empty
metrics; with everything on, a 100-pose loop finishes within a generous
wall-clock bound (the point is catching pathological regressions like a
per-pose SLSQP solve on non-aggregate queries, not micro-benchmarking).
"""

import time

import pytest

from repro import PrivateIye
from repro.relational import Table
from repro.telemetry import NOOP
from repro.telemetry.events import NOOP_EVENTS, NoopEventLog

POLICIES = """
VIEW clinic_private { PRIVATE //patient/hba1c FORM aggregate; }
POLICY clinic DEFAULT deny {
    ALLOW //patient/hba1c FOR public-health-research FORM aggregate MAXLOSS 0.6;
    ALLOW //patient/city FOR research;
}
"""

AGGREGATE = (
    "SELECT AVG(//patient/hba1c) AS mean "
    "PURPOSE outbreak-surveillance MAXLOSS 0.6"
)


def build_system(**kwargs):
    system = PrivateIye(**kwargs)
    system.load_policies(POLICIES, view_source={"clinic_private": "clinic"})
    system.add_relational_source("clinic", Table.from_dicts(
        "patients",
        [{"hba1c": 55.0 + i % 30, "city": ["pittsburgh", "butler"][i % 2]}
         for i in range(40)],
    ))
    return system


class TestDisabledPathIsInert:
    def test_disabled_system_holds_only_noop_singletons(self):
        system = build_system()
        assert system.telemetry is NOOP
        assert system.telemetry.events is NOOP_EVENTS
        assert isinstance(system.telemetry.events, NoopEventLog)
        assert system.telemetry.events.sink is None
        assert system.engine.observatory is None

    def test_disabled_poses_record_nothing(self):
        system = build_system()
        for _ in range(5):
            system.query(AGGREGATE, requester="epi")
        assert system.metrics_snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }
        assert system.events_tail() == []
        assert len(system.telemetry.events) == 0
        assert system.telemetry.events.mark() == 0  # nothing ever emitted
        assert system.explain_last() is None
        assert system.audit_journal() is None

    def test_noop_emit_allocates_no_event(self):
        before = NOOP_EVENTS.mark()
        result = NOOP_EVENTS.emit("pose.answered", requester="epi", rows=9)
        assert result is None
        assert NOOP_EVENTS.mark() == before
        assert NOOP_EVENTS.events() == []


class TestEnabledPathIsBounded:
    #: Deliberately generous: CI machines vary wildly, and the guarded
    #: failure mode (accidental per-pose bound solves, synchronous disk
    #: flushes on the query path) costs orders of magnitude more.
    WALL_CLOCK_BOUND_S = 60.0
    POSES = 100

    def test_hundred_pose_loop_with_everything_on(self, tmp_path):
        system = build_system(
            telemetry=True, observatory=True,
            events=str(tmp_path / "events.jsonl"),
        )
        started = time.perf_counter()
        for i in range(self.POSES):
            system.query(AGGREGATE, requester=f"epi-{i % 7}")
        elapsed = time.perf_counter() - started
        assert elapsed < self.WALL_CLOCK_BOUND_S, (
            f"{self.POSES} poses took {elapsed:.1f}s with observability on"
        )
        journal = system.audit_journal()
        assert len(journal) == self.POSES
        assert journal.verify_chain() == (True, None)
        answered = system.telemetry.events.events(name="pose.answered")
        assert len(answered) == self.POSES
        assert system.telemetry.events.dropped_events == 0
        snapshot = system.metrics_snapshot()
        assert snapshot["counters"]["mediator.queries_answered"] == self.POSES
        assert snapshot["histograms"]["mediator.pose_ms"][
            "count"] == pytest.approx(self.POSES)
