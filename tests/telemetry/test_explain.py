"""End-to-end explain reports: the privacy ledger of a ``pose()`` call."""

import pytest

from repro import AuditRefusal, PrivacyViolation, PrivateIye
from repro.errors import PathError, Refusal
from repro.relational import Table
from repro.telemetry import NOOP, NOOP_REPORT, Telemetry, resolve_telemetry

POLICIES = """
VIEW clinic_private {
    PRIVATE //patient/ssn;
    PRIVATE //patient/hba1c FORM aggregate;
}
VIEW lab_private {
    PRIVATE //patient/ssn;
    PRIVATE //patient/hba1c FORM aggregate;
}

POLICY clinic DEFAULT deny {
    DENY //patient/ssn FOR *;
    ALLOW //patient/hba1c FOR public-health-research FORM aggregate MAXLOSS 0.6;
    ALLOW //patient/city FOR research;
}

POLICY lab DEFAULT deny {
    DENY //patient/ssn FOR *;
    ALLOW //patient/hba1c FOR public-health-research FORM aggregate MAXLOSS 0.6;
    ALLOW //patient/city FOR research;
}
"""

AGGREGATE = (
    "SELECT AVG(//patient/hba1c) AS mean "
    "PURPOSE outbreak-surveillance MAXLOSS 0.6"
)


def build_system(telemetry=True):
    system = PrivateIye(telemetry=telemetry)
    system.load_policies(
        POLICIES,
        view_source={"clinic_private": "clinic", "lab_private": "lab"},
    )
    clinic_rows = [
        {"ssn": f"1-{i:03d}", "hba1c": 60.0 + i % 25,
         "city": ["pittsburgh", "butler"][i % 2]}
        for i in range(30)
    ]
    lab_rows = [
        {"ssn": f"2-{i:03d}", "hba1c": 65.0 + i % 20,
         "city": ["pittsburgh", "erie"][i % 2]}
        for i in range(20)
    ]
    system.add_relational_source(
        "clinic", Table.from_dicts("patients", clinic_rows)
    )
    system.add_relational_source(
        "lab", Table.from_dicts("patients", lab_rows)
    )
    return system


class TestAnsweredQueryLedger:
    def test_report_covers_every_pipeline_stage(self):
        system = build_system()
        result = system.query(AGGREGATE, requester="epi")
        report = system.explain_last()

        assert report.status == "answered"
        assert report.requester == "epi"
        assert report.fragmentation["sources"] == ["clinic", "lab"]
        assert report.fragmentation["attributes"] == ["hba1c"]
        assert report.sequence_guard == {"verdict": "pass", "reason": None}
        assert report.warehouse["from_cache"] is False
        assert report.warehouse["source_calls"] == 2
        for name in ("clinic", "lab"):
            outcome = report.sources[name]
            assert outcome["outcome"] == "answered"
            assert outcome["loss_budget"] == pytest.approx(0.6)
            assert 0.0 <= outcome["privacy_loss"] <= 1.0
            assert outcome["strategy"]
        assert report.integration["rows"] == len(result.rows)
        assert report.control["aggregated_loss"] == pytest.approx(
            result.aggregated_loss
        )
        assert report.control["max_loss"] == pytest.approx(0.6)
        assert report.control["within_budget"] is True
        assert report.duration_ms > 0.0
        assert report.to_dict()["status"] == "answered"

    def test_second_identical_query_is_a_warehouse_hit(self):
        system = build_system()
        system.query(AGGREGATE, requester="epi")
        system.query(AGGREGATE, requester="epi")
        report = system.explain_last()
        assert report.warehouse["from_cache"] is True
        # cache hit: the sources were never consulted this time
        assert report.sources == {}
        snapshot = system.metrics_snapshot()
        assert snapshot["counters"]["warehouse.hits"] == 1
        assert snapshot["counters"]["warehouse.misses"] == 1

    def test_explain_last_filters_by_requester(self):
        system = build_system()
        system.query(AGGREGATE, requester="alice")
        system.query(
            "SELECT //patient/city PURPOSE research", requester="bob"
        )
        assert system.explain_last("alice").requester == "alice"
        assert system.explain_last().requester == "bob"
        assert system.explain_last("nobody") is None


class TestRefusedQueryLedger:
    def test_source_refusals_name_source_kind_and_reason(self):
        system = build_system()
        with pytest.raises(PrivacyViolation):
            system.query(
                "SELECT AVG(//patient/hba1c) PURPOSE marketing",
                requester="advertiser",
            )
        report = system.explain_last()
        assert report.status == "refused"
        assert report.refusal["kind"] == "PrivacyViolation"
        assert report.refusing_sources() == ["clinic", "lab"]
        assert report.sources["clinic"]["kind"] == "PrivacyViolation"
        assert "clinic" in report.sources["clinic"]["reason"]
        assert report.warehouse["from_cache"] is False

    def test_guard_refusal_records_verdict_and_reason(self):
        system = build_system()
        system.engine.max_distinct_probes = 1
        probe = (
            "SELECT AVG(//patient/hba1c) AS mean "
            "WHERE //patient/city = '{city}' "
            "PURPOSE outbreak-surveillance MAXLOSS 0.6"
        )
        system.query(probe.format(city="pittsburgh"), requester="snooper")
        with pytest.raises(AuditRefusal):
            system.query(probe.format(city="butler"), requester="snooper")
        report = system.explain_last()
        assert report.status == "refused"
        assert report.refusal["kind"] == "AuditRefusal"
        assert report.sequence_guard["verdict"] == "refused"
        # the guard's reason names the probed attribute and the limit
        assert "hba1c" in report.sequence_guard["reason"]
        assert "distinct" in report.sequence_guard["reason"]
        assert report.refusal["reason"] == report.sequence_guard["reason"]

    def test_refusal_kind_distinguishes_path_errors_from_policy(self):
        system = build_system()
        original = system.source("lab").answer

        def broken(piql, **kwargs):
            raise PathError("lab cannot resolve //patient/hba1c")

        system.source("lab").answer = broken
        try:
            result = system.query(AGGREGATE, requester="epi")
        finally:
            system.source("lab").answer = original

        refusal = result.refused_sources["lab"]
        assert isinstance(refusal, Refusal)
        assert refusal.kind == "PathError"
        assert not refusal.is_policy
        assert refusal == "lab cannot resolve //patient/hba1c"  # str compat
        report = system.explain_last()
        assert report.sources["lab"]["kind"] == "PathError"
        assert report.sources["clinic"]["outcome"] == "answered"

    def test_policy_refusal_kind_is_policy(self):
        refusal = Refusal.from_exception(PrivacyViolation("nope"))
        assert refusal.kind == "PrivacyViolation"
        assert refusal.is_policy
        assert str(refusal) == "nope"


class TestDisabledTelemetry:
    def test_noop_mode_accumulates_no_report_state(self):
        system = build_system(telemetry=False)
        system.query(AGGREGATE, requester="epi")
        with pytest.raises(PrivacyViolation):
            system.query(
                "SELECT AVG(//patient/hba1c) PURPOSE marketing",
                requester="ad",
            )
        assert system.explain_last() is None
        assert system.last_trace() is None
        assert system.metrics_snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }
        telemetry = system.telemetry
        assert telemetry is NOOP
        assert len(telemetry.explain) == 0
        # every begin() hands back the same stateless singleton
        assert telemetry.explain.begin("q", "r", None) is NOOP_REPORT

    def test_default_is_disabled(self, monkeypatch):
        monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
        system = build_system(telemetry=None)
        assert system.telemetry is NOOP
        assert not system.telemetry.enabled

    def test_env_flag_enables(self, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        telemetry = resolve_telemetry(None)
        assert telemetry.enabled
        assert telemetry is not NOOP

    def test_resolve_passes_instances_through(self):
        telemetry = Telemetry(enabled=True)
        assert resolve_telemetry(telemetry) is telemetry
        with pytest.raises(TypeError):
            resolve_telemetry("yes")


class TestSharedTelemetry:
    def test_sources_adopt_the_engine_instance(self):
        system = build_system()
        assert system.source("clinic").telemetry is system.telemetry
        assert system.source("lab").telemetry is system.telemetry
        assert system.engine.warehouse.telemetry is system.telemetry

    def test_trace_nests_source_stages_under_pose(self):
        system = build_system()
        system.query(AGGREGATE, requester="epi")
        root = system.last_trace()
        assert root.name == "mediator.pose"
        names = [span.name for span in root.walk()]
        for expected in ("mediator.fragment", "mediator.sequence_guard",
                         "mediator.warehouse", "source.answer",
                         "source.rewrite", "source.execute",
                         "mediator.integrate", "mediator.privacy_control"):
            assert expected in names
        assert names.count("source.answer") == 2
