"""Unit tests for the release planner."""

import pytest

from repro.data import FIGURE1
from repro.errors import ReproError
from repro.inference import InferenceGuard, ReleasePlanner


@pytest.fixture(scope="module")
def planner():
    return ReleasePlanner(InferenceGuard(min_interval_width=5.0, starts=2))


@pytest.fixture(scope="module")
def figure1_plan(planner):
    matrix = [list(row) for row in FIGURE1.consistent_matrix]
    return planner.plan(
        list(FIGURE1.measures), list(FIGURE1.sources), matrix
    )


class TestPlanner:
    def test_figure1_full_release_rejected(self, figure1_plan):
        chosen, rejected = figure1_plan
        rejected_labels = [plan.label for plan in rejected]
        assert "full-precision+sigma" in rejected_labels

    def test_a_safe_release_found(self, figure1_plan):
        chosen, _rejected = figure1_plan
        assert chosen is not None
        assert chosen.safe
        # For the 5-point guard, rounding means and sigmas to integers
        # already widens every inferable interval enough.
        assert chosen.label == "integer+sigma"

    def test_chosen_release_maximizes_utility(self, figure1_plan, planner):
        chosen, rejected = figure1_plan
        # everything rejected has strictly higher utility than the choice
        assert all(plan.utility > chosen.utility for plan in rejected)

    def test_ladder_is_utility_ordered(self, planner):
        matrix = [list(row) for row in FIGURE1.consistent_matrix]
        utilities = [
            utility for _label, _published, utility in planner.candidates(
                list(FIGURE1.measures), list(FIGURE1.sources), matrix
            )
        ]
        assert utilities == sorted(utilities, reverse=True)

    def test_matrix_validation(self, planner):
        with pytest.raises(ReproError):
            planner.plan(["m1", "m2"], ["s1"], [[1.0]])

    def test_very_strict_guard_rejects_everything(self):
        strict = ReleasePlanner(
            InferenceGuard(min_interval_width=99.0, starts=1)
        )
        matrix = [list(row) for row in FIGURE1.consistent_matrix]
        chosen, rejected = strict.plan(
            list(FIGURE1.measures), list(FIGURE1.sources), matrix
        )
        assert chosen is None
        assert len(rejected) == 5
