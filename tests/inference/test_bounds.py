"""Unit tests for the bound solver, the snooper, and the guard.

The headline test reproduces Figure 1(d): the inferred intervals must agree
with the paper's published intervals to within 1.5 percentage points per
endpoint (the residual is multistart optimization slack).
"""

import pytest

from repro.data import FIGURE1
from repro.errors import ReproError
from repro.inference import (
    AggregateConstraints,
    InferenceGuard,
    PublishedAggregates,
    SnoopingSource,
    cell_bounds,
)
from repro.testing import figure1_published


class TestConstraints:
    def test_hidden_cells(self):
        constraints = AggregateConstraints(
            n_rows=2,
            n_cols=3,
            known_columns={0: [1.0, 2.0]},
            row_means=[1.0, 2.0],
        )
        assert constraints.hidden_cells == [(0, 1), (0, 2), (1, 1), (1, 2)]

    def test_validation(self):
        with pytest.raises(ReproError):
            AggregateConstraints(0, 3, {}, [])
        with pytest.raises(ReproError):
            AggregateConstraints(2, 3, {}, [1.0])  # wrong row_means length
        with pytest.raises(ReproError):
            AggregateConstraints(2, 3, {5: [1.0, 2.0]}, [1.0, 2.0])
        with pytest.raises(ReproError):
            AggregateConstraints(2, 3, {0: [1.0]}, [1.0, 2.0])

    def test_no_hidden_cells_empty_result(self):
        constraints = AggregateConstraints(
            1, 2, {0: [1.0], 1: [2.0]}, row_means=[1.5]
        )
        assert cell_bounds(constraints) == {}


class TestMeanOnlyBounds:
    def test_two_columns_mean_pins_value(self):
        # one known column + exact mean → the hidden value is determined
        constraints = AggregateConstraints(
            n_rows=1,
            n_cols=2,
            known_columns={0: [40.0]},
            row_means=[50.0],
            tolerance=0.0001,
        )
        (low, high) = cell_bounds(constraints, starts=3)[(0, 1)]
        assert low == pytest.approx(60.0, abs=0.1)
        assert high == pytest.approx(60.0, abs=0.1)

    def test_three_columns_mean_leaves_slack(self):
        constraints = AggregateConstraints(
            n_rows=1,
            n_cols=3,
            known_columns={0: [40.0]},
            row_means=[50.0],
            tolerance=0.0001,
        )
        (low, high) = cell_bounds(constraints, starts=4)[(0, 1)]
        # x1 + x2 = 110, both in [0,100] → each in [10, 100]
        assert low == pytest.approx(10.0, abs=0.5)
        assert high == pytest.approx(100.0, abs=0.5)


class TestFigure1Reproduction:
    def test_published_tables_match_paper(self):
        published = PublishedAggregates.from_matrix(
            FIGURE1.measures,
            FIGURE1.sources,
            FIGURE1.consistent_matrix,
            precision=1,
        )
        assert published.row_means == list(FIGURE1.row_means)
        assert published.row_stds == list(FIGURE1.row_stds)
        assert published.source_means == list(FIGURE1.source_means)

    def test_figure1d_intervals(self):
        snooper = SnoopingSource(figure1_published(), "HMO1", FIGURE1.hmo1_values)
        inferred = snooper.infer(starts=6, seed=0)
        assert set(inferred) == set(FIGURE1.paper_intervals)
        for cell, (paper_low, paper_high) in FIGURE1.paper_intervals.items():
            low, high = inferred[cell]
            assert low == pytest.approx(paper_low, abs=1.5), cell
            assert high == pytest.approx(paper_high, abs=1.5), cell

    def test_intervals_bracket_consistent_matrix(self):
        snooper = SnoopingSource(figure1_published(), "HMO1", FIGURE1.hmo1_values)
        inferred = snooper.infer(starts=6, seed=0)
        for (measure, source), (low, high) in inferred.items():
            i = FIGURE1.measures.index(measure)
            j = FIGURE1.sources.index(source)
            truth = FIGURE1.consistent_matrix[i][j]
            assert low - 0.2 <= truth <= high + 0.2, (measure, source)

    def test_snooper_validation(self):
        published = figure1_published()
        with pytest.raises(ReproError):
            SnoopingSource(published, "HMO9", FIGURE1.hmo1_values)
        with pytest.raises(ReproError):
            SnoopingSource(published, "HMO1", [75.0])


class TestGuard:
    def test_figure1_release_blocked(self):
        # Figure 1's aggregates ARE a breach: some intervals are ~1pt wide.
        guard = InferenceGuard(min_interval_width=5.0, starts=2)
        matrix = [list(row) for row in FIGURE1.consistent_matrix]
        decision = guard.check(figure1_published(), matrix)
        assert not decision.safe
        assert decision.narrowest_width() < 5.0
        assert any(v[0] == "HMO1" for v in decision.violations)

    def test_coarse_release_allowed(self):
        # Publishing to 0 decimals (tolerance 0.5) with no stds leaves
        # intervals wide enough to pass a loose guard.
        published = PublishedAggregates(
            FIGURE1.measures,
            FIGURE1.sources,
            [round(m) for m in FIGURE1.row_means],
            [round(s) for s in FIGURE1.row_stds],
            [round(m) for m in FIGURE1.source_means],
            precision=0,
        )
        strict = InferenceGuard(min_interval_width=2.0, starts=2)
        matrix = [list(row) for row in FIGURE1.consistent_matrix]
        decision = strict.check(published, matrix)
        assert decision.narrowest_width() > 1.0

    def test_guard_validation(self):
        with pytest.raises(ReproError):
            InferenceGuard(min_interval_width=0.0)
