"""REP002 fixture: refusals caught inside a loop and retried or ignored."""

from repro.errors import AuditRefusal, PrivacyViolation


def retries(sources):
    answers = []
    for source in sources:
        try:
            answers.append(source.answer())
        except PrivacyViolation:
            continue
    return answers


def ignores(sources):
    for source in sources:
        try:
            source.answer()
        except AuditRefusal:
            pass


def records_then_stops(sources, refused):
    answers = []
    for source in sources:
        try:
            answers.append(source.answer())
        except PrivacyViolation as refusal:
            refused.append(refusal)  # recorded, not retried: fine
    return answers


def outside_any_loop(source):
    try:
        return source.answer()
    except PrivacyViolation:
        return None  # a single catch is not a retry
