"""REP008 fixture: diagnostics bypassing the structured event log."""

import logging
import sys
from logging import getLogger


def announce(message):
    print("mediator:", message)
    sys.stderr.write(message + "\n")
    sys.stdout.flush()
    logger = getLogger(__name__)
    return logging, logger


def fine(events, message):
    events.emit("pose.note", detail=message)  # fine: the event log
    if not message:
        sys.exit(2)  # fine: sys use that is not a stdio stream
    return sys.maxsize  # fine: likewise


def justified(message):
    print(message)  # repro-lint: disable=REP008 -- CLI rendering for humans
