"""REP005 fixture: bare except and silently swallowed broad handlers."""


def bare(action):
    try:
        return action()
    except:
        return None


def swallowed(action):
    try:
        action()
    except Exception:
        pass


def recorded(action, log):
    try:
        action()
    except Exception as error:
        log.append(error)  # the handler does something: fine


def narrow(action):
    try:
        action()
    except KeyError:
        pass  # narrow catches may be deliberately quiet
