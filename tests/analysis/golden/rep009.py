# REP009 fixture: undocumented public persistence API.  No module
# docstring on purpose — the missing module contract is finding #1.


class Backend:
    def append(self, record):
        return record

    def load(self):
        """Documented: states what the loader guarantees.  Fine."""
        return None

    def _drain(self):
        return ()  # underscore-prefixed helper: exempt


class Documented:
    """Documented class: fine."""

    def flush(self):
        return True


def recover_all(stores):
    return [store for store in stores]


def _internal():
    return 0


def justified():  # repro-lint: disable=REP009 -- contract inherited from ABC
    return 1
