"""REP001 fixture: shared state mutated outside the owning lock."""

import threading


class Registry:
    def __init__(self):
        self._lock = threading.Lock()
        self._items = {}
        self._count = 0
        self._order = []

    def record(self, key, value):
        self._items[key] = value

    def bump(self):
        self._count += 1

    def drop(self, key):
        self._items.pop(key, None)

    def safe_record(self, key, value):
        with self._lock:
            self._items[key] = value
            self._order.append(key)

    def safe_nested(self, key):
        with self._lock:
            if key not in self._items:
                self._order.append(key)

    def local_state_is_fine(self):
        seen = []
        seen.append("x")
        return seen


class Lockless:
    def __init__(self):
        self.items = {}

    def record(self, key, value):
        self.items[key] = value  # no lock owned: REP001 does not apply
