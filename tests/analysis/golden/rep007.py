"""REP007 fixture: ad-hoc dict caches that belong in repro.cache."""

from collections import OrderedDict, defaultdict


class Resolver:
    def __init__(self, seed_entries):
        self._cache = {}
        self.memo = dict()
        self._plan_cache = OrderedDict()
        self.rewrite_memo = defaultdict(list)
        self.sources = {}  # fine: not cache-named
        self.cache_copy = dict(seed_entries)  # fine: copies existing data
        self.memo_seeded = {"warm": 1}  # fine: seeded, not empty storage


_FINGERPRINT_CACHE = {}


def lookup(key, cache=None):
    cache = cache if cache is not None else _FINGERPRINT_CACHE
    return cache.get(key)
