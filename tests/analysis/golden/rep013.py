"""REP013 fixture: telemetry emission inside observatory hot paths.

The expected module name is one of ``OBS_HOT_MODULES`` — the rule is
scoped to the profiler/recorder modules whose hot functions run once
per sample or once per emitted event.
"""


def sample_once(self):
    stages = self.telemetry.tracer.active_stages()
    self.telemetry.events.emit("obs.sample", stages=len(stages))
    self._samples_total.inc()
    return stages


def _on_event(self, event):
    with self.telemetry.tracer.span("obs.listener", name=event.name):
        return event.name


def _run(self):
    while not self._stop.wait(self.period):
        self.sink.offer(self.sample_once())


def dump(self, reason="manual"):
    bundle = self.assemble(reason)
    self.telemetry.events.emit("obs.flight_recorder.dump",
                               seq=bundle["seq"])
    return bundle


def _on_signal(self, signum, frame):
    self.dump(reason="signal", force=True)


def snapshot_totals(self):
    totals = {}
    while self.pending:
        stage, count = self.pending.pop()
        totals[stage] = totals.get(stage, 0) + count
        self.counter.inc()
    return totals


def _on_breach(self, name, entry):
    self.telemetry.events.emit("slo.echo", slo=name)  # repro-lint: disable=REP013 -- pinned legacy path exercised by the suppression test
