"""REP004 fixture: a substrate importing higher layers at module level.

The golden harness lints this file as module ``repro.metrics.rep004``
(layer ``metrics``, rank 10).
"""

import repro.core.system

from repro.errors import ReproError
from repro.mediator.engine import MediationEngine
from repro.metrics.privacy_loss import compound_loss


def lazy_is_sanctioned():
    from repro.mediator import control

    return control
