"""REP012 fixture: per-row Python loops in a vectorized kernel module.

The expected module name is one of ``KERNEL_MODULES`` — the rule is
scoped to exactly the modules that carry a vectorized hot path.
"""


def class_sizes(records, quasi_identifiers):
    sizes = {}
    for record in records:
        key = tuple(record.get(attr) for attr in quasi_identifiers)
        sizes[key] = sizes.get(key, 0) + 1
    return sizes


def ages(records):
    return [record["age"] for record in records]


def spreads(rows):
    return {max(row) - min(row) for row in rows}


def indexed(records):
    return {i: record for i, record in enumerate(records)}


def widest(members):
    return max(member["age"] for member in members)


def reference_sizes(records):
    counts = []
    for record in records:  # repro-lint: disable=REP012 -- scalar reference path
        counts.append(record)
    return counts


def over_columns(columns):
    return [column.upper() for column in columns]


def bounded(limits):
    for low, high in limits:
        if low > high:
            return False
    return True
