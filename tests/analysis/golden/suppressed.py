"""Suppression fixture: directives silence findings, with and without why."""


def same_line():
    raise ValueError("boom")  # repro-lint: disable=REP003 -- exercises same-line form


def comment_above():
    # repro-lint: disable=REP003 -- exercises the comment-above form
    raise TypeError("boom")


def comment_block_above():
    # A longer explanation that spans several comment lines before the
    # statement it suppresses.
    # repro-lint: disable=REP003 -- exercises multi-line comment blocks
    # (the directive must reach past trailing comments too)
    raise KeyError("boom")


def unjustified():
    raise IndexError("boom")  # repro-lint: disable=REP003
