"""REP003 fixture: builtin exceptions raised in library code."""


def coerce(value):
    if value is None:
        raise ValueError("value must not be None")
    return value


def lookup(mapping, key):
    if key not in mapping:
        raise KeyError(key)
    return mapping[key]


def abstract():
    raise NotImplementedError  # exempt: abstract-method convention


def reraise(error):
    raise  # bare re-raise keeps the original type: fine
