"""REP006 fixture: mutable default arguments."""

from collections import defaultdict


def collect(item, bucket=[]):
    bucket.append(item)
    return bucket


def tally(counts={}, labels=set()):
    return counts, labels


def keyword_only(*, history=list(), index=defaultdict(int)):
    return history, index


def fine(items=None, fallback=(), name="x"):
    return items if items is not None else list(fallback)
