"""Golden-file tests for repro-lint (repro.analysis.lint).

Each ``golden/repNNN.py`` fixture contains violations *and* idiomatic
negative cases for one rule; ``golden/repNNN.expected.json`` freezes the
exact ``(code, line)`` findings.  Regenerate an expected file only after
reviewing the new findings by hand — that review is the point of golden
files.
"""

import json
from pathlib import Path

import pytest

from repro.analysis.lint import all_rules, lint_paths, lint_source
from repro.analysis.lint.cli import main
from repro.analysis.lint.core import (
    Finding,
    Suppressions,
    module_name_for,
    rule,
)
from repro.analysis.lint.reporters import render_json, render_text
from repro.errors import ReproError

HERE = Path(__file__).resolve().parent
GOLDEN = HERE / "golden"
REPO_ROOT = HERE.parents[1]
FIXTURES = sorted(GOLDEN.glob("rep*.py"))


def lint_fixture(path):
    expected = json.loads(path.with_suffix(".expected.json").read_text())
    findings, suppressed = lint_source(
        path.read_text(), path=path, module=expected["module"]
    )
    return findings, suppressed, expected


class TestGoldenFixtures:
    @pytest.mark.parametrize("path", FIXTURES, ids=lambda p: p.stem)
    def test_fixture_matches_expected(self, path):
        findings, suppressed, expected = lint_fixture(path)
        got = [{"code": f.code, "line": f.line} for f in findings]
        assert got == expected["findings"]
        assert suppressed == expected["suppressed"]

    def test_every_rule_has_a_fixture(self):
        covered = {path.stem.upper() for path in FIXTURES}
        assert covered == {lint_rule.code for lint_rule in all_rules()}


class TestSuppressions:
    def test_suppression_fixture_is_fully_silenced(self):
        path = GOLDEN / "suppressed.py"
        findings, suppressed = lint_source(
            path.read_text(), path=path, module="repro.golden.suppressed"
        )
        assert findings == []
        assert suppressed == 4

    def test_unjustified_directives_are_tracked(self):
        path = GOLDEN / "suppressed.py"
        suppressions = Suppressions(path.read_text().splitlines())
        assert suppressions.unjustified == [(22, ["REP003"])]

    def test_directive_only_covers_named_codes(self):
        source = (
            "def f():\n"
            "    raise ValueError('x')  # repro-lint: disable=REP005 -- wrong code\n"
        )
        findings, suppressed = lint_source(source, module="repro.x.y")
        assert [f.code for f in findings] == ["REP003"]
        assert suppressed == 0

    def test_directive_suppresses_multiple_codes(self):
        source = (
            "def f(bucket=[]):\n"
            "    raise ValueError('x')  # repro-lint: disable=REP003,REP006 -- both\n"
        )
        # REP006 points at line 1, so only REP003 (line 2) is covered
        findings, _ = lint_source(source, module="repro.x.y")
        assert [f.code for f in findings] == ["REP006"]


class TestTreeInvariants:
    def test_src_tree_is_lint_clean(self):
        findings, files_checked, _suppressed = lint_paths(
            [REPO_ROOT / "src" / "repro"]
        )
        assert findings == [], render_text(findings, files_checked, 0)
        assert files_checked > 100  # the whole package was actually walked

    def test_module_name_resolution(self):
        engine = REPO_ROOT / "src" / "repro" / "mediator" / "engine.py"
        package = REPO_ROOT / "src" / "repro" / "__init__.py"
        assert module_name_for(engine) == "repro.mediator.engine"
        assert module_name_for(package) == "repro"


class TestRep012Scoping:
    """REP012 fires only inside the vectorized kernel modules."""

    SOURCE = "def f(records):\n    return [r for r in records]\n"

    def test_kernel_module_is_flagged(self):
        findings, _ = lint_source(
            self.SOURCE, module="repro.anonymity.mondrian"
        )
        assert [f.code for f in findings] == ["REP012"]

    def test_non_kernel_module_is_exempt(self):
        for module in ("repro.mediator.engine", "repro.anonymity.lattice",
                       "repro.golden.rep012"):
            findings, _ = lint_source(self.SOURCE, module=module)
            assert findings == [], module


class TestRep013Scoping:
    """REP013 fires only inside the observatory hot modules."""

    SOURCE = ("def _on_event(self, event):\n"
              "    self.telemetry.events.emit('echo', name=event.name)\n")

    def test_obs_hot_module_is_flagged(self):
        findings, _ = lint_source(
            self.SOURCE, module="repro.telemetry.obs.recorder"
        )
        assert [f.code for f in findings] == ["REP013"]

    def test_other_modules_are_exempt(self):
        for module in ("repro.telemetry.obs.slo", "repro.mediator.engine",
                       "repro.golden.rep013"):
            findings, _ = lint_source(self.SOURCE, module=module)
            assert findings == [], module

    def test_cold_paths_in_hot_modules_are_exempt(self):
        source = ("def dump(self, reason):\n"
                  "    self.telemetry.events.emit('dumped', reason=reason)\n")
        findings, _ = lint_source(
            source, module="repro.telemetry.obs.profiler"
        )
        assert findings == []


class TestFramework:
    def test_rule_catalog(self):
        codes = [lint_rule.code for lint_rule in all_rules()]
        assert codes == ["REP001", "REP002", "REP003", "REP004",
                         "REP005", "REP006", "REP007", "REP008",
                         "REP009", "REP012", "REP013"]

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ReproError, match="duplicate"):
            rule("REP001", "again")(lambda context: iter(()))

    def test_select_filters_rules(self):
        path = GOLDEN / "rep006.py"
        findings, _ = lint_source(
            path.read_text(), path=path,
            module="repro.golden.rep006", select={"REP005"},
        )
        assert findings == []


class TestReporters:
    def test_text_report_shape(self):
        finding = Finding("REP003", "raise ValueError", "a.py", 3, 4)
        text = render_text([finding], files_checked=2, suppressed=1)
        assert "a.py:3:4: REP003 raise ValueError" in text
        assert "1 finding(s) in 2 file(s), 1 suppressed" in text

    def test_json_report_round_trips(self):
        finding = Finding("REP005", "bare except", "b.py", 7)
        data = json.loads(render_json([finding], 1, 0))
        assert data["summary"] == {
            "findings": 1, "files_checked": 1, "suppressed": 0,
        }
        assert data["findings"][0]["code"] == "REP005"
        assert data["findings"][0]["line"] == 7


class TestCli:
    def test_findings_exit_one(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("try:\n    pass\nexcept:\n    pass\n")
        assert main([str(bad)]) == 1
        assert "REP005" in capsys.readouterr().out

    def test_clean_file_exits_zero(self, tmp_path, capsys):
        good = tmp_path / "good.py"
        good.write_text("def f():\n    return 1\n")
        assert main([str(good)]) == 0
        assert "0 finding(s) in 1 file(s)" in capsys.readouterr().out

    def test_json_format(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(x=[]):\n    return x\n")
        assert main([str(bad), "--format=json"]) == 1
        data = json.loads(capsys.readouterr().out)
        assert data["summary"]["findings"] == 1

    def test_select_restricts_rules(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(x=[]):\n    return x\n")
        assert main([str(bad), "--select=REP005"]) == 0
        capsys.readouterr()

    def test_unknown_select_exits_two(self, tmp_path, capsys):
        assert main([str(tmp_path), "--select=REP999"]) == 2
        assert "unknown rule code" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("REP001", "REP006"):
            assert code in out
