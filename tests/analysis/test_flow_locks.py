"""Unit tests for the whole-program lockset pass (repro.analysis.flow.locks)."""

import textwrap

from repro.analysis.flow.locks import analyze_locks


HEADER = "import queue\nimport threading\n"


def analyze(tmp_path, source, name="mod.py"):
    path = tmp_path / name
    path.write_text(HEADER + textwrap.dedent(source))
    return analyze_locks([path])


class TestGuardedMutation:
    def test_with_lock_is_clean(self, tmp_path):
        analysis = analyze(tmp_path, """
            class C:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.n = 0

                def inc(self):
                    with self._lock:
                        self.n += 1
        """)
        assert analysis.findings == []

    def test_unguarded_mutation_flags(self, tmp_path):
        analysis = analyze(tmp_path, """
            class C:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.n = 0

                def inc(self):
                    self.n += 1
        """)
        assert len(analysis.findings) == 1
        assert analysis.findings[0].code == "REP011"

    def test_init_writes_are_exempt(self, tmp_path):
        analysis = analyze(tmp_path, """
            class C:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.n = 0
                    self.m = []
        """)
        assert analysis.findings == []

    def test_acquire_release_pairing(self, tmp_path):
        analysis = analyze(tmp_path, """
            class C:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.n = 0

                def inc(self):
                    self._lock.acquire()
                    self.n += 1
                    self._lock.release()
                    self.n += 1
        """)
        # the first mutation is guarded, the second is past release()
        assert len(analysis.findings) == 1
        assert analysis.findings[0].line > 9

    def test_lockless_class_is_ignored(self, tmp_path):
        analysis = analyze(tmp_path, """
            class Plain:
                def __init__(self):
                    self.n = 0

                def inc(self):
                    self.n += 1
        """)
        assert analysis.findings == []


class TestCallerHeldCredit:
    def test_private_helper_called_under_lock_is_clean(self, tmp_path):
        analysis = analyze(tmp_path, """
            class C:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.n = 0

                def inc(self):
                    with self._lock:
                        self._bump()

                def _bump(self):
                    self.n += 1
        """)
        assert analysis.findings == []

    def test_one_lockless_caller_revokes_credit(self, tmp_path):
        analysis = analyze(tmp_path, """
            class C:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.n = 0

                def inc(self):
                    with self._lock:
                        self._bump()

                def inc_racy(self):
                    self._bump()

                def _bump(self):
                    self.n += 1
        """)
        assert len(analysis.findings) == 1

    def test_public_methods_get_no_credit(self, tmp_path):
        # a public method is callable from anywhere; callers holding the
        # lock today prove nothing about tomorrow's callers
        analysis = analyze(tmp_path, """
            class C:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.n = 0

                def inc(self):
                    with self._lock:
                        self.bump()

                def bump(self):
                    self.n += 1
        """)
        assert len(analysis.findings) == 1


class TestInconsistentLocks:
    def test_two_locks_for_one_attribute_flag(self, tmp_path):
        analysis = analyze(tmp_path, """
            class C:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()
                    self.n = 0

                def via_a(self):
                    with self._a:
                        self.n += 1

                def via_b(self):
                    with self._b:
                        self.n += 1
        """)
        assert len(analysis.findings) == 2
        assert all(f.code == "REP011" for f in analysis.findings)
        entry = analysis.shared_state_map()["classes"]["mod.C"]
        assert entry["attributes"]["n"]["consistent"] is False


class TestSelfSynchronized:
    def test_queue_mutators_need_no_lock(self, tmp_path):
        analysis = analyze(tmp_path, """
            class C:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._queue = queue.Queue()

                def offer(self, item):
                    self._queue.put_nowait(item)
        """)
        assert analysis.findings == []

    def test_queue_slot_rebind_still_flags(self, tmp_path):
        analysis = analyze(tmp_path, """
            class C:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._queue = queue.Queue()

                def reset(self):
                    self._queue = None
        """)
        assert len(analysis.findings) == 1

    def test_thread_local_stores_need_no_lock(self, tmp_path):
        analysis = analyze(tmp_path, """
            class C:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._local = threading.local()

                def push(self, item):
                    self._local.stack = [item]
        """)
        assert analysis.findings == []


class TestWorkerEntries:
    SOURCE = """
        class W:
            def __init__(self):
                self._lock = threading.Lock()
                self.jobs = 0
                self._thread = threading.Thread(
                    target=self._run, name="w-worker"
                )

            def _run(self):
                with self._lock:
                    self._count()

            def _count(self):
                self.jobs += 1
    """

    def test_thread_target_is_an_entry(self, tmp_path):
        analysis = analyze(tmp_path, self.SOURCE)
        assert analysis.worker_entries == {"w-worker": "mod.W._run"}

    def test_reachable_methods_get_worker_context(self, tmp_path):
        analysis = analyze(tmp_path, self.SOURCE)
        entry = analysis.shared_state_map()["classes"]["mod.W"]
        sites = entry["attributes"]["jobs"]["mutation_sites"]
        # the map also inventories the __init__ write; pick _count's site
        site = [s for s in sites if s["method"] == "mod.W._count"][0]
        assert site["thread_contexts"] == ["main", "w-worker"]


class TestSharedStateMap:
    def test_map_schema(self, tmp_path):
        analysis = analyze(tmp_path, """
            class C:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.n = 0

                def inc(self):
                    with self._lock:
                        self.n += 1
        """)
        doc = analysis.shared_state_map()
        assert doc["schema_version"] == 1
        entry = doc["classes"]["mod.C"]
        assert entry["module"] == "mod"
        assert entry["locks"] == ["_lock"]
        attr = entry["attributes"]["n"]
        assert attr["guarding_lock"] == "_lock"
        assert attr["consistent"] is True
        methods = [s["method"] for s in attr["mutation_sites"]]
        assert methods == ["mod.C.__init__", "mod.C.inc"]
        site = attr["mutation_sites"][1]
        assert site["locks_held"] == ["_lock"]
        assert site["kind"] == "augassign"
