"""Unit tests for the taint-label abstraction (repro.analysis.taint)."""

from repro.analysis import taint
from repro.analysis.taint import (
    FLOW_AGGREGATE,
    FLOW_GROUP_BY,
    FLOW_PREDICATE,
    FLOW_PROJECTION,
    TaintLabel,
    blocking_label,
    label_source_query,
    released_labels,
)
from repro.policy.model import Decision, DisclosureForm
from repro.relational.engine import Aggregate, SelectQuery
from repro.relational.expr import Comparison


def allow(form=DisclosureForm.EXACT, max_loss=1.0):
    return Decision(True, form, max_loss, ["granted"])


def deny(reason="denied by policy"):
    return Decision.deny(reason)


class TestLabelFlows:
    def test_projection_flow(self):
        query = SelectQuery("patients", columns=["age"])
        labels = label_source_query(
            "clinic", query, {"//patient/age": "age"}, {"age": allow()}
        )
        assert len(labels) == 1
        assert labels[0].flows == (FLOW_PROJECTION,)
        assert labels[0].source == "clinic"
        assert labels[0].path == "//patient/age"
        assert labels[0].column == "age"

    def test_aggregate_and_predicate_flows(self):
        query = SelectQuery(
            "patients",
            aggregates=[Aggregate("avg", "hba1c")],
            where=Comparison("age", ">", 40),
        )
        labels = label_source_query(
            "clinic", query,
            {"//patient/hba1c": "hba1c", "//patient/age": "age"},
            {"hba1c": allow(DisclosureForm.AGGREGATE), "age": allow()},
        )
        by_column = {label.column: label for label in labels}
        assert by_column["hba1c"].flows == (FLOW_AGGREGATE,)
        assert by_column["age"].flows == (FLOW_PREDICATE,)

    def test_group_by_flow(self):
        query = SelectQuery(
            "patients",
            aggregates=[Aggregate("count", "*")],
            group_by=["city"],
        )
        labels = label_source_query(
            "clinic", query, {"//patient/city": "city"},
            {"city": allow()},
        )
        assert labels[0].flows == (FLOW_GROUP_BY,)

    def test_labels_sorted_by_path(self):
        query = SelectQuery("patients", columns=["b", "a"])
        labels = label_source_query(
            "clinic", query, {"//z/b": "b", "//a/a": "a"},
            {"a": allow(), "b": allow()},
        )
        assert [label.path for label in labels] == ["//a/a", "//z/b"]


class TestReleasedForm:
    def test_denied_label_releases_nothing(self):
        label = TaintLabel("s", "//p", "c", DisclosureForm.EXACT,
                           [FLOW_PROJECTION], False, ["no"])
        assert label.released_form is DisclosureForm.SUPPRESSED

    def test_aggregate_only_flow_caps_at_aggregate(self):
        label = TaintLabel("s", "//p", "c", DisclosureForm.EXACT,
                           [FLOW_AGGREGATE], True, [])
        assert label.released_form is DisclosureForm.AGGREGATE

    def test_projection_flow_releases_granted_form(self):
        label = TaintLabel("s", "//p", "c", DisclosureForm.RANGE,
                           [FLOW_PROJECTION], True, [])
        assert label.released_form is DisclosureForm.RANGE

    def test_mixed_flows_not_capped(self):
        # a column that also appears in the projection discloses its
        # granted form, aggregate flow notwithstanding
        label = TaintLabel("s", "//p", "c", DisclosureForm.EXACT,
                           [FLOW_PROJECTION, FLOW_AGGREGATE], True, [])
        assert label.released_form is DisclosureForm.EXACT

    def test_aggregate_grant_below_cap_stays(self):
        label = TaintLabel("s", "//p", "c", DisclosureForm.SUPPRESSED,
                           [FLOW_AGGREGATE], True, [])
        assert label.released_form is DisclosureForm.SUPPRESSED


class TestBlocking:
    def test_denied_predicate_blocks_fragment(self):
        label = TaintLabel("s", "//p", "c", DisclosureForm.SUPPRESSED,
                           [FLOW_PREDICATE], False, ["no"])
        assert label.blocks_fragment

    def test_denied_projection_is_merely_dropped(self):
        label = TaintLabel("s", "//p", "c", DisclosureForm.SUPPRESSED,
                           [FLOW_PROJECTION], False, ["no"])
        assert not label.blocks_fragment

    def test_allowed_predicate_does_not_block(self):
        label = TaintLabel("s", "//p", "c", DisclosureForm.EXACT,
                           [FLOW_PREDICATE], True, [])
        assert not label.blocks_fragment

    def test_blocking_label_finds_first_blocker(self):
        benign = TaintLabel("s", "//a", "a", DisclosureForm.EXACT,
                            [FLOW_PROJECTION], True, [])
        blocker = TaintLabel("s", "//b", "b", DisclosureForm.SUPPRESSED,
                             [FLOW_GROUP_BY], False, ["no"])
        assert blocking_label([benign, blocker]) is blocker
        assert blocking_label([benign]) is None

    def test_released_labels_drop_suppressed(self):
        visible = TaintLabel("s", "//a", "a", DisclosureForm.AGGREGATE,
                             [FLOW_AGGREGATE], True, [])
        hidden = TaintLabel("s", "//b", "b", DisclosureForm.EXACT,
                            [FLOW_PROJECTION], False, ["no"])
        assert released_labels([visible, hidden]) == [visible]


class TestMissingDecision:
    def test_unmapped_column_is_denied(self):
        query = SelectQuery("patients", columns=["age"])
        labels = label_source_query(
            "clinic", query, {"//patient/age": "age"}, {}
        )
        assert not labels[0].allowed
        assert labels[0].released_form is DisclosureForm.SUPPRESSED
        assert "no policy decision" in labels[0].reasons[0]

    def test_to_dict_round_trip(self):
        query = SelectQuery("patients", columns=["age"])
        (label,) = label_source_query(
            "clinic", query, {"//patient/age": "age"}, {"age": allow()}
        )
        data = label.to_dict()
        assert data["source"] == "clinic"
        assert data["form"] == "EXACT"
        assert data["released_form"] == "EXACT"
        assert data["flows"] == [FLOW_PROJECTION]
        assert data["allowed"] is True


class TestModuleSurface:
    def test_package_reexports(self):
        from repro import analysis

        assert analysis.TaintLabel is TaintLabel
        assert analysis.label_source_query is taint.label_source_query
