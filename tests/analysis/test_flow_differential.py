"""Differential test: the static sink inventory vs. a live zoo run.

The flow analyzer's REP010 verdict is only as good as its sink catalog:
an emission site the catalog misses is a leak the analyzer silently
blesses.  This test drives a real seeded adversary-zoo run — mediation,
observatory, scoring, telemetry — and checks that **every event name
the runtime actually emitted appears in the static inventory** built
from ``src/repro``.  A new ``events.emit(...)`` call site cannot ship
without the analyzer seeing it.

The whole-tree run doubles as the repo's own clean bill of health: the
analysis over ``src/repro`` must stay at zero unsuppressed findings,
and the committed ``shared_state_map.json`` must match what the
analyzer generates today.
"""

import json
from pathlib import Path

import pytest

from repro.analysis.flow.driver import run_analysis
from repro.validation.adversaries import (
    CompositionAttacker,
    ZooDefenses,
    build_zoo_system,
)
from repro.validation.zoo import run_adversary

REPO = Path(__file__).resolve().parents[2]
SRC = REPO / "src" / "repro"
COMMITTED_MAP = REPO / "shared_state_map.json"


@pytest.fixture(scope="module")
def tree_report():
    """One whole-tree analysis shared by every test in this module."""
    return run_analysis([SRC])


@pytest.fixture(scope="module")
def zoo_events():
    """Event names one full seeded adversary run actually emitted."""
    system = build_zoo_system(ZooDefenses(), seed=0)
    run_adversary(CompositionAttacker(), ZooDefenses(), seed=0,
                  system=system)
    return {event.name for event in system.telemetry.events.events()}


class TestSinkInventorySuperset:
    def test_runtime_event_names_are_statically_known(self, tree_report,
                                                      zoo_events):
        assert zoo_events, "the zoo run emitted nothing — dead fixture"
        static = set(tree_report.flow.event_names())
        missing = zoo_events - static
        assert not missing, (
            f"runtime emitted events the static inventory missed: "
            f"{sorted(missing)} — the analyzer cannot vet sites it "
            "does not see"
        )

    def test_inventory_covers_every_sink_kind(self, tree_report):
        kinds = {entry["kind"] for entry in tree_report.sink_inventory()}
        # events, metrics, the observatory journal, exporters, and the
        # persistence WAL are all places confidential data could exit
        assert {"event", "metric", "wal"} <= kinds

    def test_persistence_wal_sites_are_inventoried(self, tree_report):
        wal = [entry for entry in tree_report.sink_inventory()
               if entry["kind"] == "wal"]
        assert any("persistence" in entry["function"] for entry in wal)


class TestTreeStaysClean:
    def test_zero_unsuppressed_findings(self, tree_report):
        assert tree_report.findings == [], (
            "src/repro must stay flow-clean; fix the leak or suppress "
            "with a written justification"
        )

    def test_committed_map_is_current(self, tree_report):
        committed = json.loads(COMMITTED_MAP.read_text())
        generated = tree_report.shared_state_map()
        assert committed == generated, (
            "shared_state_map.json is stale — regenerate with "
            "`python -m repro.analysis.flow src/repro --map "
            "shared_state_map.json`"
        )

    def test_map_covers_the_shared_subsystems(self, tree_report):
        classes = tree_report.shared_state_map()["classes"]
        modules = {entry["module"] for entry in classes.values()}
        for subsystem in ("repro.mediator", "repro.cache",
                          "repro.telemetry", "repro.persistence"):
            assert any(module.startswith(subsystem)
                       for module in modules), (
                f"{subsystem} lost its lock inventory — the sharding "
                "spec depends on it"
            )
