"""Unit tests for the whole-program taint engine (repro.analysis.flow).

Each test writes a tiny standalone tree to ``tmp_path`` and runs the
engine over it; catalog classification resolves through the same
``*.name`` fallbacks the real tree uses.
"""

import textwrap

import pytest

from repro.analysis.flow.catalog import (
    DEFAULT_CATALOG,
    Catalog,
    SinkSpec,
)
from repro.analysis.flow.engine import analyze_flows
from repro.analysis.flow.loader import load_program
from repro.errors import ReproError


def analyze(tmp_path, source, name="mod.py"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source))
    return analyze_flows([path])


def finding_lines(analysis):
    return sorted(f.line for f in analysis.findings)


class TestTaintPropagation:
    def test_direct_source_to_event_sink(self, tmp_path):
        analysis = analyze(tmp_path, """
            def leak(table, events):
                rows = table.rows_as_dicts()
                events.emit("leak", rows=rows)
        """)
        assert len(analysis.findings) == 1
        assert analysis.findings[0].code == "REP010"

    def test_interprocedural_return_flow(self, tmp_path):
        analysis = analyze(tmp_path, """
            def fetch(table):
                return table.rows_as_dicts()

            def leak(table, events):
                events.emit("leak", rows=fetch(table))
        """)
        assert len(analysis.findings) == 1

    def test_interprocedural_argument_flow(self, tmp_path):
        analysis = analyze(tmp_path, """
            def emit_it(events, payload):
                events.emit("leak", payload=payload)

            def leak(table, events):
                emit_it(events, table.rows_as_dicts())
        """)
        assert len(analysis.findings) == 1

    def test_clean_tree_has_no_findings(self, tmp_path):
        analysis = analyze(tmp_path, """
            def fine(events):
                events.emit("ok", value=42)
        """)
        assert analysis.findings == []

    def test_exception_sink(self, tmp_path):
        analysis = analyze(tmp_path, """
            def explode(table):
                row = table.rows_as_dicts()[0]
                raise ValueError(f"bad row {row!r}")
        """)
        assert len(analysis.findings) == 1
        assert "exception" in analysis.findings[0].message


class TestSanitizers:
    def test_digest_clears_taint(self, tmp_path):
        analysis = analyze(tmp_path, """
            from repro.telemetry.redact import digest

            def safe(table, events):
                row = table.rows_as_dicts()[0]
                events.emit("safe", value=digest(row))
        """)
        assert analysis.findings == []

    def test_len_aggregation_clears_taint(self, tmp_path):
        analysis = analyze(tmp_path, """
            def safe(table, events):
                events.emit("safe", count=len(table.rows_as_dicts()))
        """)
        assert analysis.findings == []

    def test_mapping_keys_are_identifiers(self, tmp_path):
        # the documented refinement: .keys() of a tainted mapping yields
        # column names, not cells
        analysis = analyze(tmp_path, """
            def safe(table, events):
                row = table.rows_as_dicts()[0]
                events.emit("safe", columns=list(row.keys()))
        """)
        assert analysis.findings == []

    def test_values_stay_tainted(self, tmp_path):
        analysis = analyze(tmp_path, """
            def leak(table, events):
                row = table.rows_as_dicts()[0]
                events.emit("leak", cells=list(row.values()))
        """)
        assert len(analysis.findings) == 1


class TestCallMapping:
    def test_classmethod_receiver_offset(self, tmp_path):
        # regression: classmethod positional args must shift past `cls`,
        # or arg 0 lands on cls and every later param is off by one
        analysis = analyze(tmp_path, """
            class Builder:
                @classmethod
                def build(cls, name, rows, events):
                    events.emit("built", rows=rows)

            def go(table, events):
                Builder.build("t", table.rows_as_dicts(), events)
        """)
        assert len(analysis.findings) == 1
        tainted_args = analysis.findings[0].message
        assert "rows" in tainted_args
        assert "name" not in tainted_args

    def test_constructor_carries_field_taint(self, tmp_path):
        analysis = analyze(tmp_path, """
            class Holder:
                def __init__(self, payload):
                    self.payload = payload

            def leak(table, events):
                held = Holder(table.rows_as_dicts())
                events.emit("leak", value=held)
        """)
        assert len(analysis.findings) == 1

    def test_loop_body_sinks_are_deduplicated(self, tmp_path):
        # the interpreter walks loop bodies twice; a sink inside one
        # must still produce exactly one finding
        analysis = analyze(tmp_path, """
            def leak(table, events):
                for row in table.rows_as_dicts():
                    events.emit("leak", row=row)
        """)
        assert len(analysis.findings) == 1


class TestSpeculativeResolution:
    def test_untyped_append_is_not_a_wal_sink(self, tmp_path):
        # `x.append(...)` on an untyped receiver must not match the
        # journal/WAL `*.append` sinks (their receiver hints gate them)
        analysis = analyze(tmp_path, """
            def collect(table):
                out = []
                for row in table.rows_as_dicts():
                    out.append(row)
                return out
        """)
        assert analysis.findings == []

    def test_hinted_receiver_is_a_sink(self, tmp_path):
        analysis = analyze(tmp_path, """
            class Recorder:
                def __init__(self, journal):
                    self._journal = journal

                def record(self, table):
                    self._journal.append(table.rows_as_dicts())
        """)
        assert len(analysis.findings) == 1


class TestInventory:
    def test_event_names_from_literal_first_args(self, tmp_path):
        analysis = analyze(tmp_path, """
            def emitting(events, value):
                events.emit("alpha.one", v=value)
                events.emit("beta.two")
        """)
        assert analysis.event_names() == ["alpha.one", "beta.two"]

    def test_sink_inventory_entries(self, tmp_path):
        analysis = analyze(tmp_path, """
            def emitting(events, metrics):
                events.emit("gamma", v=1)
                metrics.counter("hits").inc()
        """)
        inventory = analysis.sink_inventory()
        kinds = {entry["kind"] for entry in inventory}
        assert "event" in kinds
        assert "metric" in kinds
        event = [e for e in inventory if e["kind"] == "event"][0]
        assert event["event_name"] == "gamma"
        assert event["function"] == "mod.emitting"


class TestCatalog:
    def test_source_label_matches_glob(self):
        label = DEFAULT_CATALOG.source_label(["*.rows_as_dicts"])
        assert label == "relational row/cell accessor"

    def test_sink_receiver_hint_gates_match(self):
        catalog = Catalog({}, [], [
            SinkSpec("journal", "*.append", receiver_hint=r"journal"),
        ])
        assert catalog.sink_for(["*.append"], "self._journal") is not None
        assert catalog.sink_for(["*.append"], "rows") is None
        assert catalog.sink_for(["*.append"], None) is None

    def test_sanitizer_match(self):
        assert DEFAULT_CATALOG.is_sanitizer(
            ["repro.telemetry.redact.digest"]
        )
        assert not DEFAULT_CATALOG.is_sanitizer(["mod.leak"])


class TestLoader:
    def test_missing_paths_raise(self, tmp_path):
        with pytest.raises(ReproError):
            load_program([tmp_path / "nothing"])

    def test_program_indexes_methods_and_locks(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text(textwrap.dedent("""
            import queue
            import threading

            class Thing:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._queue = queue.Queue()

                def method(self):
                    return 1
        """))
        program = load_program([path])
        info = program.classes["mod.Thing"]
        assert "method" in info.methods
        assert info.lock_attrs == {"_lock"}
        assert info.sync_attrs == {"_queue"}
