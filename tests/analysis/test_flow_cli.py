"""Golden fixtures and CLI contract for ``python -m repro.analysis.flow``.

The ``golden_flow/`` fixtures freeze the analyzer's verdicts the same
way ``golden/`` freezes the per-file linter's: each ``repNNN.py`` has a
``repNNN.expected.json`` with the exact ``(code, line)`` findings and
the suppressed count.  They live in their own directory because the
per-file golden harness globs ``golden/rep*.py`` and would apply the
wrong rule set to them.
"""

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis.flow.cli import main
from repro.analysis.flow.driver import run_analysis

GOLDEN = Path(__file__).parent / "golden_flow"
FIXTURES = sorted(GOLDEN.glob("rep*.py"))

CLEAN = """
    def fine(events):
        events.emit("ok", value=42)
"""

LEAKY = """
    def leak(table, events):
        events.emit("leak", rows=table.rows_as_dicts())
"""


def write(tmp_path, source, name="mod.py"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source))
    return path


@pytest.mark.parametrize(
    "fixture", FIXTURES, ids=[f.stem for f in FIXTURES]
)
def test_golden_fixture(fixture):
    expected = json.loads(
        fixture.with_suffix(".expected.json").read_text()
    )
    report = run_analysis([fixture])
    got = [{"code": f.code, "line": f.line} for f in report.findings]
    assert got == expected["findings"]
    assert report.suppressed == expected["suppressed"]


def test_fixture_inventory_is_complete():
    # every fixture must have its expectations frozen (and vice versa)
    assert FIXTURES, "golden_flow fixtures are missing"
    for fixture in FIXTURES:
        assert fixture.with_suffix(".expected.json").exists()


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        assert main([str(write(tmp_path, CLEAN))]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        assert main([str(write(tmp_path, LEAKY))]) == 1
        out = capsys.readouterr().out
        assert "REP010" in out

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert main([str(tmp_path / "nowhere")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_syntax_error_exits_two(self, tmp_path, capsys):
        assert main([str(write(tmp_path, "def broken(:\n"))]) == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_select_exits_two(self, tmp_path, capsys):
        path = write(tmp_path, CLEAN)
        assert main([str(path), "--select", "REP999"]) == 2
        assert "unknown whole-program code" in capsys.readouterr().err

    def test_select_filters_codes(self, tmp_path, capsys):
        # a pure-taint tree has nothing to say under --select REP011
        path = write(tmp_path, LEAKY)
        assert main([str(path), "--select", "REP011"]) == 0
        capsys.readouterr()


class TestReportFormats:
    def test_json_report_shape(self, tmp_path, capsys):
        path = write(tmp_path, LEAKY)
        assert main([str(path), "--format", "json"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["summary"]["files_checked"] == 1
        codes = [f["code"] for f in document["findings"]]
        assert codes == ["REP010"]
        assert "sink_inventory" not in document

    def test_json_inventory_flag(self, tmp_path, capsys):
        path = write(tmp_path, LEAKY)
        assert main([str(path), "--format", "json", "--inventory"]) == 1
        document = json.loads(capsys.readouterr().out)
        entries = document["sink_inventory"]
        assert entries and entries[0]["kind"] == "event"
        assert entries[0]["event_name"] == "leak"


class TestMapOutput:
    GUARDED = """
        import threading

        class C:
            def __init__(self):
                self._lock = threading.Lock()
                self.n = 0

            def inc(self):
                with self._lock:
                    self.n += 1
    """

    def test_map_written_to_file(self, tmp_path, capsys):
        path = write(tmp_path, self.GUARDED)
        out = tmp_path / "map.json"
        assert main([str(path), "--map", str(out)]) == 0
        capsys.readouterr()
        document = json.loads(out.read_text())
        assert document["schema_version"] == 1
        assert "mod.C" in document["classes"]

    def test_map_to_stdout_replaces_report(self, tmp_path, capsys):
        path = write(tmp_path, self.GUARDED)
        assert main([str(path), "--map", "-"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["schema_version"] == 1

    def test_map_dash_ignores_findings_for_exit(self, tmp_path, capsys):
        # `--map -` is an artifact pipe; the findings report (and its
        # exit code) belongs to the plain invocation
        path = write(tmp_path, LEAKY)
        assert main([str(path), "--map", "-"]) == 0
        capsys.readouterr()
