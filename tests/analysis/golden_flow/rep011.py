"""Golden fixture for REP011 — unguarded / inconsistently-guarded
shared mutation.

Guarded, unguarded, caller-held, self-synchronized, inconsistent, and
suppressed variants; the expected findings are frozen in
``rep011.expected.json``.
"""

import queue
import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0        # __init__ writes are construction, exempt
        self.total = 0
        self.unguarded = 0
        self._queue = queue.Queue()

    def inc(self):
        with self._lock:
            self.count += 1   # clean: guarded

    def inc_unguarded(self):
        self.unguarded += 1   # finding: no lock held

    def inc_via_helper(self):
        with self._lock:
            self._bump()

    def _bump(self):
        self.total += 1       # clean: every caller already holds _lock

    def offer(self, item):
        self._queue.put_nowait(item)  # clean: Queue locks internally

    def suppressed_bump(self):
        # repro-lint: disable=REP011 -- fixture: demonstrates the
        # suppression syntax
        self.unguarded += 1


class TwoLocks:
    def __init__(self):
        self._a = threading.Lock()
        self._b = threading.Lock()
        self.value = 0

    def with_a(self):
        with self._a:
            self.value += 1   # inconsistent: guarded by _a here...

    def with_b(self):
        with self._b:
            self.value += 1   # ...and by _b here


class Worker:
    def __init__(self):
        self._lock = threading.Lock()
        self.jobs = 0
        self._thread = threading.Thread(
            target=self._run, name="rep011-worker"
        )

    def _run(self):
        with self._lock:
            self.jobs += 1    # clean, and runs on the worker thread
