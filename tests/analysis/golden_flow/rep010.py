"""Golden fixture for REP010 — unsanitized confidential flow to a sink.

Positive, sanitized, and suppressed variants of the same flow; the
expected findings are frozen in ``rep010.expected.json``.  Analyzed
standalone by the whole-program engine, so sources and sinks resolve
through the catalog's ``*.name`` fallbacks.
"""

from repro.telemetry.redact import digest


class Store:
    def __init__(self, table, events):
        self.table = table
        self.events = events

    def rows(self):
        return self.table.rows_as_dicts()


class Leaky:
    def __init__(self, store, events):
        self.store = store
        self.events = events

    def leak_event(self):
        row = self.store.rows()[0]
        self.events.emit("leaky.row", value=row)  # finding: raw cell

    def leak_exception(self):
        row = self.store.rows()[0]
        raise ValueError(f"bad row {row!r}")  # finding: raw cell

    def leak_interprocedural(self):
        self._emit_value(self.store.rows())

    def _emit_value(self, payload):
        self.events.emit("leaky.helper", value=payload)  # finding: via call

    def sanitized_event(self):
        row = self.store.rows()[0]
        self.events.emit("safe.digest", value=digest(row))  # clean

    def aggregated_event(self):
        rows = self.store.rows()
        self.events.emit("safe.count", rows=len(rows))  # clean

    def suppressed_event(self):
        row = self.store.rows()[0]
        # repro-lint: disable=REP010 -- fixture: demonstrates the
        # suppression syntax the driver honors
        self.events.emit("suppressed.row", value=row)

    def metadata_event(self):
        names = self.store.rows()[0].keys()
        self.events.emit("safe.columns", columns=list(names))  # clean
