"""Verdict tests for the static plan analyzer (repro.analysis.plancheck)."""

import pytest

from repro import PrivateIye
from repro.analysis.plancheck import (
    ANSWERS,
    REFUSE,
    REFUSES,
    RUNTIME,
    RUNTIME_CHECK,
    SAFE,
    PlanAnalyzer,
    resolve_static_check,
)
from repro.errors import IntegrationError, QueryError
from repro.query.language import parse_piql
from repro.relational import Table
from repro.relational.schema import Column, TableSchema
from repro.relational.types import ColumnType

POLICIES = """
VIEW clinic_private {
    PRIVATE //patient/ssn;
    PRIVATE //patient/hba1c FORM aggregate;
}
VIEW lab_private {
    PRIVATE //patient/ssn;
    PRIVATE //patient/hba1c FORM aggregate;
}

POLICY clinic DEFAULT deny {
    DENY //patient/ssn FOR *;
    ALLOW //patient/hba1c FOR public-health-research FORM aggregate MAXLOSS 0.6;
    ALLOW //patient/city FOR research;
    ALLOW //patient/age FOR research;
}

POLICY lab DEFAULT deny {
    DENY //patient/ssn FOR *;
    ALLOW //patient/hba1c FOR public-health-research FORM aggregate MAXLOSS 0.6;
    ALLOW //patient/city FOR research;
    ALLOW //patient/age FOR research;
}
"""


def build_system(**kwargs):
    system = PrivateIye(**kwargs)
    system.load_policies(
        POLICIES,
        view_source={"clinic_private": "clinic", "lab_private": "lab"},
    )
    clinic_rows = [
        {"ssn": f"1-{i:03d}", "hba1c": 60.0 + i % 25, "age": 30 + i % 40,
         "city": ["pittsburgh", "butler"][i % 2]}
        for i in range(30)
    ]
    lab_rows = [
        {"ssn": f"2-{i:03d}", "hba1c": 65.0 + i % 20, "age": 25 + i % 45,
         "city": ["pittsburgh", "erie"][i % 2]}
        for i in range(20)
    ]
    system.add_relational_source(
        "clinic", Table.from_dicts("patients", clinic_rows)
    )
    system.add_relational_source(
        "lab", Table.from_dicts("patients", lab_rows)
    )
    return system


class TestSafeVerdict:
    def test_record_level_query_is_safe(self):
        system = build_system()
        verdict = system.analyze(
            "SELECT //patient/city PURPOSE research", requester="r1"
        )
        assert verdict.verdict == SAFE
        assert {o.status for o in verdict.per_source.values()} == {ANSWERS}
        assert verdict.runtime_checks == []
        assert verdict.reason is None

    def test_safe_verdict_carries_loss_bound(self):
        system = build_system()
        verdict = system.analyze(
            "SELECT //patient/city PURPOSE research", requester="r1"
        )
        # bound is 1 - Π(1 - loss_i) over both answering sources
        losses = [o.loss for o in verdict.per_source.values()]
        expected = 1.0
        for loss in losses:
            expected *= 1.0 - loss
        assert verdict.aggregated_bound == pytest.approx(1.0 - expected)
        assert 0.0 < verdict.aggregated_bound < verdict.max_loss

    def test_analysis_is_timed(self):
        system = build_system()
        verdict = system.analyze(
            "SELECT //patient/city PURPOSE research", requester="r1"
        )
        assert verdict.analysis_ms > 0.0

    def test_safe_query_actually_answers(self):
        system = build_system()
        result = system.query(
            "SELECT //patient/city PURPOSE research", requester="r1"
        )
        assert result.rows


class TestRefuseVerdict:
    def test_wrong_purpose_refused_statically(self):
        system = build_system()
        verdict = system.analyze(
            "SELECT AVG(//patient/hba1c) PURPOSE marketing", requester="m1"
        )
        assert verdict.verdict == REFUSE
        assert "every relevant source refused" in verdict.reason
        assert verdict.refusing_sources == ["clinic", "lab"]
        assert verdict.source == "clinic"
        for outcome in verdict.per_source.values():
            assert outcome.status == REFUSES
            assert outcome.refusal_kind == "PrivacyViolation"

    def test_reason_names_every_source(self):
        system = build_system()
        verdict = system.analyze(
            "SELECT AVG(//patient/hba1c) PURPOSE marketing", requester="m1"
        )
        assert "clinic:" in verdict.reason
        assert "lab:" in verdict.reason

    def test_aggregated_maxloss_refused_statically(self):
        # each source's loss fits its own grant, but the compound
        # 1 - Π(1 - loss_i) exceeds the requester's MAXLOSS
        system = build_system()
        verdict = system.analyze(
            "SELECT //patient/city PURPOSE research MAXLOSS 0.04",
            requester="r1",
        )
        assert verdict.verdict == REFUSE
        assert "exceeds the requester's MAXLOSS" in verdict.reason
        assert {o.status for o in verdict.per_source.values()} == {ANSWERS}
        assert verdict.aggregated_bound > 0.04

    def test_per_source_budget_refusal_mirrors_optimizer(self):
        system = build_system()
        verdict = system.analyze(
            "SELECT //patient/city PURPOSE research MAXLOSS 0.01",
            requester="r1",
        )
        assert verdict.verdict == REFUSE
        assert "refusing before execution" in verdict.reason

    def test_empty_table_refuses_aggregate_statically(self):
        empty = Table(TableSchema("patients", [
            Column("ssn", ColumnType("text")),
            Column("hba1c", ColumnType("float")),
        ]))
        system = PrivateIye()
        system.load_policies(
            """
            VIEW e_private {
                PRIVATE //patient/ssn;
                PRIVATE //patient/hba1c FORM aggregate;
            }
            POLICY empty DEFAULT deny {
                ALLOW //patient/hba1c FOR research FORM aggregate;
            }
            """,
            view_source={"e_private": "empty"},
        )
        system.add_relational_source("empty", empty)
        verdict = system.analyze(
            "SELECT AVG(//patient/hba1c) PURPOSE research", requester="r1"
        )
        assert verdict.verdict == REFUSE
        assert "empty query set" in verdict.reason


class TestRuntimeCheckVerdict:
    def test_aggregate_with_where_defers_query_set_checks(self):
        system = build_system()
        verdict = system.analyze(
            "SELECT AVG(//patient/hba1c) WHERE //patient/age > 40 "
            "PURPOSE outbreak-surveillance MAXLOSS 0.6",
            requester="epi",
        )
        assert verdict.verdict == RUNTIME_CHECK
        assert {o.status for o in verdict.per_source.values()} == {RUNTIME}
        assert any("query set non-empty" in check
                   for check in verdict.runtime_checks)

    def test_audit_trail_check_is_history_dependent(self):
        system = build_system()
        verdict = system.analyze(
            "SELECT AVG(//patient/hba1c) "
            "PURPOSE outbreak-surveillance MAXLOSS 0.6",
            requester="epi",
        )
        assert verdict.verdict == RUNTIME_CHECK
        assert any("audit trail" in check
                   for check in verdict.runtime_checks)

    def test_overlap_control_defers_to_runtime(self):
        system = build_system()
        for remote in system.engine.sources.values():
            remote.enable_overlap_control(5)
        verdict = system.analyze(
            "SELECT AVG(//patient/hba1c) "
            "PURPOSE outbreak-surveillance MAXLOSS 0.6",
            requester="epi",
        )
        assert verdict.verdict == RUNTIME_CHECK
        assert any("answered set" in check
                   for check in verdict.runtime_checks)

    def test_record_level_query_skips_sequence_defenses(self):
        system = build_system()
        for remote in system.engine.sources.values():
            remote.enable_overlap_control(5)
        verdict = system.analyze(
            "SELECT //patient/city PURPOSE research", requester="r1"
        )
        # overlap/audit defenses only guard aggregates
        assert verdict.verdict == SAFE

    def test_unanalyzable_source_defers_soundly(self):
        class Opaque:
            name = "clinic"

            def answer(self, piql, requester=None, role=None, subjects=()):
                return None

        system = build_system()
        system.mediated_schema()  # build before swapping in the double
        system.engine.sources["clinic"] = Opaque()
        verdict = system.analyze(
            "SELECT //patient/city PURPOSE research", requester="r1"
        )
        assert verdict.verdict == RUNTIME_CHECK
        assert verdict.per_source["clinic"].status == RUNTIME
        assert any("not statically analyzable" in check
                   for check in verdict.runtime_checks)


class TestVerdictSerialization:
    def test_to_dict_shape(self):
        system = build_system()
        verdict = system.analyze(
            "SELECT //patient/city PURPOSE research", requester="r1"
        )
        data = verdict.to_dict()
        assert data["verdict"] == SAFE
        assert set(data["per_source"]) == {"clinic", "lab"}
        for outcome in data["per_source"].values():
            assert outcome["status"] == ANSWERS
            assert outcome["labels"]  # taint labels serialized too
        assert data["aggregated_bound"] == verdict.aggregated_bound
        assert data["analysis_ms"] == verdict.analysis_ms

    def test_refuse_to_dict_keeps_reasons(self):
        system = build_system()
        verdict = system.analyze(
            "SELECT AVG(//patient/hba1c) PURPOSE marketing", requester="m1"
        )
        data = verdict.to_dict()
        assert data["verdict"] == REFUSE
        assert data["source"] == "clinic"
        refusals = {name: outcome["refusal_reason"]
                    for name, outcome in data["per_source"].items()}
        assert all(reason for reason in refusals.values())


class TestAnalyzeEntryPoints:
    def test_accepts_parsed_query(self):
        system = build_system()
        query = parse_piql("SELECT //patient/city PURPOSE research")
        verdict = system.analyze(query, requester="r1")
        assert verdict.verdict == SAFE

    def test_rejects_non_query_input(self):
        system = build_system()
        with pytest.raises(IntegrationError):
            system.engine.analyze(42)

    def test_analyze_never_contacts_sources(self):
        system = build_system()
        system.analyze(
            "SELECT //patient/city PURPOSE research", requester="r1"
        )
        assert all(
            remote.queries_answered == 0
            for remote in system.engine.sources.values()
        )

    def test_analyze_records_no_history(self):
        system = build_system()
        system.analyze(
            "SELECT //patient/city PURPOSE research", requester="r1"
        )
        assert system.history("r1") == []

    def test_analyze_works_with_gate_disabled(self):
        system = build_system(static_check=False)
        verdict = system.analyze(
            "SELECT //patient/city PURPOSE research", requester="r1"
        )
        assert verdict.verdict == SAFE


class TestResolveStaticCheck:
    def test_default_and_true_build_analyzer(self):
        assert isinstance(resolve_static_check(None), PlanAnalyzer)
        assert isinstance(resolve_static_check(True), PlanAnalyzer)

    def test_false_disables(self):
        assert resolve_static_check(False) is None

    def test_instance_passes_through(self):
        analyzer = PlanAnalyzer()
        assert resolve_static_check(analyzer) is analyzer

    def test_anything_else_rejected(self):
        with pytest.raises(QueryError):
            resolve_static_check("yes")
