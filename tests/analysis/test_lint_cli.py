"""Exit-status contract for ``python -m repro.analysis.lint``.

The CI lint job keys off these codes: 0 = clean, 1 = findings,
2 = the linter could not do its job (usage error or unparseable file).
A typo'd suppression code is itself a finding (REP000) — a misspelled
``disable=`` suppresses nothing and must not pass silently.
"""

import textwrap

from repro.analysis.lint.cli import main


def write(tmp_path, source, name="mod.py"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source))
    return path


CLEAN = """
    def fine():
        return 42
"""


class TestExitCodes:
    def test_clean_exits_zero(self, tmp_path, capsys):
        assert main([str(write(tmp_path, CLEAN))]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        path = write(tmp_path, """
            def risky(items=[]):
                return items
        """)
        assert main([str(path)]) == 1
        assert "REP006" in capsys.readouterr().out

    def test_parse_error_exits_two(self, tmp_path, capsys):
        assert main([str(write(tmp_path, "def broken(:\n"))]) == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_select_exits_two(self, tmp_path, capsys):
        path = write(tmp_path, CLEAN)
        assert main([str(path), "--select", "REP999"]) == 2
        assert "unknown rule code" in capsys.readouterr().err

    def test_parse_error_wins_over_findings(self, tmp_path, capsys):
        # one broken file must not let the rest masquerade as a
        # complete report
        write(tmp_path, "def broken(:\n", name="bad.py")
        write(tmp_path, "def risky(items=[]):\n    return items\n",
              name="ok.py")
        assert main([str(tmp_path)]) == 2
        capsys.readouterr()


class TestUnknownSuppressionCodes:
    def test_typo_is_a_rep000_finding(self, tmp_path, capsys):
        path = write(tmp_path, """
            # repro-lint: disable=REP0006 -- fat-fingered code
            def risky(items=[]):
                return items
        """)
        assert main([str(path)]) == 1
        out = capsys.readouterr().out
        assert "REP000" in out
        assert "REP006" in out  # the typo suppressed nothing

    def test_known_whole_program_code_is_not_flagged(self, tmp_path,
                                                     capsys):
        # REP010/REP011 belong to the flow analyzer, but the per-file
        # linter still recognizes them as legitimate suppressions
        path = write(tmp_path, """
            def quiet(events, rows):
                events.emit("x", rows=rows)  # repro-lint: disable=REP010 -- test fixture
        """)
        assert main([str(path)]) == 0
        capsys.readouterr()

    def test_list_rules_includes_whole_program_codes(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "REP010" in out
        assert "REP011" in out
