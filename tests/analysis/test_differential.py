"""Differential property test: static verdicts vs. runtime outcomes.

The analyzer's contract (docs/static_analysis.md):

* ``SAFE``   — the runtime pipeline never *policy-refuses* the query;
* ``REFUSE`` — the runtime pipeline always refuses it;
* ``RUNTIME_CHECK`` — no promise either way (data/history decide).

This test drives both paths over a seeded corpus of generated plans —
record-level and aggregate queries, straight and predicated, across
purposes and MAXLOSS budgets — and holds the agreement to **zero
disagreements over at least 200 analyzed plans** (the PR's acceptance
criterion).  Each query gets a fresh requester so the per-requester
sequence guard never interferes, and the analysis immediately precedes
the execution so both see the same source state.
"""

import random

import pytest

from repro import PrivateIye
from repro.analysis.plancheck import REFUSE, SAFE
from repro.errors import PrivacyViolation, ReproError
from repro.relational import Table

POLICIES = """
VIEW clinic_private {
    PRIVATE //patient/ssn;
    PRIVATE //patient/hba1c FORM aggregate;
}
VIEW lab_private {
    PRIVATE //patient/ssn;
    PRIVATE //patient/hba1c FORM aggregate;
}

POLICY clinic DEFAULT deny {
    DENY //patient/ssn FOR *;
    ALLOW //patient/hba1c FOR public-health-research FORM aggregate MAXLOSS 0.6;
    ALLOW //patient/city FOR research;
    ALLOW //patient/age FOR research;
}

POLICY lab DEFAULT deny {
    DENY //patient/ssn FOR *;
    ALLOW //patient/hba1c FOR public-health-research FORM aggregate MAXLOSS 0.6;
    ALLOW //patient/city FOR research;
    ALLOW //patient/age FOR research;
}
"""

RECORD_SELECTS = [
    "//patient/city",
    "//patient/age",
    "//patient/city, //patient/age",
]
AGGREGATES = [
    "AVG(//patient/hba1c)",
    "SUM(//patient/hba1c)",
    "COUNT(*)",
    "AVG(//patient/age)",
]
PURPOSES = ["research", "marketing", "outbreak-surveillance",
            "public-health-research"]
PREDICATES = [
    None,
    "//patient/age > {}",
    "//patient/age < {}",
    "//patient/city = 'pittsburgh'",
]
MAXLOSSES = [None, 0.01, 0.04, 0.1, 0.3, 0.6, 1.0]


def build_system():
    system = PrivateIye(static_check=False)  # runtime leg must be ungated
    system.load_policies(
        POLICIES,
        view_source={"clinic_private": "clinic", "lab_private": "lab"},
    )
    clinic_rows = [
        {"ssn": f"1-{i:03d}", "hba1c": 60.0 + i % 25, "age": 30 + i % 40,
         "city": ["pittsburgh", "butler"][i % 2]}
        for i in range(30)
    ]
    lab_rows = [
        {"ssn": f"2-{i:03d}", "hba1c": 65.0 + i % 20, "age": 25 + i % 45,
         "city": ["pittsburgh", "erie"][i % 2]}
        for i in range(20)
    ]
    system.add_relational_source(
        "clinic", Table.from_dicts("patients", clinic_rows)
    )
    system.add_relational_source(
        "lab", Table.from_dicts("patients", lab_rows)
    )
    return system


def generate_query(rng):
    """One seeded PIQL text drawn from the plan space."""
    parts = ["SELECT"]
    if rng.random() < 0.5:
        parts.append(rng.choice(RECORD_SELECTS))
    else:
        parts.append(rng.choice(AGGREGATES))
    predicate = rng.choice(PREDICATES)
    if predicate is not None:
        parts.append("WHERE " + predicate.format(rng.randrange(20, 70)))
    parts.append("PURPOSE " + rng.choice(PURPOSES))
    max_loss = rng.choice(MAXLOSSES)
    if max_loss is not None:
        parts.append(f"MAXLOSS {max_loss}")
    return " ".join(parts)


def runtime_outcome(system, text, requester):
    """'answered' or 'refused' — the privacy verdict of the full pipeline."""
    try:
        system.query(text, requester=requester)
    except PrivacyViolation:
        return "refused"
    return "answered"


class TestStaticRuntimeAgreement:
    def test_zero_disagreements_over_seeded_corpus(self):
        system = build_system()
        rng = random.Random(20060406)  # the paper's conference date
        analyzed = 0
        disagreements = []
        for index in range(240):
            text = generate_query(rng)
            requester = f"differ-{index}"
            try:
                verdict = system.analyze(text, requester=requester)
            except ReproError:
                continue  # unanswerable plan (no source exports the path)
            analyzed += 1
            if verdict.verdict not in (SAFE, REFUSE):
                continue  # RUNTIME_CHECK promises nothing; skip execution
            outcome = runtime_outcome(system, text, requester)
            expected = "answered" if verdict.verdict == SAFE else "refused"
            if outcome != expected:
                disagreements.append(
                    (text, verdict.verdict, outcome, verdict.reason)
                )
        assert analyzed >= 200, f"only {analyzed} plans analyzed"
        assert not disagreements, disagreements

    def test_refuse_messages_match_runtime_refusals(self):
        # when both paths refuse, the static reason carries the same
        # per-source detail the runtime exception would
        system = build_system()
        text = "SELECT AVG(//patient/hba1c) PURPOSE marketing"
        verdict = system.analyze(text, requester="m-static")
        assert verdict.verdict == REFUSE
        with pytest.raises(PrivacyViolation) as error:
            system.query(text, requester="m-runtime")
        for name in ("clinic", "lab"):
            assert f"{name}:" in verdict.reason
            assert f"{name}:" in str(error.value)

    def test_safe_never_undersells_loss(self):
        # for a SAFE plan the runtime aggregated loss never exceeds the
        # static worst-case bound
        system = build_system()
        text = "SELECT //patient/city PURPOSE research"
        verdict = system.analyze(text, requester="bound-check")
        assert verdict.verdict == SAFE
        result = system.query(text, requester="bound-check")
        assert result.aggregated_loss <= verdict.aggregated_bound + 1e-9
