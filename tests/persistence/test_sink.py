"""PersistenceSink: write-ahead ordering, sequencing, compaction, resolution."""

import pytest

from repro.errors import PersistenceError
from repro.persistence import (
    KIND_EPOCH,
    KIND_POSE,
    KIND_PUBLICATION,
    MemoryBackend,
    PersistenceSink,
    resolve_persistence,
)
from repro.persistence.sqlite import SqliteBackend
from repro.persistence.wal import WalBackend


class TestRecording:
    def test_records_carry_kind_and_monotonic_seq(self):
        sink = PersistenceSink(MemoryBackend())
        first = sink.record_pose({"requester": "epi", "status": "answered"})
        second = sink.record_epoch("schema", 3)
        third = sink.record_publication("HMO1", source_means={"HMO2": 6.1})
        assert (first, second, third) == (1, 2, 3)
        _, records = sink.load()
        assert [r["kind"] for r in records] == [
            KIND_POSE, KIND_EPOCH, KIND_PUBLICATION,
        ]
        assert records[0]["requester"] == "epi"
        assert records[1] == {"kind": KIND_EPOCH, "name": "schema",
                              "value": 3, "seq": 2}
        assert records[2]["source_means"] == {"HMO2": 6.1}

    def test_publication_row_stats_become_json_safe_lists(self):
        sink = PersistenceSink(MemoryBackend())
        sink.record_publication("HMO1", row_stats={"HbA1c": (6.2, 0.3)},
                                sources=("a", "b"))
        _, records = sink.load()
        assert records[0]["row_stats"] == {"HbA1c": [6.2, 0.3]}
        assert records[0]["sources"] == ["a", "b"]

    def test_seq_resumes_from_existing_store(self):
        backend = MemoryBackend()
        PersistenceSink(backend).record_pose({"requester": "a"})
        reopened = PersistenceSink(backend)
        assert reopened.record_pose({"requester": "b"}) == 2

    def test_suspended_drops_appends(self):
        sink = PersistenceSink(MemoryBackend())
        sink.record_pose({"requester": "epi"})
        with sink.suspended():
            assert sink.record_pose({"requester": "replayed"}) is None
        sink.record_pose({"requester": "epi"})
        _, records = sink.load()
        assert [r["seq"] for r in records] == [1, 2]
        assert all(r["requester"] != "replayed" for r in records)


class TestWriteAheadWindow:
    def test_crash_hook_runs_after_durable_append(self):
        """The hook fires with the record already on the medium."""
        backend = MemoryBackend()
        seen = []

        def hook(record):
            _, records = backend.load()
            seen.append((record["seq"], [r["seq"] for r in records]))

        sink = PersistenceSink(backend, crash_hook=hook)
        sink.record_pose({"requester": "epi"})
        assert seen == [(1, [1])]  # durable before the hook observed it

    def test_hook_raise_simulates_crash_but_record_is_charged(self):
        class Boom(BaseException):
            pass

        backend = MemoryBackend()

        def hook(record):
            raise Boom()

        sink = PersistenceSink(backend, crash_hook=hook)
        with pytest.raises(Boom):
            sink.record_pose({"requester": "epi"})
        _, records = backend.load()
        assert [r["seq"] for r in records] == [1]  # charged, not released


class TestCompaction:
    def test_auto_compacts_every_n_records(self):
        backend = MemoryBackend()
        sink = PersistenceSink(backend, snapshot_every=3)
        sink.state_provider = lambda: {"version": 1, "mark": "auto"}
        for _ in range(7):
            sink.record_pose({"requester": "epi"})
        snapshot, records = sink.load()
        assert snapshot["through_seq"] == 6  # compacted at 3 and 6
        assert snapshot["state"]["mark"] == "auto"
        assert [r["seq"] for r in records] == [7]

    def test_no_auto_compaction_without_state_provider(self):
        sink = PersistenceSink(MemoryBackend(), snapshot_every=2)
        for _ in range(5):
            sink.record_pose({"requester": "epi"})
        snapshot, records = sink.load()
        assert snapshot is None
        assert len(records) == 5

    def test_compact_now_requires_state_provider(self):
        sink = PersistenceSink(MemoryBackend())
        with pytest.raises(PersistenceError, match="state_provider"):
            sink.compact_now()

    def test_compact_now_folds_everything_so_far(self):
        sink = PersistenceSink(MemoryBackend(), snapshot_every=None)
        sink.state_provider = lambda: {"version": 1}
        sink.record_pose({"requester": "epi"})
        sink.record_pose({"requester": "epi"})
        assert sink.compact_now() == 2
        snapshot, records = sink.load()
        assert snapshot["through_seq"] == 2
        assert records == []


class TestResolution:
    def test_disabled_shapes(self):
        assert resolve_persistence(None) is None
        assert resolve_persistence(False) is None

    def test_true_means_memory(self):
        sink = resolve_persistence(True)
        assert isinstance(sink, PersistenceSink)
        assert isinstance(sink.backend, MemoryBackend)

    def test_path_shapes_select_backends(self, tmp_path):
        sqlite_sink = resolve_persistence(str(tmp_path / "s.sqlite"))
        db_sink = resolve_persistence(str(tmp_path / "s.db"))
        wal_sink = resolve_persistence(str(tmp_path / "wal-dir"))
        try:
            assert isinstance(sqlite_sink.backend, SqliteBackend)
            assert isinstance(db_sink.backend, SqliteBackend)
            assert isinstance(wal_sink.backend, WalBackend)
        finally:
            sqlite_sink.close()
            db_sink.close()
            wal_sink.close()

    def test_backend_wrapped_and_sink_passes_through(self):
        backend = MemoryBackend()
        sink = resolve_persistence(backend)
        assert sink.backend is backend
        assert resolve_persistence(sink) is sink  # the restart story

    def test_junk_rejected(self):
        with pytest.raises(PersistenceError, match="persistence must be"):
            resolve_persistence(42)
        with pytest.raises(PersistenceError, match="PersistenceBackend"):
            PersistenceSink("not-a-backend")
        with pytest.raises(PersistenceError, match="snapshot_every"):
            PersistenceSink(MemoryBackend(), snapshot_every=0)
