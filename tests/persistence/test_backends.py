"""Backend contract tests: memory, JSONL WAL, and sqlite stores."""

import json
import os
import sqlite3

import pytest

from repro.errors import PersistenceError
from repro.persistence import MemoryBackend
from repro.persistence.sqlite import SqliteBackend
from repro.persistence.wal import LOG_NAME, SNAPSHOT_NAME, WalBackend


@pytest.fixture(params=["memory", "wal", "sqlite"])
def backend(request, tmp_path):
    if request.param == "memory":
        yield MemoryBackend()
    elif request.param == "wal":
        store = WalBackend(tmp_path / "wal")
        yield store
        store.close()
    else:
        store = SqliteBackend(tmp_path / "store.sqlite")
        yield store
        store.close()


def append_n(backend, n, start=1):
    for seq in range(start, start + n):
        backend.append({"seq": seq, "kind": "pose", "requester": "epi",
                        "payload": f"record-{seq}"})


class TestContract:
    def test_fresh_store_is_empty(self, backend):
        assert backend.last_seq() == 0
        assert backend.load() == (None, [])

    def test_append_load_round_trip_in_order(self, backend):
        append_n(backend, 5)
        snapshot, records = backend.load()
        assert snapshot is None
        assert [r["seq"] for r in records] == [1, 2, 3, 4, 5]
        assert records[0]["payload"] == "record-1"
        assert backend.last_seq() == 5

    def test_compact_publishes_snapshot_and_filters_folded(self, backend):
        append_n(backend, 4)
        backend.compact({"version": 1, "note": "through 3"}, 3)
        snapshot, records = backend.load()
        assert snapshot["through_seq"] == 3
        assert snapshot["state"]["note"] == "through 3"
        # folded records never reappear; the tail survives
        assert [r["seq"] for r in records] == [4]
        assert backend.last_seq() == 4

    def test_seq_numbering_survives_compaction(self, backend):
        append_n(backend, 3)
        backend.compact({"version": 1}, 3)
        assert backend.last_seq() == 3  # snapshot alone carries the cursor
        append_n(backend, 2, start=4)
        _, records = backend.load()
        assert [r["seq"] for r in records] == [4, 5]

    def test_stats_are_json_serializable(self, backend):
        append_n(backend, 2)
        info = backend.stats()
        assert info["backend"] == backend.name
        json.dumps(info)


class TestReopen:
    """Real restarts: a second handle on the same medium sees everything."""

    @pytest.mark.parametrize("flavor", ["wal", "sqlite"])
    def test_reopen_resumes_last_seq(self, tmp_path, flavor):
        if flavor == "wal":
            make = lambda: WalBackend(tmp_path / "wal")
        else:
            make = lambda: SqliteBackend(tmp_path / "store.sqlite")
        first = make()
        append_n(first, 4)
        first.compact({"version": 1}, 2)
        first.close()

        second = make()
        try:
            assert second.last_seq() == 4
            snapshot, records = second.load()
            assert snapshot["through_seq"] == 2
            assert [r["seq"] for r in records] == [3, 4]
        finally:
            second.close()


class TestWalCrashAnatomy:
    def test_torn_final_line_is_dropped_and_counted(self, tmp_path):
        store = WalBackend(tmp_path / "wal")
        append_n(store, 3)
        store.close()
        log = tmp_path / "wal" / LOG_NAME
        with open(log, "a", encoding="utf-8") as handle:
            handle.write('{"seq": 4, "kind": "po')  # crash mid-append

        reopened = WalBackend(tmp_path / "wal")
        try:
            snapshot, records = reopened.load()
            assert snapshot is None
            assert [r["seq"] for r in records] == [1, 2, 3]
            assert reopened.stats()["torn_tail_dropped"] == 1
        finally:
            reopened.close()

    def test_interior_corruption_is_fatal(self, tmp_path):
        store = WalBackend(tmp_path / "wal")
        append_n(store, 3)
        store.close()
        log = tmp_path / "wal" / LOG_NAME
        lines = log.read_text().splitlines()
        lines[1] = lines[1][:10]  # damage an *accepted* interior record
        log.write_text("\n".join(lines) + "\n")

        reopened = WalBackend(tmp_path / "wal")
        try:
            with pytest.raises(PersistenceError, match="corrupt wal record"):
                reopened.load()
        finally:
            reopened.close()

    def test_corrupt_snapshot_is_fatal(self, tmp_path):
        store = WalBackend(tmp_path / "wal")
        append_n(store, 2)
        store.compact({"version": 1}, 2)
        store.close()
        (tmp_path / "wal" / SNAPSHOT_NAME).write_text("{not json")
        reopened = WalBackend(tmp_path / "wal")
        try:
            with pytest.raises(PersistenceError, match="snapshot"):
                reopened.load()
        finally:
            reopened.close()

    def test_crash_between_snapshot_and_truncate_never_double_counts(
            self, tmp_path):
        """Folded records left in the log are filtered by through_seq."""
        store = WalBackend(tmp_path / "wal")
        append_n(store, 3)
        store.close()
        # simulate: snapshot published, truncation never ran
        snapshot_path = tmp_path / "wal" / SNAPSHOT_NAME
        snapshot_path.write_text(json.dumps(
            {"through_seq": 2, "state": {"version": 1}}
        ))
        reopened = WalBackend(tmp_path / "wal")
        try:
            snapshot, records = reopened.load()
            assert snapshot["through_seq"] == 2
            assert [r["seq"] for r in records] == [3]
        finally:
            reopened.close()


class TestSqliteSpecifics:
    def test_wal_journal_mode_active(self, tmp_path):
        store = SqliteBackend(tmp_path / "store.sqlite")
        try:
            assert store.stats()["journal_mode"] == "wal"
        finally:
            store.close()

    def test_duplicate_seq_rejected_not_silently_overwritten(self, tmp_path):
        store = SqliteBackend(tmp_path / "store.sqlite")
        try:
            store.append({"seq": 1, "kind": "pose"})
            with pytest.raises(PersistenceError, match="append failed"):
                store.append({"seq": 1, "kind": "pose"})
        finally:
            store.close()

    def test_damaged_committed_row_is_fatal(self, tmp_path):
        path = tmp_path / "store.sqlite"
        store = SqliteBackend(path)
        store.append({"seq": 1, "kind": "pose"})
        store.close()
        raw = sqlite3.connect(str(path))
        raw.execute("UPDATE log SET record = '{broken' WHERE seq = 1")
        raw.commit()
        raw.close()
        reopened = SqliteBackend(path)
        try:
            with pytest.raises(PersistenceError, match="corrupt sqlite"):
                reopened.load()
        finally:
            reopened.close()

    def test_store_is_one_inspectable_file(self, tmp_path):
        path = tmp_path / "store.sqlite"
        store = SqliteBackend(path)
        store.append({"seq": 1, "kind": "pose"})
        store.close()
        assert os.path.exists(path)
        raw = sqlite3.connect(str(path))
        (count,) = raw.execute("SELECT COUNT(*) FROM log").fetchone()
        raw.close()
        assert count == 1
