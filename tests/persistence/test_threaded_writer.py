"""ThreadedWriter: durability through the thread gap, errors, shutdown."""

import threading

import pytest

from repro.errors import PersistenceError
from repro.persistence import MemoryBackend, ThreadedWriter
from repro.telemetry import Telemetry


class FailingBackend(MemoryBackend):
    """MemoryBackend whose appends fail on demand."""

    def __init__(self):
        super().__init__()
        self.fail = False

    def append(self, record):
        if self.fail:
            raise PersistenceError("disk full")
        return super().append(record)


class ClosableBackend(MemoryBackend):
    def __init__(self):
        super().__init__()
        self.closed = False

    def close(self):
        self.closed = True


class TestDurability:
    def test_append_is_durable_when_it_returns(self):
        backend = MemoryBackend()
        writer = ThreadedWriter(backend)
        try:
            seq = writer.append({"seq": 1, "kind": "pose"})
            assert seq == 1
            # no sleeping, no flushing: the contract is that the record
            # is already on the wrapped backend's medium.
            _, records = backend.load()
            assert [r["seq"] for r in records] == [1]
        finally:
            writer.close()

    def test_appends_run_on_the_writer_thread(self):
        backend = MemoryBackend()
        seen = []
        original = backend.append

        def spy(record):
            seen.append(threading.current_thread().name)
            return original(record)

        backend.append = spy
        writer = ThreadedWriter(backend)
        try:
            writer.append({"seq": 1, "kind": "pose"})
        finally:
            writer.close()
        assert seen == ["repro-wal-writer"]

    def test_order_is_preserved(self):
        backend = MemoryBackend()
        writer = ThreadedWriter(backend)
        try:
            for seq in range(1, 21):
                writer.append({"seq": seq})
            _, records = writer.load()
            assert [r["seq"] for r in records] == list(range(1, 21))
        finally:
            writer.close()

    def test_concurrent_appenders_all_land(self):
        backend = MemoryBackend()
        writer = ThreadedWriter(backend)
        errors = []

        def worker(base):
            try:
                for offset in range(10):
                    writer.append({"seq": base + offset})
            except Exception as error:  # pragma: no cover - fail loudly
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(100 * i,))
                   for i in range(1, 5)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        try:
            assert not errors
            _, records = writer.load()
            assert len(records) == 40
        finally:
            writer.close()


class TestErrors:
    def test_writer_side_failure_reraises_in_the_caller(self):
        backend = FailingBackend()
        writer = ThreadedWriter(backend)
        try:
            backend.fail = True
            with pytest.raises(PersistenceError, match="disk full"):
                writer.append({"seq": 1})
            # the writer thread survived the failure
            backend.fail = False
            assert writer.append({"seq": 2}) == 2
        finally:
            writer.close()

    def test_rejects_non_backend(self):
        with pytest.raises(PersistenceError):
            ThreadedWriter(object())


class TestLifecycle:
    def test_close_is_idempotent_and_closes_the_backend(self):
        backend = ClosableBackend()
        writer = ThreadedWriter(backend)
        writer.append({"seq": 1})
        writer.close()
        writer.close()
        assert backend.closed

    def test_append_after_close_raises(self):
        writer = ThreadedWriter(MemoryBackend())
        writer.close()
        with pytest.raises(PersistenceError):
            writer.append({"seq": 1})

    def test_delegated_surface(self):
        backend = MemoryBackend()
        writer = ThreadedWriter(backend)
        try:
            assert writer.name == "threaded-memory"
            writer.append({"seq": 1, "kind": "pose"})
            writer.compact({"folded": True}, 1)
            assert writer.last_seq() == 1
            stats = writer.stats()
            assert stats["writer_thread"] == "repro-wal-writer"
            assert stats["writer_appended"] == 1
        finally:
            writer.close()


class TestTracing:
    def test_append_span_joins_the_records_trace(self):
        telemetry = Telemetry(enabled=True)
        writer = ThreadedWriter(MemoryBackend(), telemetry=telemetry)
        try:
            writer.append({"seq": 1, "kind": "pose",
                           "trace_id": "t-posed"})
        finally:
            writer.close()
        roots = telemetry.tracer.finished
        spans = [s for s in roots if s.name == "persistence.wal.append"]
        assert len(spans) == 1
        assert spans[0].trace_id == "t-posed"
        assert spans[0].attributes["kind"] == "pose"
        assert spans[0].attributes["seq"] == 1

    def test_adopt_telemetry_switches_tracers(self):
        writer = ThreadedWriter(MemoryBackend())
        telemetry = Telemetry(enabled=True)
        try:
            writer.adopt_telemetry(telemetry)
            writer.append({"seq": 1, "kind": "pose", "trace_id": "t-x"})
        finally:
            writer.close()
        assert any(span.name == "persistence.wal.append"
                   for span in telemetry.tracer.finished)
