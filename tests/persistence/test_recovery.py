"""Crash recovery: privacy state survives a restart, on both disk backends.

The scenarios the ISSUE pins:

* a clean restart restores history, cumulative disclosure, the journal
  chain (re-verified across the boundary), watch ledgers, and epochs;
* a crash injected between the write-ahead append and answer release
  leaves the pose *charged but unreleased* — recovery accounts for it;
* a SequenceGuard refusal that was final before the crash is final
  after it;
* the Figure 1 staged-inference sequence spans the restart and the
  SnooperWatch still fires;
* the journal chain verifies across a snapshot boundary (head folded
  into the snapshot, tail in the live log);
* the default in-memory path is untouched: answers are byte-identical
  with persistence on vs off.
"""

import json

import pytest

from repro import PrivateIye
from repro.data import FIGURE1
from repro.errors import AuditRefusal, PersistenceError, PrivacyViolation
from repro.persistence import MemoryBackend, PersistenceSink
from repro.persistence.sqlite import SqliteBackend
from repro.persistence.wal import LOG_NAME, WalBackend
from repro.relational import Table

POLICIES = """
VIEW clinic_private {
    PRIVATE //patient/ssn;
    PRIVATE //patient/hba1c FORM aggregate;
}
VIEW lab_private {
    PRIVATE //patient/ssn;
    PRIVATE //patient/hba1c FORM aggregate;
}

POLICY clinic DEFAULT deny {
    DENY //patient/ssn FOR *;
    ALLOW //patient/hba1c FOR public-health-research FORM aggregate MAXLOSS 0.6;
    ALLOW //patient/city FOR research;
}

POLICY lab DEFAULT deny {
    DENY //patient/ssn FOR *;
    ALLOW //patient/hba1c FOR public-health-research FORM aggregate MAXLOSS 0.6;
    ALLOW //patient/city FOR research;
}
"""

AGGREGATE = (
    "SELECT AVG(//patient/hba1c) AS mean "
    "PURPOSE outbreak-surveillance MAXLOSS 0.6"
)
FORBIDDEN = "SELECT AVG(//patient/hba1c) PURPOSE marketing"


class SimulatedCrash(BaseException):
    """Raised by the fault-injection hook; BaseException so nothing
    between the write-ahead append and the answer release can catch it —
    exactly like a power cut in that window."""


def crash_on_pose(n):
    """A crash hook that kills the process on the n-th *pose* record."""
    state = {"poses": 0}

    def hook(record):
        if record.get("kind") == "pose":
            state["poses"] += 1
            if state["poses"] == n:
                raise SimulatedCrash(record["seq"])

    return hook


def build_system(persistence, **kwargs):
    system = PrivateIye(telemetry=True, observatory=True,
                        persistence=persistence, **kwargs)
    system.load_policies(
        POLICIES,
        view_source={"clinic_private": "clinic", "lab_private": "lab"},
    )
    clinic_rows = [
        {"ssn": f"1-{i:03d}", "hba1c": 60.0 + i % 25,
         "city": ["pittsburgh", "butler"][i % 2]}
        for i in range(30)
    ]
    lab_rows = [
        {"ssn": f"2-{i:03d}", "hba1c": 65.0 + i % 20,
         "city": ["pittsburgh", "erie"][i % 2]}
        for i in range(20)
    ]
    system.add_relational_source(
        "clinic", Table.from_dicts("patients", clinic_rows)
    )
    system.add_relational_source(
        "lab", Table.from_dicts("patients", lab_rows)
    )
    return system


@pytest.fixture(params=["wal", "sqlite"])
def store(request, tmp_path):
    """A persistence target path, parametrized over both disk backends."""
    if request.param == "sqlite":
        return str(tmp_path / "store.sqlite")
    return str(tmp_path / "wal-store")


def restart(store):
    """Rebuild the deployment against the same store — the ops protocol."""
    system = build_system(store)
    report = system.recover()
    return system, report


class TestCleanRestart:
    def test_accounting_survives_the_restart(self, store):
        system = build_system(store)
        system.query(AGGREGATE, requester="epi")
        system.query(AGGREGATE, requester="epi")
        with pytest.raises(PrivacyViolation):
            system.query(FORBIDDEN, requester="advertiser")
        journal = system.audit_journal()
        before = {
            "cumulative": journal.cumulative_loss("epi"),
            "records": len(journal),
            "history": len(system.engine.history),
            "cells": set(
                system.observatory.watch._knowledge["epi"].cells
            ),
            "epochs": system.engine.cache.epochs.to_dict(),
        }
        system.persistence.close()

        recovered, report = restart(store)
        assert report.chain_valid is True
        assert report.journal_records == before["records"]
        assert report.cumulative_loss["epi"] == pytest.approx(
            before["cumulative"]
        )
        journal = recovered.audit_journal()
        assert len(journal) == before["records"]
        assert journal.cumulative_loss("epi") == pytest.approx(
            before["cumulative"]
        )
        assert journal.verify_chain() == (True, None)
        assert len(recovered.engine.history) == before["history"]
        assert set(
            recovered.observatory.watch._knowledge["epi"].cells
        ) == before["cells"]
        # epoch floors: the rebuilt counters are >= every pre-crash value
        epochs = recovered.engine.cache.epochs.to_dict()
        for name, value in before["epochs"].items():
            assert epochs.get(name, 0) >= value

    def test_disclosure_keeps_compounding_after_recovery(self, store):
        system = build_system(store)
        first = system.query(AGGREGATE, requester="epi")
        loss = first.aggregated_loss
        system.query(AGGREGATE, requester="epi")
        system.persistence.close()

        recovered, _ = restart(store)
        recovered.query(AGGREGATE, requester="epi")
        assert recovered.audit_journal().cumulative_loss(
            "epi"
        ) == pytest.approx(1.0 - (1.0 - loss) ** 3)

    def test_recovery_report_is_json_serializable(self, store):
        system = build_system(store)
        system.query(AGGREGATE, requester="epi")
        system.persistence.close()
        _, report = restart(store)
        document = json.loads(json.dumps(report.to_dict()))
        assert document["backend"] in ("wal", "sqlite")
        assert document["chain_valid"] is True
        assert "epi" in document["requesters"]


class TestCrashWindow:
    def test_crashed_pose_is_charged_but_unreleased(self, store, tmp_path):
        if store.endswith(".sqlite"):
            backend = SqliteBackend(store)
        else:
            backend = WalBackend(store)
        sink = PersistenceSink(backend, crash_hook=crash_on_pose(2))
        system = build_system(sink)
        system.query(AGGREGATE, requester="epi")
        with pytest.raises(SimulatedCrash):
            system.query(AGGREGATE, requester="epi")  # dies pre-release
        sink.close()

        # reference: the same two poses with no crash
        reference = build_system(True)
        reference.query(AGGREGATE, requester="epi")
        reference.query(AGGREGATE, requester="epi")
        expected = reference.audit_journal().cumulative_loss("epi")

        recovered, report = restart(store)
        # the interrupted pose was durably charged before the release
        assert report.cumulative_loss["epi"] == pytest.approx(expected)
        journal = recovered.audit_journal()
        assert len(journal) == 2
        assert journal.verify_chain() == (True, None)

    def test_refusals_refused_before_the_crash_stay_refused(self, tmp_path):
        policies = """
VIEW s1_private { PRIVATE //patient/salary FORM aggregate; }
VIEW s2_private { PRIVATE //patient/salary FORM aggregate; }

POLICY s1 DEFAULT deny {
    ALLOW //patient/salary FOR research FORM aggregate MAXLOSS 0.9;
    ALLOW //patient/age FOR research;
}
POLICY s2 DEFAULT deny {
    ALLOW //patient/salary FOR research FORM aggregate MAXLOSS 0.9;
    ALLOW //patient/age FOR research;
}
"""

        def build(persistence):
            system = PrivateIye(telemetry=True, observatory=True,
                                persistence=persistence)
            system.engine.max_distinct_probes = 2
            system.load_policies(
                policies,
                view_source={"s1_private": "s1", "s2_private": "s2"},
            )
            for name in ("s1", "s2"):
                rows = [{"age": 25 + i, "salary": 1000.0 + 100 * i}
                        for i in range(40)]
                system.add_relational_source(
                    name, Table.from_dicts("patients", rows)
                )
            return system

        path = str(tmp_path / "guard-store")
        probe = ("SELECT AVG(//patient/salary) WHERE //patient/age > {n} "
                 "PURPOSE research")
        system = build(path)
        system.query(probe.format(n=30), requester="snoop")
        system.query(probe.format(n=32), requester="snoop")
        with pytest.raises(AuditRefusal):
            system.query(probe.format(n=34), requester="snoop")
        system.persistence.close()

        recovered = build(path)
        recovered.recover()
        # the guard window is rebuilt from restored history: the probe
        # that was over the limit before the crash is still over it
        with pytest.raises(AuditRefusal):
            recovered.query(probe.format(n=34), requester="snoop")
        with pytest.raises(AuditRefusal):
            recovered.query(probe.format(n=99), requester="snoop")


class TestFigure1AcrossRestart:
    def test_staged_inference_completes_after_the_restart(self, store):
        system = build_system(store)
        observatory = system.observatory
        # release 1 (pre-crash): the snooper's own column
        assert observatory.note_publication(
            "HMO1",
            own_data={"HMO1": dict(zip(FIGURE1.measures,
                                       FIGURE1.hmo1_values))},
        ) == []
        # release 2 (pre-crash): per-test means over all four HMOs
        assert observatory.note_publication(
            "HMO1",
            row_stats={m: (mean, None) for m, mean in
                       zip(FIGURE1.measures, FIGURE1.row_means)},
            sources=FIGURE1.sources,
        ) == []
        system.persistence.close()

        recovered, report = restart(store)
        assert report.alerts == []  # nothing inferable yet, even replayed
        # release 3 (post-restart): the standard deviations — the
        # interval collapses NOW, spanning the crash
        alerts = recovered.observatory.note_publication(
            "HMO1",
            row_stats={m: (mean, std) for m, mean, std in
                       zip(FIGURE1.measures, FIGURE1.row_means,
                           FIGURE1.row_stds)},
            sources=FIGURE1.sources,
        )
        assert alerts, "watch must fire mid-sequence despite the restart"
        assert all(alert.source != "HMO1" for alert in alerts)
        assert all(alert.width < 5.0 for alert in alerts)

    def test_alerts_refire_after_restart_at_least_once(self, store):
        system = build_system(store)
        observatory = system.observatory
        observatory.note_publication(
            "HMO1",
            own_data={"HMO1": dict(zip(FIGURE1.measures,
                                       FIGURE1.hmo1_values))},
            row_stats={m: (mean, std) for m, mean, std in
                       zip(FIGURE1.measures, FIGURE1.row_means,
                           FIGURE1.row_stds)},
            source_means=dict(zip(FIGURE1.sources, FIGURE1.source_means)),
            sources=FIGURE1.sources,
            measures=FIGURE1.measures,
        )
        fired = observatory.watch.alerts
        assert fired
        system.persistence.close()

        # alert dedup state is process-local BY DESIGN: the operator who
        # lost the alert to the crash gets it again on recovery
        _, report = restart(store)
        assert report.alerts
        breached = {(a.measure, a.source) for a in report.alerts}
        assert breached == {(a.measure, a.source) for a in fired}


class TestSnapshotBoundary:
    def test_journal_chain_verifies_across_the_snapshot(self, store):
        """Satellite: chain head folded into the snapshot, tail live."""
        if store.endswith(".sqlite"):
            backend = SqliteBackend(store)
        else:
            backend = WalBackend(store)
        sink = PersistenceSink(backend, snapshot_every=None)
        system = build_system(sink)
        system.query(AGGREGATE, requester="epi")
        system.query(AGGREGATE, requester="epi")
        sink.compact_now()  # head of the chain now lives in the snapshot
        system.query(AGGREGATE, requester="epi")
        with pytest.raises(PrivacyViolation):
            system.query(FORBIDDEN, requester="advertiser")
        snapshot, records = sink.load()
        assert len(snapshot["state"]["journal"]) == 2  # head, folded
        tail = [r for r in records if r.get("kind") == "pose"]
        assert len(tail) == 2                          # tail, live
        expected = system.audit_journal().cumulative_loss("epi")
        sink.close()

        recovered, report = restart(store)
        assert report.snapshot_through_seq > 0
        assert report.journal_records == 4
        journal = recovered.audit_journal()
        assert len(journal) == 4
        assert journal.verify_chain() == (True, None)
        assert journal.cumulative_loss("epi") == pytest.approx(expected)

    def test_auto_compaction_round_trips_under_load(self, store):
        sink = (PersistenceSink(SqliteBackend(store), snapshot_every=5)
                if store.endswith(".sqlite")
                else PersistenceSink(WalBackend(store), snapshot_every=5))
        system = build_system(sink)
        for _ in range(8):
            system.query(AGGREGATE, requester="epi")
        snapshot, _ = sink.load()
        assert snapshot is not None  # compaction really happened
        expected = system.audit_journal().cumulative_loss("epi")
        sink.close()

        recovered, _ = restart(store)
        journal = recovered.audit_journal()
        assert len(journal) == 8
        assert journal.verify_chain() == (True, None)
        assert journal.cumulative_loss("epi") == pytest.approx(expected)


class TestRefusalsAndGuards:
    def test_recover_requires_persistence(self):
        system = build_system(None)
        with pytest.raises(PersistenceError, match="persistence"):
            system.recover()

    def test_recover_into_a_live_system_is_refused(self, store):
        system = build_system(store)
        system.query(AGGREGATE, requester="epi")
        with pytest.raises(PersistenceError, match="non-empty"):
            system.recover()

    def test_tampered_journal_refuses_recovery(self, tmp_path):
        path = str(tmp_path / "wal-store")
        system = build_system(path)
        system.query(AGGREGATE, requester="epi")
        system.persistence.close()

        log_path = tmp_path / "wal-store" / LOG_NAME
        doctored = []
        tampered = False
        for line in log_path.read_text().splitlines():
            record = json.loads(line)
            if record.get("kind") == "pose" and record.get("journal"):
                # quietly shrink the journaled disclosure — the sha256
                # chain must catch exactly this kind of revisionism
                record["journal"]["aggregated_loss"] = 0.0
                tampered = True
            doctored.append(json.dumps(record, sort_keys=True,
                                       separators=(",", ":")))
        assert tampered
        log_path.write_text("\n".join(doctored) + "\n")

        rebuilt = build_system(path)
        with pytest.raises(PersistenceError, match="chain"):
            rebuilt.recover()


class TestDifferential:
    def test_answers_identical_persistence_on_vs_off(self, store):
        """Durability must never perturb answers — byte for byte."""
        plain = build_system(None)
        durable = build_system(store)
        queries = [
            (AGGREGATE, "epi"),
            ("SELECT //patient/city PURPOSE research", "bob"),
            (AGGREGATE, "epi"),
        ]
        for text, requester in queries:
            a = plain.query(text, requester=requester)
            b = durable.query(text, requester=requester)
            assert (json.dumps(a.rows, sort_keys=True, default=repr)
                    == json.dumps(b.rows, sort_keys=True, default=repr))
            assert a.aggregated_loss == b.aggregated_loss
            assert a.per_source_loss == b.per_source_loss
        # and the durable side really was recording
        _, records = durable.persistence.load()
        assert sum(1 for r in records if r.get("kind") == "pose") == 3
        durable.persistence.close()

    def test_shared_memory_sink_is_the_simulated_restart(self):
        sink = PersistenceSink(MemoryBackend())
        system = build_system(sink)
        system.query(AGGREGATE, requester="epi")
        expected = system.audit_journal().cumulative_loss("epi")

        rebuilt = build_system(sink)  # pass the same sink: restart story
        report = rebuilt.recover()
        assert report.backend == "memory"
        assert report.cumulative_loss["epi"] == pytest.approx(expected)
