"""The ops CLI: ``python -m repro.persistence verify|stats|migrate``."""

import json

import pytest

from repro import PrivateIye
from repro.persistence.cli import main, migrate_store, verify_store
from repro.persistence.wal import LOG_NAME
from repro.relational import Table

POLICIES = """
VIEW s1_private { PRIVATE //patient/hba1c FORM aggregate; }

POLICY s1 DEFAULT deny {
    ALLOW //patient/hba1c FOR research FORM aggregate MAXLOSS 0.6;
}
"""

AGGREGATE = "SELECT AVG(//patient/hba1c) AS mean PURPOSE research"


def populate(path, poses=3):
    system = PrivateIye(telemetry=True, observatory=True, persistence=path)
    system.load_policies(POLICIES, view_source={"s1_private": "s1"})
    rows = [{"hba1c": 60.0 + i} for i in range(20)]
    system.add_relational_source("s1", Table.from_dicts("patients", rows))
    for _ in range(poses):
        system.query(AGGREGATE, requester="epi")
    system.persistence.close()
    return system


class TestVerify:
    def test_verify_reports_a_valid_chain(self, tmp_path, capsys):
        path = str(tmp_path / "wal-store")
        populate(path)
        assert main(["verify", path]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["chain_valid"] is True
        assert report["first_bad_seq"] is None
        assert report["journal_records"] == 3
        assert report["backend"] == "wal"

    def test_verify_fails_on_a_tampered_chain(self, tmp_path, capsys):
        path = str(tmp_path / "wal-store")
        populate(path)
        log = tmp_path / "wal-store" / LOG_NAME
        text = log.read_text().replace('"status":"answered"',
                                       '"status":"denied"', 1)
        log.write_text(text)
        assert main(["verify", path]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["chain_valid"] is False
        assert report["first_bad_seq"] is not None

    def test_verify_missing_store_is_an_error_not_a_traceback(
            self, tmp_path, capsys):
        missing = str(tmp_path / "absent.sqlite")
        code = main(["verify", missing])
        captured = capsys.readouterr()
        # an empty store verifies trivially (0 records) — the chain of
        # nothing holds; corrupt stores are the error path
        assert code == 0
        assert json.loads(captured.out)["journal_records"] == 0


class TestStats:
    def test_stats_shape(self, tmp_path, capsys):
        path = str(tmp_path / "store.sqlite")
        populate(path)
        assert main(["stats", path]) == 0
        info = json.loads(capsys.readouterr().out)
        assert info["backend"] == "sqlite"
        assert info["last_seq"] >= 3


class TestMigrate:
    def test_wal_to_sqlite_preserves_recovery(self, tmp_path, capsys):
        src = str(tmp_path / "wal-store")
        dst = str(tmp_path / "migrated.sqlite")
        populate(src)
        before = verify_store(src)

        assert main(["migrate", src, dst]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["src_backend"] == "wal"
        assert summary["dst_backend"] == "sqlite"
        assert summary["records_migrated"] == before["log_records"]

        after = verify_store(dst)
        assert after["chain_valid"] is True
        assert after["journal_records"] == before["journal_records"]

        # the migrated store recovers the identical accounting
        system = PrivateIye(telemetry=True, observatory=True,
                            persistence=dst)
        system.load_policies(POLICIES, view_source={"s1_private": "s1"})
        rows = [{"hba1c": 60.0 + i} for i in range(20)]
        system.add_relational_source(
            "s1", Table.from_dicts("patients", rows)
        )
        report = system.recover()
        assert report.journal_records == before["journal_records"]
        assert "epi" in report.cumulative_loss
        system.persistence.close()

    def test_migrate_refuses_a_non_empty_destination(self, tmp_path, capsys):
        src = str(tmp_path / "wal-store")
        dst = str(tmp_path / "occupied.sqlite")
        populate(src)
        populate(dst, poses=1)
        assert main(["migrate", src, dst]) == 1
        captured = capsys.readouterr()
        assert "not empty" in json.loads(captured.err)["error"]

    def test_migrate_via_functions_round_trips_snapshot(self, tmp_path):
        src = str(tmp_path / "wal-store")
        dst = str(tmp_path / "migrated.sqlite")
        system = populate(src, poses=2)
        del system
        summary = migrate_store(src, dst)
        assert summary["snapshot_migrated"] is False  # nothing compacted
        assert verify_store(dst)["chain_valid"] is True


class TestArgparse:
    def test_unknown_command_exits_via_argparse(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
