"""Unit tests for the XML result transformer + tagger."""

import pytest

from repro.errors import ReproError
from repro.policy import DisclosureForm
from repro.relational import Table
from repro.source import tag_results
from repro.source.knowledge import default_techniques
from repro.source.results import untag_results
from repro.xmlkit import parse_xml, serialize


def result_table():
    return Table.from_dicts(
        "out",
        [
            {"age": 61, "rate": 82.5, "hmo": "HMO1", "note": None,
             "flag": True},
            {"age": 70, "rate": 88.0, "hmo": "HMO2", "note": "x",
             "flag": False},
        ],
    )


class TestTagging:
    def test_metadata_structure(self):
        document = tag_results(
            result_table(), "HMO1",
            {"age": DisclosureForm.RANGE}, 0.25,
            default_techniques()[:2],
        )
        assert document.get("source") == "HMO1"
        meta = document.find("privacy-metadata")
        assert meta.find("loss").text == "0.250000"
        technique_names = [
            t.text for t in meta.find("techniques").find_all("technique")
        ]
        assert len(technique_names) == 2
        forms = {
            n.get("name"): n.get("form")
            for n in meta.find("forms").find_all("column")
        }
        assert forms["age"] == "range"
        assert forms["rate"] == "exact"

    def test_generalizer_applied_to_range_columns(self):
        document = tag_results(
            result_table(), "HMO1",
            {"age": DisclosureForm.RANGE}, 0.1,
            generalizers={"age": lambda v: f"[{v - 1}-{v + 9})"},
        )
        _s, rows, _m = untag_results(document)
        assert rows[0]["age"] == "[60-70)"

    def test_null_cells_round_trip(self):
        document = tag_results(result_table(), "S", {}, 0.0)
        _s, rows, _m = untag_results(document)
        assert rows[0]["note"] is None

    def test_types_round_trip(self):
        document = tag_results(result_table(), "S", {}, 0.0)
        _s, rows, _m = untag_results(document)
        assert rows[0]["age"] == 61
        assert rows[0]["rate"] == 82.5
        assert rows[0]["flag"] is True
        assert rows[1]["hmo"] == "HMO2"

    def test_serialized_round_trip_through_parser(self):
        document = tag_results(result_table(), "S", {}, 0.5)
        reparsed = parse_xml(serialize(document))
        source, rows, meta = untag_results(reparsed)
        assert source == "S"
        assert len(rows) == 2
        assert meta["loss"] == 0.5

    def test_loss_bounds_validated(self):
        with pytest.raises(ReproError):
            tag_results(result_table(), "S", {}, 1.5)

    def test_untag_rejects_wrong_root(self):
        from repro.xmlkit import Element

        with pytest.raises(ReproError):
            untag_results(Element("nope"))

    def test_untag_requires_metadata(self):
        from repro.xmlkit import Element

        with pytest.raises(ReproError, match="metadata"):
            untag_results(Element("results"))

    def test_hexlike_strings_survive(self):
        table = Table.from_dicts("t", [{"id": "12e4abc56789"}])
        document = tag_results(table, "S", {}, 0.0)
        _s, rows, _m = untag_results(document)
        assert rows[0]["id"] == "12e4abc56789"
