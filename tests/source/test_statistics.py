"""Unit tests for table statistics and selectivity estimation."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ReproError
from repro.relational import (
    And,
    Comparison,
    InList,
    IsNull,
    Not,
    Or,
    Table,
    TRUE,
)
from repro.source import TableStatistics


def table(n=1000, seed=5):
    rng = random.Random(seed)
    rows = [
        {"age": rng.randint(0, 99),
         "dept": rng.choice(["sales"] * 6 + ["eng"] * 3 + ["hr"]),
         "bonus": rng.uniform(0, 100) if rng.random() > 0.2 else None}
        for _ in range(n)
    ]
    return Table.from_dicts("staff", rows, types={"bonus": "float"})


@pytest.fixture(scope="module")
def stats():
    return TableStatistics(table())


class TestColumnStats:
    def test_true_is_everything(self, stats):
        assert stats.selectivity(TRUE) == 1.0

    def test_uniform_range(self, stats):
        estimate = stats.selectivity(Comparison("age", "<", 50))
        assert estimate == pytest.approx(0.5, abs=0.08)

    def test_range_extremes(self, stats):
        assert stats.selectivity(Comparison("age", "<", -5)) == pytest.approx(0.0, abs=0.01)
        assert stats.selectivity(Comparison("age", "<", 500)) == pytest.approx(1.0, abs=0.01)
        assert stats.selectivity(Comparison("age", ">", 500)) == pytest.approx(0.0, abs=0.01)

    def test_categorical_equality_uses_value_counts(self, stats):
        sales = stats.selectivity(Comparison("dept", "=", "sales"))
        hr = stats.selectivity(Comparison("dept", "=", "hr"))
        assert sales == pytest.approx(0.6, abs=0.06)
        assert hr == pytest.approx(0.1, abs=0.04)
        assert stats.selectivity(Comparison("dept", "=", "ghost")) == 0.0

    def test_numeric_equality_uses_distinct_count(self, stats):
        estimate = stats.selectivity(Comparison("age", "=", 40))
        assert estimate == pytest.approx(1.0 / 100, abs=0.01)

    def test_not_equal_complements(self, stats):
        eq = stats.selectivity(Comparison("dept", "=", "sales"))
        ne = stats.selectivity(Comparison("dept", "!=", "sales"))
        assert eq + ne == pytest.approx(1.0)

    def test_null_fraction(self, stats):
        estimate = stats.selectivity(IsNull("bonus"))
        assert estimate == pytest.approx(0.2, abs=0.05)
        assert stats.selectivity(IsNull("bonus", negated=True)) == pytest.approx(
            0.8, abs=0.05
        )

    def test_in_list_sums(self, stats):
        estimate = stats.selectivity(InList("dept", ["sales", "hr"]))
        assert estimate == pytest.approx(0.7, abs=0.06)

    def test_and_multiplies(self, stats):
        conjunct = And([Comparison("age", "<", 50),
                        Comparison("dept", "=", "sales")])
        assert stats.selectivity(conjunct) == pytest.approx(0.3, abs=0.08)

    def test_or_union(self, stats):
        disjunct = Or([Comparison("dept", "=", "sales"),
                       Comparison("dept", "=", "eng")])
        assert stats.selectivity(disjunct) == pytest.approx(
            0.6 + 0.3 - 0.18, abs=0.08
        )

    def test_not_complements(self, stats):
        estimate = stats.selectivity(Not(Comparison("age", "<", 50)))
        assert estimate == pytest.approx(0.5, abs=0.08)

    def test_unknown_column_falls_back(self, stats):
        assert 0.0 < stats.selectivity(Comparison("ghost", "=", 1)) <= 0.2

    def test_estimated_rows(self, stats):
        rows = stats.estimated_rows(Comparison("age", "<", 50))
        assert rows == pytest.approx(500, abs=80)

    def test_bad_expr_rejected(self, stats):
        with pytest.raises(ReproError):
            stats.selectivity("age < 5")


class TestAccuracy:
    def test_estimates_track_truth(self):
        t = table(2000, seed=9)
        stats = TableStatistics(t)
        rows = list(t.rows_as_dicts())
        for predicate in (
            Comparison("age", ">", 70),
            Comparison("age", "<=", 25),
            And([Comparison("age", ">", 30), Comparison("dept", "=", "eng")]),
        ):
            truth = sum(1 for r in rows if predicate.evaluate(r)) / len(rows)
            estimate = stats.selectivity(predicate)
            assert estimate == pytest.approx(truth, abs=0.1)


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=-20, max_value=120),
       st.sampled_from(["<", "<=", ">", ">="]))
def test_selectivity_bounds_property(threshold, op):
    """Selectivity is always within [0, 1]."""
    stats = TableStatistics(table(300, seed=1))
    estimate = stats.selectivity(Comparison("age", op, threshold))
    assert 0.0 <= estimate <= 1.0
