"""Unit tests for the KB, clusterer, loss estimator, and optimizer."""

import pytest

from repro.errors import PrivacyViolation, ReproError
from repro.policy import DisclosureForm, PrivacyView
from repro.policy.model import Decision
from repro.query import extract_features, parse_piql
from repro.relational import Table
from repro.source import (
    BreachType,
    PathMapping,
    PreservationKnowledgeBase,
    PrivacyAwareOptimizer,
    PrivacyLossEstimator,
    PrivacyRewriter,
    QueryClusterer,
    QueryTransformer,
    Technique,
)


def table():
    return Table.from_dicts(
        "patients",
        [{"id": i, "age": 20 + i, "hba1c": 70.0 + i, "hmo": f"HMO{i % 3}"}
         for i in range(50)],
    )


def view():
    return PrivacyView("v", [("//hba1c", DisclosureForm.AGGREGATE)])


def features_of(text):
    return extract_features(parse_piql(text), view())


def rewrite_of(text, decisions):
    query = QueryTransformer(PathMapping(table())).transform(parse_piql(text)).query
    return PrivacyRewriter().rewrite(query, decisions)


def allow(form=DisclosureForm.EXACT, loss=1.0):
    return Decision(True, form, loss, ["t"])


class TestKnowledgeBase:
    def test_record_level_breaches(self):
        kb = PreservationKnowledgeBase()
        breaches = kb.infer_breaches(
            features_of("SELECT //patient/id, //patient/hba1c")
        )
        assert BreachType.REIDENTIFICATION in breaches
        assert BreachType.LINKAGE in breaches
        assert BreachType.ATTRIBUTE_DISCLOSURE in breaches

    def test_aggregate_breaches(self):
        kb = PreservationKnowledgeBase()
        breaches = kb.infer_breaches(
            features_of("SELECT AVG(//hba1c) WHERE //patient/hmo = 'HMO1'")
        )
        assert BreachType.SMALL_SET_AGGREGATE in breaches
        assert BreachType.TRACKER_SEQUENCE in breaches
        assert BreachType.REIDENTIFICATION not in breaches

    def test_broad_aggregate_fewer_breaches(self):
        kb = PreservationKnowledgeBase()
        breaches = kb.infer_breaches(features_of("SELECT COUNT(*)"))
        assert BreachType.SMALL_SET_AGGREGATE not in breaches

    def test_techniques_for(self):
        kb = PreservationKnowledgeBase()
        techniques = kb.techniques_for({BreachType.TRACKER_SEQUENCE})
        names = [t.name for t in techniques]
        assert "audit-trail" in names
        assert "k-anonymize" not in names

    def test_technique_validation(self):
        with pytest.raises(ReproError):
            Technique("x", set(), 1.5, 0.1, 1.0)
        with pytest.raises(ReproError):
            Technique("x", set(), 0.5, 0.1, -1.0)


class TestClusterer:
    def test_similar_queries_share_cluster(self):
        clusterer = QueryClusterer()
        a = clusterer.match(features_of("SELECT AVG(//hba1c) WHERE //age > 60"))
        b = clusterer.match(features_of("SELECT AVG(//hba1c) WHERE //age > 70"))
        assert a is b
        assert clusterer.kb_derivations == 1

    def test_dissimilar_queries_split_clusters(self):
        clusterer = QueryClusterer(radius=0.3)
        a = clusterer.match(features_of("SELECT //patient/id, //patient/hba1c"))
        b = clusterer.match(features_of("SELECT COUNT(*)"))
        assert a is not b
        assert a.breaches != b.breaches

    def test_centroid_absorbs_members(self):
        clusterer = QueryClusterer()
        cluster = clusterer.match(features_of("SELECT COUNT(*)"))
        clusterer.match(features_of("SELECT COUNT(*)"))
        assert cluster.members == 2

    def test_validation(self):
        with pytest.raises(ReproError):
            QueryClusterer(radius=0.0)
        with pytest.raises(ReproError):
            QueryClusterer().match("not features")


class TestLossEstimator:
    def estimator(self):
        return PrivacyLossEstimator(1000, private_columns={"hba1c"})

    def test_record_level_private_exact_is_high(self):
        rewrite = rewrite_of("SELECT //patient/hba1c", {"hba1c": allow()})
        estimate = self.estimator().estimate(
            rewrite, features_of("SELECT //patient/hba1c")
        )
        assert estimate.privacy_loss == pytest.approx(1.0)

    def test_public_columns_leak_less(self):
        rewrite = rewrite_of("SELECT //patient/age", {"age": allow()})
        estimate = self.estimator().estimate(
            rewrite, features_of("SELECT //patient/age")
        )
        assert estimate.privacy_loss < 0.5

    def test_aggregates_amortize_over_set_size(self):
        broad = rewrite_of("SELECT AVG(//hba1c)", {"hba1c": allow(DisclosureForm.AGGREGATE)})
        narrow = rewrite_of(
            "SELECT AVG(//hba1c) WHERE //id = 7",
            {"hba1c": allow(DisclosureForm.AGGREGATE), "id": allow()},
        )
        estimator = self.estimator()
        broad_loss = estimator.estimate(
            broad, features_of("SELECT AVG(//hba1c)")
        ).privacy_loss
        narrow_loss = estimator.estimate(
            narrow, features_of("SELECT AVG(//hba1c) WHERE //id = 7")
        ).privacy_loss
        assert narrow_loss > broad_loss

    def test_techniques_reduce_privacy_loss_add_info_loss(self):
        rewrite = rewrite_of("SELECT //patient/hba1c", {"hba1c": allow()})
        features = features_of("SELECT //patient/hba1c")
        estimator = self.estimator()
        bare = estimator.estimate(rewrite, features)
        kb = PreservationKnowledgeBase()
        techniques = kb.techniques_for({BreachType.REIDENTIFICATION})
        protected = estimator.estimate(rewrite, features, techniques)
        assert protected.privacy_loss < bare.privacy_loss
        assert protected.information_loss > bare.information_loss

    def test_validation(self):
        with pytest.raises(ReproError):
            PrivacyLossEstimator(0)


class TestOptimizer:
    def setup_pieces(self, text="SELECT //patient/age WHERE //patient/hmo = 'HMO1'"):
        decisions = {"age": allow(), "hmo": allow()}
        rewrite = rewrite_of(text, decisions)
        features = features_of(text)
        estimator = PrivacyLossEstimator(10000)
        estimate = estimator.estimate(rewrite, features)
        return rewrite, estimate

    def test_rewrite_strategy_wins_with_selective_predicates(self):
        rewrite, estimate = self.setup_pieces()
        optimizer = PrivacyAwareOptimizer(10000)
        plan = optimizer.plan(rewrite, estimate, [], selectivity=0.05)
        assert plan.strategy == "rewrite-then-execute"

    def test_filter_strategy_never_cheaper(self):
        rewrite, estimate = self.setup_pieces()
        optimizer = PrivacyAwareOptimizer(10000)
        for selectivity in (0.01, 0.2, 1.0):
            plan = optimizer.plan(rewrite, estimate, [], selectivity=selectivity)
            assert plan.strategy == "rewrite-then-execute"

    def test_budget_pruning(self):
        text = "SELECT //patient/hba1c"
        rewrite = rewrite_of(text, {"hba1c": allow()})
        estimator = PrivacyLossEstimator(100, private_columns={"hba1c"})
        estimate = estimator.estimate(rewrite, features_of(text))
        optimizer = PrivacyAwareOptimizer(100)
        with pytest.raises(PrivacyViolation, match="exceeds budget"):
            optimizer.plan(rewrite, estimate, [], max_loss=0.2)

    def test_policy_budget_also_prunes(self):
        text = "SELECT //patient/hba1c"
        rewrite = rewrite_of(text, {"hba1c": allow(loss=0.1)})
        estimator = PrivacyLossEstimator(100, private_columns={"hba1c"})
        estimate = estimator.estimate(rewrite, features_of(text))
        with pytest.raises(PrivacyViolation):
            PrivacyAwareOptimizer(100).plan(rewrite, estimate, [])

    def test_plan_lists_technique_steps(self):
        rewrite, estimate = self.setup_pieces()
        kb = PreservationKnowledgeBase()
        techniques = kb.techniques_for({BreachType.REIDENTIFICATION})
        plan = PrivacyAwareOptimizer(10000).plan(rewrite, estimate, techniques)
        assert any(step.startswith("apply:") for step in plan.steps)

    def test_validation(self):
        with pytest.raises(ReproError):
            PrivacyAwareOptimizer(0)
        rewrite, estimate = self.setup_pieces()
        with pytest.raises(ReproError):
            PrivacyAwareOptimizer(10).plan(rewrite, estimate, [], selectivity=2.0)
