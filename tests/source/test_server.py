"""Integration tests for the RemoteSource pipeline (Figure 2a)."""

import pytest

from repro.anonymity import interval_hierarchy
from repro.errors import PrivacyViolation, QueryError
from repro.policy import PolicyStore
from repro.query import parse_piql
from repro.relational import Catalog, Comparison, Table
from repro.source import RemoteSource
from repro.source.results import untag_results

POLICY_DOC = """
VIEW hmo1_private {
    PRIVATE //patient/ssn;
    PRIVATE //patient/age FORM range;
    PRIVATE //patient/hba1c FORM aggregate;
}

POLICY HMO1 DEFAULT deny {
    DENY //patient/ssn FOR *;
    ALLOW //patient/age FOR research FORM range;
    ALLOW //patient/hba1c FOR public-health-research FORM aggregate MAXLOSS 0.5;
    ALLOW //patient/hmo FOR research FORM exact;
    ALLOW //patient/id FOR research FORM exact;
    ALLOW //patient/consented FOR research FORM exact;
}
"""


def build_source(consent=False, overlap=None):
    rows = [
        {"id": i, "ssn": f"123-45-{i:04d}", "age": 20 + (i % 60),
         "hba1c": 60.0 + (i % 30), "hmo": "HMO1",
         "consented": i % 4 != 0}
        for i in range(80)
    ]
    catalog = Catalog("HMO1")
    catalog.add(Table.from_dicts("patients", rows))
    store = PolicyStore()
    store.load_document(POLICY_DOC, view_source={"hmo1_private": "HMO1"})
    source = RemoteSource(
        "HMO1", catalog, "patients", store,
        consent_predicate=Comparison("consented", "=", True) if consent else None,
        hierarchies={"age": interval_hierarchy("age", [10, 20])},
        qi_columns=["age"],
    )
    if overlap is not None:
        source.enable_overlap_control(overlap)
    return source


class TestAggregateQueries:
    def test_aggregate_over_private_column_allowed(self):
        source = build_source()
        response = source.answer(
            parse_piql(
                "SELECT AVG(//patient/hba1c) AS mean "
                "PURPOSE outbreak-surveillance MAXLOSS 0.5"
            )
        )
        _src, rows, meta = untag_results(response.document)
        assert _src == "HMO1"
        assert len(rows) == 1
        assert 60.0 <= rows[0]["mean"] <= 90.0
        assert meta["loss"] <= 0.5

    def test_group_by_aggregate(self):
        source = build_source()
        response = source.answer(
            parse_piql(
                "SELECT AVG(//patient/hba1c) AS mean "
                "GROUP BY //patient/hmo PURPOSE outbreak-surveillance"
            )
        )
        _src, rows, _meta = untag_results(response.document)
        assert rows[0]["hmo"] == "HMO1"

    def test_record_level_private_column_refused(self):
        source = build_source()
        with pytest.raises(PrivacyViolation):
            source.answer(
                parse_piql("SELECT //patient/hba1c PURPOSE outbreak-surveillance")
            )

    def test_wrong_purpose_refused(self):
        source = build_source()
        with pytest.raises(PrivacyViolation):
            source.answer(
                parse_piql("SELECT AVG(//patient/hba1c) PURPOSE marketing")
            )
        assert source.queries_refused == 1

    def test_small_set_aggregate_refused(self):
        source = build_source()
        with pytest.raises(PrivacyViolation):
            source.answer(
                parse_piql(
                    "SELECT AVG(//patient/hba1c) WHERE //patient/id = 7 "
                    "PURPOSE outbreak-surveillance"
                )
            )

    def test_audit_blocks_difference_sequence(self):
        source = build_source()
        source.answer(
            parse_piql(
                "SELECT SUM(//patient/hba1c) WHERE //patient/age < 50 "
                "PURPOSE outbreak-surveillance"
            )
        )
        with pytest.raises(PrivacyViolation):
            source.answer(
                parse_piql(
                    "SELECT SUM(//patient/hba1c) WHERE //patient/age < 51 "
                    "PURPOSE outbreak-surveillance"
                )
            )

    def test_overlap_control_optional(self):
        source = build_source(overlap=5)
        source.answer(
            parse_piql(
                "SELECT COUNT(*) WHERE //patient/age < 50 PURPOSE research"
            )
        )
        with pytest.raises(PrivacyViolation, match="overlap"):
            source.answer(
                parse_piql(
                    "SELECT COUNT(*) WHERE //patient/age < 49 PURPOSE research"
                )
            )


class TestRecordLevelQueries:
    def test_range_form_generalizes_values(self):
        source = build_source()
        response = source.answer(
            parse_piql("SELECT //patient/age PURPOSE research")
        )
        _src, rows, meta = untag_results(response.document)
        assert meta["forms"]["age"] == "range"
        assert all(str(r["age"]).startswith("[") for r in rows)

    def test_ssn_never_disclosed(self):
        source = build_source()
        with pytest.raises(PrivacyViolation):
            source.answer(parse_piql("SELECT //patient/ssn PURPOSE research"))

    def test_denied_column_dropped_but_query_succeeds(self):
        source = build_source()
        response = source.answer(
            parse_piql("SELECT //patient/age, //patient/ssn PURPOSE research")
        )
        _src, rows, _meta = untag_results(response.document)
        assert "ssn" not in rows[0]
        assert "ssn" in response.rewrite.dropped

    def test_identifier_pseudonymized(self):
        source = build_source()
        response = source.answer(
            parse_piql("SELECT //patient/id, //patient/age PURPOSE research")
        )
        _src, rows, _meta = untag_results(response.document)
        # ids replaced by keyed pseudonyms, not the raw integers
        assert all(isinstance(r["id"], str) and len(r["id"]) == 12 for r in rows)

    def test_consent_predicate_restricts_rows(self):
        with_consent = build_source(consent=True)
        without_consent = build_source(consent=False)
        query = "SELECT //patient/age PURPOSE research"
        n_with = len(untag_results(
            with_consent.answer(parse_piql(query)).document
        )[1])
        n_without = len(untag_results(
            without_consent.answer(parse_piql(query)).document
        )[1])
        assert n_with < n_without


class TestPipelineMetadata:
    def test_sql_and_plan_exposed(self):
        source = build_source()
        response = source.answer(
            parse_piql("SELECT COUNT(*) PURPOSE research")
        )
        assert "SELECT COUNT(*)" in response.sql
        assert response.plan.strategy == "rewrite-then-execute"
        assert response.cluster is not None

    def test_counters(self):
        source = build_source()
        source.answer(parse_piql("SELECT COUNT(*) PURPOSE research"))
        assert source.queries_answered == 1
        assert source.queries_refused == 0

    def test_clusters_reused_across_similar_queries(self):
        source = build_source()
        source.answer(parse_piql(
            "SELECT AVG(//patient/hba1c) WHERE //patient/age > 30 "
            "PURPOSE outbreak-surveillance"))
        source.answer(parse_piql(
            "SELECT AVG(//patient/hba1c) WHERE //patient/age > 42 "
            "PURPOSE outbreak-surveillance"))
        assert source.clusterer.kb_derivations == 1

    def test_type_check(self):
        with pytest.raises(QueryError):
            build_source().answer("SELECT //x")
