"""Unit tests for the query transformer and privacy rewriter."""

import pytest

from repro.access import Permission, RbacPolicy, Role
from repro.errors import AccessDenied, PathError, PrivacyViolation, QueryError
from repro.policy.model import Decision, DisclosureForm
from repro.query import parse_piql
from repro.relational import Table
from repro.source import PathMapping, PrivacyRewriter, QueryTransformer


def patients_table():
    return Table.from_dicts(
        "patients",
        [
            {"id": 1, "dob": "1970-01-01", "zip_code": "15213",
             "hba1c": 75.0, "age": 60, "hmo": "HMO1"},
            {"id": 2, "dob": "1980-02-02", "zip_code": "15217",
             "hba1c": 82.0, "age": 70, "hmo": "HMO2"},
        ],
    )


def transformer():
    return QueryTransformer(PathMapping(patients_table()))


class TestTransformer:
    def test_projection_with_loose_names(self):
        # dateOfBirth → dob (synonym), zip → zip_code (similarity)
        piql = parse_piql("SELECT //patient/dateOfBirth, //patient/zip")
        result = transformer().transform(piql)
        assert result.query.columns == ["dob", "zip_code"]
        assert "SELECT dob, zip_code FROM patients" == result.sql

    def test_aggregate_transform(self):
        piql = parse_piql(
            "SELECT AVG(//test/hba1c) AS mean WHERE //patient/age > 65 "
            "GROUP BY //patient/hmo"
        )
        result = transformer().transform(piql)
        assert result.sql == (
            "SELECT AVG(hba1c) AS mean FROM patients WHERE age > 65 "
            "GROUP BY hmo"
        )

    def test_count_star(self):
        result = transformer().transform(parse_piql("SELECT COUNT(*)"))
        assert result.sql == "SELECT COUNT(*) AS count FROM patients"

    def test_predicates_combined_with_and(self):
        piql = parse_piql(
            "SELECT //patient/id WHERE //patient/age > 65 AND //patient/hmo = 'HMO2'"
        )
        result = transformer().transform(piql)
        assert "age > 65 AND hmo = 'HMO2'" in result.sql

    def test_unresolvable_path_raises(self):
        with pytest.raises(PathError, match="zzz"):
            transformer().transform(parse_piql("SELECT //patient/zzzqqq"))

    def test_column_of_path_mapping_recorded(self):
        piql = parse_piql("SELECT //patient/dateOfBirth")
        result = transformer().transform(piql)
        assert result.column_of_path == {"//patient/dateOfBirth": "dob"}

    def test_type_checks(self):
        with pytest.raises(QueryError):
            QueryTransformer("not a mapping")
        with pytest.raises(QueryError):
            transformer().transform("SELECT //x")


def allow(form=DisclosureForm.EXACT, loss=1.0):
    return Decision(True, form, loss, ["test"])


def deny():
    return Decision.deny("test denial")


class TestRewriter:
    def query(self, text):
        return transformer().transform(parse_piql(text)).query

    def test_exact_grants_pass_through(self):
        query = self.query("SELECT //patient/dob, //patient/age")
        result = PrivacyRewriter().rewrite(
            query, {"dob": allow(), "age": allow()}
        )
        assert result.query.columns == ["dob", "age"]
        assert result.dropped == []

    def test_denied_projection_dropped(self):
        query = self.query("SELECT //patient/dob, //patient/age")
        result = PrivacyRewriter().rewrite(
            query, {"dob": deny(), "age": allow()}
        )
        assert result.query.columns == ["age"]
        assert result.dropped == ["dob"]

    def test_all_denied_refused(self):
        query = self.query("SELECT //patient/dob")
        with pytest.raises(PrivacyViolation, match="nothing disclosable"):
            PrivacyRewriter().rewrite(query, {"dob": deny()})

    def test_missing_decision_treated_as_denied(self):
        query = self.query("SELECT //patient/dob, //patient/age")
        result = PrivacyRewriter().rewrite(query, {"age": allow()})
        assert result.query.columns == ["age"]

    def test_denied_predicate_refuses(self):
        query = self.query("SELECT //patient/age WHERE //patient/hmo = 'HMO1'")
        with pytest.raises(PrivacyViolation, match="predicate"):
            PrivacyRewriter().rewrite(
                query, {"age": allow(), "hmo": deny()}
            )

    def test_range_form_marks_generalization(self):
        query = self.query("SELECT //patient/age")
        result = PrivacyRewriter().rewrite(
            query, {"age": allow(DisclosureForm.RANGE)}
        )
        assert result.generalized_columns == ["age"]

    def test_aggregate_only_column_dropped_from_projection(self):
        query = self.query("SELECT //patient/hba1c, //patient/age")
        result = PrivacyRewriter().rewrite(
            query,
            {"hba1c": allow(DisclosureForm.AGGREGATE), "age": allow()},
        )
        assert result.query.columns == ["age"]
        assert "hba1c" in result.dropped[0]

    def test_aggregate_only_column_allowed_in_aggregate(self):
        query = self.query("SELECT AVG(//patient/hba1c)")
        result = PrivacyRewriter().rewrite(
            query, {"hba1c": allow(DisclosureForm.AGGREGATE)}
        )
        assert len(result.query.aggregates) == 1

    def test_denied_aggregate_dropped(self):
        query = self.query("SELECT AVG(//patient/hba1c), COUNT(*)")
        result = PrivacyRewriter().rewrite(query, {"hba1c": deny()})
        assert [a.func for a in result.query.aggregates] == ["count"]

    def test_loss_budget_is_minimum(self):
        query = self.query("SELECT //patient/dob, //patient/age")
        result = PrivacyRewriter().rewrite(
            query, {"dob": allow(loss=0.4), "age": allow(loss=0.7)}
        )
        assert result.loss_budget == pytest.approx(0.4)

    def test_group_by_denied_refuses(self):
        query = self.query("SELECT COUNT(*) GROUP BY //patient/hmo")
        with pytest.raises(PrivacyViolation, match="GROUP BY"):
            PrivacyRewriter().rewrite(query, {"hmo": deny()})

    def test_rbac_enforced(self):
        rbac = RbacPolicy()
        rbac.add_role(Role("analyst", [Permission("aggregate", "patients.*")]))
        rbac.assign("alice", "analyst")
        rewriter = PrivacyRewriter(rbac, resource_prefix="patients")
        aggregate_query = self.query("SELECT COUNT(*)")
        rewriter.rewrite(aggregate_query, {}, requester="alice")
        record_query = self.query("SELECT //patient/age")
        with pytest.raises(AccessDenied):
            rewriter.rewrite(record_query, {"age": allow()}, requester="alice")
