"""LRUCache unit tests: eviction vs expiry vs invalidation, and threads."""

import threading

import pytest

from repro.cache import LRUCache
from repro.errors import CacheError
from repro.telemetry import Telemetry


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def advance(self, seconds):
        self.now += seconds

    def __call__(self):
        return self.now


class TestBasics:
    def test_get_put_roundtrip(self):
        cache = LRUCache("t")
        assert cache.get("k") == (None, False)
        cache.put("k", 41)
        assert cache.get("k") == (41, True)
        assert "k" in cache
        assert len(cache) == 1

    def test_memoize_computes_once(self):
        cache = LRUCache("t")
        calls = []

        def compute():
            calls.append(1)
            return "value"

        assert cache.memoize("k", compute) == ("value", False)
        assert cache.memoize("k", compute) == ("value", True)
        assert len(calls) == 1

    def test_memoize_stores_nothing_on_raise(self):
        cache = LRUCache("t")

        def compute():
            raise CacheError("boom")

        with pytest.raises(CacheError):
            cache.memoize("k", compute)
        assert "k" not in cache
        assert cache.memoize("k", lambda: 7) == (7, False)

    def test_peek_touches_neither_recency_nor_stats(self):
        cache = LRUCache("t", max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.peek("a") == 1
        cache.put("c", 3)  # evicts "a": peek must not have refreshed it
        assert cache.peek("a") is None
        assert cache.stats.hits == 0
        assert cache.stats.misses == 0

    def test_constructor_validation(self):
        with pytest.raises(CacheError):
            LRUCache("t", max_entries=0)
        with pytest.raises(CacheError):
            LRUCache("t", ttl=0)
        with pytest.raises(CacheError):
            LRUCache("t", ttl=-1)


class TestEvictionVsExpiryVsInvalidation:
    """The three ways an entry dies are counted separately."""

    def test_lru_eviction_counts_evictions(self):
        cache = LRUCache("t", max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")        # refresh: "b" is now least recently used
        cache.put("c", 3)
        assert cache.keys() == ["a", "c"]
        assert cache.stats.evictions == 1
        assert cache.stats.expirations == 0
        assert cache.stats.invalidations == 0

    def test_ttl_expiry_counts_expirations(self):
        clock = FakeClock()
        cache = LRUCache("t", ttl=10.0, clock=clock)
        cache.put("k", 1)
        clock.advance(10.1)
        assert cache.get("k") == (None, False)
        assert "k" not in cache  # removed, not just skipped
        assert cache.stats.expirations == 1
        assert cache.stats.evictions == 0
        assert cache.stats.misses == 1

    def test_entry_within_ttl_still_hits(self):
        clock = FakeClock()
        cache = LRUCache("t", ttl=10.0, clock=clock)
        cache.put("k", 1)
        clock.advance(9.9)
        assert cache.get("k") == (1, True)

    def test_validator_failure_counts_invalidations(self):
        cache = LRUCache("t")
        cache.put("k", {"epoch": 1})
        value, hit = cache.get("k", validator=lambda v: v["epoch"] == 2)
        assert (value, hit) == (None, False)
        assert "k" not in cache  # stale entries cannot resurface
        assert cache.stats.invalidations == 1
        assert cache.stats.expirations == 0

    def test_explicit_invalidation(self):
        cache = LRUCache("t")
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.invalidate("a") is True
        assert cache.invalidate("a") is False
        assert cache.stats.invalidations == 1

    def test_invalidate_where(self):
        cache = LRUCache("t")
        for i in range(4):
            cache.put(("k", i), i)
        dropped = cache.invalidate_where(lambda key, value: value % 2 == 0)
        assert dropped == 2
        assert cache.keys() == [("k", 1), ("k", 3)]
        assert cache.stats.invalidations == 2

    def test_clear_counts_everything_dropped(self):
        cache = LRUCache("t")
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.clear() == 2
        assert len(cache) == 0
        assert cache.stats.invalidations == 2

    def test_snapshot_shape(self):
        cache = LRUCache("t", max_entries=8, ttl=5.0, clock=FakeClock())
        cache.put("a", 1)
        cache.get("a")
        cache.get("missing")
        snap = cache.snapshot()
        assert snap == {
            "hits": 1, "misses": 1, "evictions": 0, "expirations": 0,
            "invalidations": 0, "entries": 1, "max_entries": 8, "ttl": 5.0,
        }


class TestMetrics:
    def test_events_land_in_mediator_cache_counters(self):
        telemetry = Telemetry(enabled=True)
        cache = LRUCache("plan", max_entries=1, telemetry=telemetry)
        cache.get("a")            # miss
        cache.put("a", 1)
        cache.get("a")            # hit
        cache.put("b", 2)         # evicts "a"
        cache.invalidate("b")
        counters = telemetry.metrics_snapshot()["counters"]
        assert counters["mediator.cache.plan.misses"] == 1
        assert counters["mediator.cache.plan.hits"] == 1
        assert counters["mediator.cache.plan.evictions"] == 1
        assert counters["mediator.cache.plan.invalidations"] == 1


class TestThreadSafety:
    def test_concurrent_mixed_operations_stay_consistent(self):
        cache = LRUCache("t", max_entries=32)
        errors = []
        barrier = threading.Barrier(8)

        def worker(worker_id):
            try:
                barrier.wait()
                for i in range(300):
                    key = ("k", i % 40)
                    if i % 11 == 0:
                        cache.invalidate(key)
                    else:
                        cache.memoize(key, lambda: worker_id)
            except Exception as error:  # pragma: no cover - fails the test
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(n,))
                   for n in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert len(cache) <= 32
        stats = cache.stats
        # every memoize is exactly one hit or one miss
        assert stats.hits + stats.misses == sum(
            1 for n in range(8) for i in range(300) if i % 11 != 0
        )
