"""Differential property: cached and uncached mediation are byte-identical.

The cache layer's contract is *pure acceleration*: for any sequence of
queries, a deployment with the multi-tier cache enabled must produce
exactly the answers, refusal messages, and history entries that the
always-recompute baseline produces.  Two systems are built over
identical seeded data — one with ``cache=True`` (warehouse on), one with
``cache=False`` posed with ``use_warehouse=False`` — and driven through
the same seeded query sequences (repeats biased in, so the cached run
actually hits).  Any divergence is a cache-coherence bug: a stale entry
served past a policy/schema/audit-state change, or accounting skipped
on a hit.

Overlap control stays at its default (off) on both sides: it is
source-side *stateful* auditing keyed on result-set overlap, so an
answer served from the mediator's cache legitimately does not advance
it — equivalence is defined over the mediator-visible contract.
"""

import random

import pytest

from repro.errors import ReproError
from repro.testing import build_flaky_system

N_SOURCES = 3
SEQUENCES_PER_CHUNK = 12
STEPS_PER_SEQUENCE = 8

#: Mix of plain selects, canonical-order twins, aggregates (which drive
#: the sequence guard and per-requester epochs), and guaranteed refusals.
QUERY_POOL = (
    "SELECT //patient/age PURPOSE research MAXLOSS 0.9",
    "SELECT //patient/visits PURPOSE research MAXLOSS 0.9",
    "SELECT //patient/age, //patient/visits PURPOSE research MAXLOSS 0.95",
    "SELECT //patient/age WHERE //patient/visits > 5 "
    "AND //patient/age > 30 PURPOSE research MAXLOSS 0.9",
    "SELECT //patient/age WHERE //patient/age > 30 "
    "AND //patient/visits > 5 PURPOSE research MAXLOSS 0.9",
    "SELECT AVG(//patient/age) AS a PURPOSE research MAXLOSS 0.9",
    "SELECT AVG(//patient/visits) AS v PURPOSE research MAXLOSS 0.9",
    "SELECT COUNT(*) AS n PURPOSE research MAXLOSS 0.9",
    "SELECT //patient/age PURPOSE marketing",
)
REQUESTERS = ("alice", "bob")


def pose_outcome(system, text, requester, use_warehouse):
    """Everything observable from one pose, as comparable bytes."""
    try:
        result = system.engine.pose(
            text, requester=requester, use_warehouse=use_warehouse
        )
    except ReproError as error:
        return ("refused", type(error).__name__, str(error))
    return (
        "answered",
        repr(result.rows),
        repr(sorted(result.per_source_loss.items())),
        repr(result.aggregated_loss),
        repr(sorted(result.refused_sources.items())),
        result.duplicates_removed,
    )


def history_entries(system):
    return [
        (entry.sequence, entry.requester, entry.attributes,
         entry.predicate_signature, entry.is_aggregate, entry.refused)
        for entry in system.engine.history.entries()
    ]


def drive_sequence(seed):
    rng = random.Random(seed)
    cached, _ = build_flaky_system(N_SOURCES, seed=7, cache=True)
    uncached, _ = build_flaky_system(N_SOURCES, seed=7, cache=False)
    posed = []
    for step in range(STEPS_PER_SEQUENCE):
        if posed and rng.random() < 0.5:
            text, requester = rng.choice(posed)  # bias repeats → hits
        else:
            text = rng.choice(QUERY_POOL)
            requester = rng.choice(REQUESTERS)
        posed.append((text, requester))
        got = pose_outcome(cached, text, requester, use_warehouse=True)
        want = pose_outcome(uncached, text, requester, use_warehouse=False)
        assert got == want, (
            f"cached/uncached divergence at seed={seed} step={step} "
            f"requester={requester} query={text!r}:\n"
            f"  cached:   {got}\n  uncached: {want}"
        )
    assert history_entries(cached) == history_entries(uncached), (
        f"history divergence at seed={seed}"
    )
    return cached


@pytest.mark.parametrize("chunk", range(10))
def test_cached_run_is_byte_identical_to_uncached(chunk):
    """120 seeded sequences x 8 poses, zero disagreements allowed."""
    for offset in range(SEQUENCES_PER_CHUNK):
        drive_sequence(31_000 + chunk * SEQUENCES_PER_CHUNK + offset)


def test_the_cached_run_actually_hits():
    """Guard against vacuous equivalence: repeats must be served hot."""
    cached = drive_sequence(31_000)
    stats = cached.engine.cache.stats()
    answer = cached.engine.warehouse.store_stats()
    assert stats["plan"]["hits"] > 0
    assert stats["static"]["hits"] > 0
    assert answer["hits"] > 0
