"""EpochRegistry unit tests: monotonicity, snapshots, thread safety."""

import threading

from repro.cache import EpochRegistry


class TestEpochRegistry:
    def test_unbumped_counters_read_zero(self):
        epochs = EpochRegistry()
        assert epochs.current("policy") == 0
        assert epochs.to_dict() == {}

    def test_bump_is_monotonic_and_returns_new_value(self):
        epochs = EpochRegistry()
        assert epochs.bump("schema") == 1
        assert epochs.bump("schema") == 2
        assert epochs.current("schema") == 2

    def test_counters_are_independent(self):
        epochs = EpochRegistry()
        epochs.bump("requester:alice")
        assert epochs.current("requester:bob") == 0
        assert epochs.to_dict() == {"requester:alice": 1}

    def test_snapshot_is_an_ordered_immutable_vector(self):
        epochs = EpochRegistry()
        epochs.bump("policy")
        vector = epochs.snapshot(("policy", "schema"))
        assert vector == (("policy", 1), ("schema", 0))
        epochs.bump("policy")
        # the old snapshot does not validate against the new state
        assert vector != epochs.snapshot(("policy", "schema"))

    def test_concurrent_bumps_are_never_lost(self):
        epochs = EpochRegistry()
        barrier = threading.Barrier(8)

        def worker():
            barrier.wait()
            for _ in range(500):
                epochs.bump("policy")

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert epochs.current("policy") == 8 * 500
