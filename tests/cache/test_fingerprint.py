"""Canonical-PIQL and plan-fingerprint tests (tier-1 key discipline)."""

from repro.cache import canonical_piql, plan_fingerprint
from repro.query.language import parse_piql, to_piql


def fp(text, **kwargs):
    return plan_fingerprint(canonical_piql(parse_piql(text)), **kwargs)


class TestCanonicalPiql:
    def test_where_conjunct_order_is_canonicalized(self):
        a = parse_piql(
            "SELECT //patient/age WHERE //patient/age > 65 "
            "AND //patient/zip = '15213' PURPOSE research"
        )
        b = parse_piql(
            "SELECT //patient/age WHERE //patient/zip = '15213' "
            "AND //patient/age > 65 PURPOSE research"
        )
        assert canonical_piql(a) == canonical_piql(b)

    def test_input_query_is_never_mutated(self):
        query = parse_piql(
            "SELECT //x WHERE //b = 2 AND //a = 1"
        )
        before = to_piql(query)
        canonical_piql(query)
        assert to_piql(query) == before

    def test_select_order_is_preserved(self):
        a = parse_piql("SELECT //patient/age, //patient/visits")
        b = parse_piql("SELECT //patient/visits, //patient/age")
        assert canonical_piql(a) != canonical_piql(b)

    def test_canonical_text_reparses_to_the_same_canonical(self):
        text = ("SELECT AVG(//patient/age) AS a "
                "WHERE //patient/zip = '15213' AND //patient/age > 65 "
                "PURPOSE research MAXLOSS 0.5")
        canonical = canonical_piql(parse_piql(text))
        assert canonical_piql(parse_piql(canonical)) == canonical


class TestPlanFingerprint:
    def test_stable_across_calls(self):
        text = "SELECT //patient/age PURPOSE research"
        kwargs = {"requester": "alice", "role": "doctor",
                  "subjects": ("p1", "p2"), "policy_epoch": 3}
        assert fp(text, **kwargs) == fp(text, **kwargs)

    def test_is_short_hex(self):
        fingerprint = fp("SELECT //patient/age")
        assert len(fingerprint) == 32
        int(fingerprint, 16)  # raises if not hex

    def test_every_field_is_load_bearing(self):
        text = "SELECT //patient/age PURPOSE research"
        base = fp(text, requester="alice", role="doctor",
                  subjects=("p1",), policy_epoch=0)
        assert fp(text, requester="bob", role="doctor",
                  subjects=("p1",), policy_epoch=0) != base
        assert fp(text, requester="alice", role="nurse",
                  subjects=("p1",), policy_epoch=0) != base
        assert fp(text, requester="alice", role="doctor",
                  subjects=("p1", "p2"), policy_epoch=0) != base
        assert fp(text, requester="alice", role="doctor",
                  subjects=("p1",), policy_epoch=1) != base
        other = "SELECT //patient/visits PURPOSE research"
        assert fp(other, requester="alice", role="doctor",
                  subjects=("p1",), policy_epoch=0) != base

    def test_subject_order_is_irrelevant(self):
        text = "SELECT //patient/age"
        assert (fp(text, subjects=("p2", "p1"))
                == fp(text, subjects=("p1", "p2")))

    def test_missing_principal_defaults_collide_only_with_themselves(self):
        text = "SELECT //patient/age"
        assert fp(text) == fp(text, requester=None, role=None)
        assert fp(text) != fp(text, requester="alice")
