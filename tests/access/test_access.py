"""Unit tests for RBAC and MLS."""

import pytest

from repro.access import (
    Level,
    Permission,
    RbacPolicy,
    Role,
    SecurityLabel,
    can_read,
    can_write,
)
from repro.errors import AccessDenied, ReproError


class TestPermission:
    def test_exact_match(self):
        p = Permission("read", "patients.dob")
        assert p.matches("read", "patients.dob")
        assert not p.matches("read", "patients.ssn")
        assert not p.matches("write", "patients.dob")

    def test_prefix_wildcard(self):
        p = Permission("read", "patients.*")
        assert p.matches("read", "patients.dob")
        assert p.matches("read", "patients")
        assert not p.matches("read", "physicians.name")
        assert not p.matches("read", "patientsextra.dob")

    def test_global_wildcard(self):
        assert Permission("aggregate", "*").matches("aggregate", "anything")

    def test_validation(self):
        with pytest.raises(ReproError):
            Permission("execute", "x")
        with pytest.raises(ReproError):
            Permission("read", "")


class TestRoles:
    def test_inheritance(self):
        junior = Role("nurse", [Permission("read", "patients.vitals")])
        senior = Role("physician", [Permission("read", "patients.*")], [junior])
        assert senior.grants("read", "patients.vitals")
        assert senior.grants("read", "patients.dob")
        assert not junior.grants("read", "patients.dob")

    def test_diamond_inheritance_no_infinite_loop(self):
        base = Role("base", [Permission("read", "a")])
        left = Role("left", parents=[base])
        right = Role("right", parents=[base])
        top = Role("top", parents=[left, right])
        assert top.grants("read", "a")

    def test_role_needs_name(self):
        with pytest.raises(ReproError):
            Role("")


class TestRbacPolicy:
    def policy(self):
        policy = RbacPolicy()
        policy.add_role(Role("analyst", [Permission("aggregate", "patients.*")]))
        policy.add_role(Role("physician", [Permission("read", "patients.*")]))
        policy.assign("alice", "analyst")
        return policy

    def test_check_and_require(self):
        policy = self.policy()
        assert policy.check("alice", "aggregate", "patients.hba1c")
        assert not policy.check("alice", "read", "patients.hba1c")
        policy.require("alice", "aggregate", "patients.hba1c")
        with pytest.raises(AccessDenied, match="alice"):
            policy.require("alice", "read", "patients.hba1c")

    def test_unknown_subject_denied(self):
        with pytest.raises(AccessDenied):
            self.policy().require("mallory", "read", "patients.dob")

    def test_duplicate_role_rejected(self):
        policy = self.policy()
        with pytest.raises(ReproError):
            policy.add_role(Role("analyst"))

    def test_assign_unknown_role(self):
        with pytest.raises(ReproError):
            self.policy().assign("bob", "ghost")

    def test_roles_of(self):
        policy = self.policy()
        policy.assign("alice", "physician")
        assert policy.roles_of("alice") == ["analyst", "physician"]


class TestMls:
    def test_level_ordering(self):
        assert Level.UNCLASSIFIED < Level.CONFIDENTIAL < Level.SECRET < Level.TOP_SECRET

    def test_label_from_string(self):
        assert SecurityLabel("secret").level is Level.SECRET
        assert SecurityLabel("top-secret").level is Level.TOP_SECRET

    def test_unknown_level(self):
        with pytest.raises(ReproError):
            SecurityLabel("mega-secret")

    def test_dominance_with_compartments(self):
        high = SecurityLabel(Level.SECRET, {"medical", "finance"})
        low = SecurityLabel(Level.CONFIDENTIAL, {"medical"})
        assert high.dominates(low)
        assert not low.dominates(high)

    def test_incomparable_labels(self):
        a = SecurityLabel(Level.SECRET, {"medical"})
        b = SecurityLabel(Level.SECRET, {"finance"})
        assert not a.dominates(b)
        assert not b.dominates(a)

    def test_no_read_up(self):
        subject = SecurityLabel(Level.CONFIDENTIAL)
        obj = SecurityLabel(Level.SECRET)
        assert not can_read(subject, obj)
        assert can_read(obj, subject)

    def test_no_write_down(self):
        subject = SecurityLabel(Level.SECRET)
        obj = SecurityLabel(Level.CONFIDENTIAL)
        assert not can_write(subject, obj)
        assert can_write(obj, subject)

    def test_equal_labels_read_write(self):
        label = SecurityLabel(Level.SECRET, {"m"})
        assert can_read(label, label)
        assert can_write(label, label)
