"""Setup shim: enables legacy editable installs where ``wheel`` is absent.

All project metadata lives in ``pyproject.toml``; this file only exists so
``pip install -e . --no-build-isolation --no-use-pep517`` works offline.
"""

from setuptools import setup

setup()
