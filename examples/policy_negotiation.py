"""Policy machinery end-to-end: P3P vetting + safe-release planning.

Two decision problems that precede any data exchange in PRIVATE-IYE:

1. **Should I send my data there at all?**  A user's APPEL preferences are
   evaluated — as SQL over shredded P3P policies, following the paper's
   reference [7] — against two sites' published practices.
2. **What may the integrator publish?**  The release planner walks a
   utility ladder of candidate aggregate releases for the Figure-1 data,
   running the snooping inference defensively, and picks the most
   informative release no participant can exploit.

Run:  python examples/policy_negotiation.py
"""

from repro.data import FIGURE1
from repro.inference import InferenceGuard, ReleasePlanner
from repro.policy.p3p import (
    AppelPreferences,
    AppelRule,
    P3pPolicy,
    P3pStatement,
    shred_policies,
)
from repro.relational.sql import to_sql


def main():
    print("=== 1) APPEL preferences vs P3P policies (as SQL) ===")
    research_portal = P3pPolicy("research-portal", [
        P3pStatement("#user.medical", purposes=("current", "admin"),
                     recipients=("ours",), retention="stated-purpose"),
    ])
    data_broker = P3pPolicy("data-broker", [
        P3pStatement("#user.medical",
                     purposes=("current", "telemarketing"),
                     recipients=("ours", "unrelated"),
                     retention="indefinitely"),
    ])
    catalog = shred_policies([research_portal, data_broker])
    print(f"   shredded {len(catalog.table('statements'))} statement rows "
          "into the policy store")

    preferences = AppelPreferences([
        AppelRule("reject", data_group="#user.medical",
                  allowed_purposes=("current", "admin")),
        AppelRule("reject", allowed_recipients=("ours", "delivery")),
        AppelRule("accept",
                  allowed_retentions=("no-retention", "stated-purpose")),
    ], default="reject")

    sample_sql = to_sql(preferences.rules[0].to_query("data-broker"))
    print(f"   rule 1 compiles to: {sample_sql}")
    for site in ("research-portal", "data-broker"):
        behavior, rule = preferences.evaluate(catalog, site)
        print(f"   {site:16s} → {behavior.upper()}"
              + (f" (rule: {rule!r})" if rule else " (default)"))
    print()

    print("=== 2) planning a safe release of the Figure-1 aggregates ===")
    planner = ReleasePlanner(InferenceGuard(min_interval_width=5.0, starts=2))
    matrix = [list(row) for row in FIGURE1.consistent_matrix]
    chosen, rejected = planner.plan(
        list(FIGURE1.measures), list(FIGURE1.sources), matrix
    )
    for plan in rejected:
        narrowest = plan.decision.narrowest_width()
        print(f"   rejected {plan.label:24s} "
              f"(a snooper pins some cell to {narrowest:.1f} points)")
    print(f"   CHOSEN:  {chosen.label:24s} "
          f"(narrowest inferable interval "
          f"{chosen.decision.narrowest_width():.1f} points, "
          f"utility {chosen.utility:.1f})")
    means = chosen.published.row_means
    print(f"   published means: "
          + ", ".join(f"{m}={v}" for m, v in zip(FIGURE1.measures, means)))


if __name__ == "__main__":
    main()
