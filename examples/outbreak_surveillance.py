"""Example 2 of the paper: SARS-like disease outbreak control.

Five regional health authorities hold confidential case registries.  None
will share patient-level data, but all allow aggregate queries for the
purpose ``outbreak-surveillance``.  PRIVATE-IYE integrates them:

* epidemic curves per region (revealing the travel-lagged spread the paper
  says surveillance must detect);
* age-stratified case-fatality (the elderly-risk signal);
* hybrid warehousing: the routine daily situation report is served from
  the materialized store, while an *emergency* query bypasses it for fresh
  data — the paper's stated reason for the hybrid design.

Run:  python examples/outbreak_surveillance.py
"""

from repro import PrivateIye
from repro.data import OutbreakGenerator
from repro.relational import Table

POLICY_TEMPLATE = """
VIEW {region}_private {{
    PRIVATE //case/case_id;
    PRIVATE //case/sex;
    PRIVATE //case/age FORM aggregate;
    PRIVATE //case/outcome FORM aggregate;
}}

POLICY {region} DEFAULT deny {{
    DENY //case/case_id FOR *;
    ALLOW //case/onset_day FOR outbreak-surveillance FORM exact;
    ALLOW //case/region FOR outbreak-surveillance FORM exact;
    ALLOW //case/age FOR outbreak-surveillance FORM aggregate MAXLOSS 0.5;
    ALLOW //case/outcome FOR outbreak-surveillance FORM aggregate MAXLOSS 0.5;
    ALLOW //case/healthcare_worker FOR outbreak-surveillance FORM aggregate MAXLOSS 0.5;
}}
"""


def build_system(generator):
    system = PrivateIye(warehouse_mode="hybrid")
    records = generator.case_records()
    for region in generator.regions:
        system.load_policies(
            POLICY_TEMPLATE.format(region=region),
            view_source={f"{region}_private": region},
        )
        system.add_relational_source(
            region, Table.from_dicts("cases", records[region])
        )
    return system


def epidemic_curves(system, requester="who-analyst"):
    result = system.query(
        "SELECT //case/onset_day, COUNT(*) AS cases "
        "GROUP BY //case/onset_day PURPOSE outbreak-surveillance",
        requester=requester,
    )
    curves = {}
    for row in result.rows:
        # mediated attribute names are normalized: onset_day → onsetday
        curves.setdefault(row["_source"], {})[row["onsetday"]] = row["cases"]
    return curves


def main():
    generator = OutbreakGenerator(days=110, seed=2003)
    system = build_system(generator)
    print(f"integrated {len(generator.regions)} regional case registries")
    print("mediated vocabulary:", system.vocabulary())
    print("(case_id and sex are suppressed by every region)\n")

    print("=== epidemic curves (aggregate-only access) ===")
    curves = epidemic_curves(system)
    for region in generator.regions:
        series = curves.get(region, {})
        if not series:
            continue
        peak_day = max(series, key=series.get)
        total = sum(series.values())
        bar = "#" * min(40, series[peak_day] // 5)
        print(f"   {region:10s} total={total:5d}  peak day {peak_day:3d} {bar}")
    print("   → peaks are ordered by travel lag: the outbreak spread\n")

    print("=== age-stratified case fatality ===")
    for label, predicate in [("under 65", "//case/age < 65"),
                             ("65 and up", "//case/age >= 65")]:
        result = system.query(
            f"SELECT COUNT(*) AS n WHERE {predicate} "
            "AND //case/outcome = 'died' PURPOSE outbreak-surveillance",
            requester="who-analyst-2",
        )
        deaths = sum(row["n"] for row in result.rows)
        result_all = system.query(
            f"SELECT COUNT(*) AS n WHERE {predicate} "
            "PURPOSE outbreak-surveillance",
            requester="who-analyst-2",
        )
        cases = sum(row["n"] for row in result_all.rows)
        print(f"   {label}: {deaths}/{cases} = {deaths / cases:5.1%} fatality")
    print()

    print("=== hybrid warehousing: routine vs emergency ===")
    warehouse = system.engine.warehouse
    report = ("SELECT COUNT(*) AS cases GROUP BY //case/region "
              "PURPOSE outbreak-surveillance")
    system.query(report, requester="minister")  # cold: hits all sources
    calls_after_first = warehouse.total_source_calls
    system.query(report, requester="minister")  # routine repeat: cached
    calls_after_second = warehouse.total_source_calls
    print(f"   source calls — first run: {calls_after_first}, "
          f"after cached repeat: {calls_after_second} (no new calls)")
    system.query(report, requester="minister", emergency=True)
    print(f"   after EMERGENCY re-query: {warehouse.total_source_calls} "
          "(fresh data pulled from every region)")


if __name__ == "__main__":
    main()
