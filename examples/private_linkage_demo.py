"""Private record linkage and distributed mining across suspicious partners.

Two hospitals want to coordinate care for shared patients and mine
treatment patterns together — without handing each other (or the mediator)
their patient rosters.  This example exercises the secure-computation
substrate directly:

1. **PSI**: the hospitals learn exactly which patients they share, and
   nothing about the rest of each other's rosters.
2. **Bloom linkage**: typo-tolerant matching on encoded identifiers — the
   comparing party sees only bit vectors.
3. **Secure-union distributed mining**: globally frequent prescription
   combinations are found without attributing any itemset to a hospital.

Run:  python examples/private_linkage_demo.py
"""

import random

from repro.crypto import TEST_GROUP
from repro.data.names import introduce_typo, person_names
from repro.linkage import BloomRecordEncoder, bloom_link, psi_link_exact
from repro.mining import PartitionedMiner, apriori


def build_rosters(seed=42):
    rng = random.Random(seed)
    names = person_names(60, seed=seed)
    shared = [
        {"first": f, "last": l, "dob": f"19{50 + i}-01-0{1 + i % 9}"}
        for i, (f, l) in enumerate(names[:12])
    ]
    hospital_a = shared + [
        {"first": f, "last": l, "dob": "1960-06-06"}
        for f, l in names[12:35]
    ]
    hospital_b = [dict(p) for p in shared] + [
        {"first": f, "last": l, "dob": "1970-07-07"}
        for f, l in names[35:]
    ]
    # hospital B's clerks made typos in three shared records
    for record in hospital_b[:3]:
        record["last"] = introduce_typo(record["last"], rng)
    return hospital_a, hospital_b, shared


def main():
    hospital_a, hospital_b, shared = build_rosters()
    print(f"hospital A roster: {len(hospital_a)} patients")
    print(f"hospital B roster: {len(hospital_b)} patients "
          f"({len(shared)} truly shared, 3 with typos at B)\n")

    print("=== 1) exact private set intersection ===")
    digests, matched_a, _matched_b = psi_link_exact(
        hospital_a, hospital_b, ["first", "last", "dob"],
        group=TEST_GROUP, rng=random.Random(7),
    )
    print(f"   PSI finds {len(digests)} exact matches "
          "(typo'd records cannot match exactly)")
    print(f"   e.g. shared patient: {matched_a[0]['first']} "
          f"{matched_a[0]['last']}\n")

    print("=== 2) typo-tolerant Bloom linkage ===")
    encoder = BloomRecordEncoder(["first", "last", "dob"], size=512,
                                 num_hashes=4, secret="hospitals-ab")
    links = bloom_link(hospital_a, hospital_b, encoder, threshold=0.8)
    print(f"   Bloom linkage finds {len(links)} matches "
          "(including the typo'd records)")
    fuzzy = [
        (a, b, s) for a, b, s in links
        if a["last"] != b["last"]
    ]
    for a, b, score in fuzzy[:3]:
        print(f"   fuzzy: {a['last']!r} ~ {b['last']!r} "
              f"(similarity {score:.2f})")
    print()

    print("=== 3) distributed prescription mining with secure union ===")
    rng = random.Random(11)
    drugs = ["metformin", "insulin", "statin", "aspirin", "lisinopril"]

    def baskets(n, bias):
        out = []
        for _ in range(n):
            basket = {d for d in drugs if rng.random() < 0.3}
            if rng.random() < bias:
                basket |= {"metformin", "statin"}  # the pattern to find
            out.append(basket or {"aspirin"})
        return out

    site_a, site_b = baskets(120, 0.5), baskets(100, 0.55)
    miner = PartitionedMiner([site_a, site_b], min_support=0.3,
                             group=TEST_GROUP, rng=random.Random(13))
    frequent = miner.globally_frequent()
    central = apriori(site_a + site_b, 0.3)
    print(f"   globally frequent itemsets: {len(frequent)} "
          f"(centralized baseline finds {len(central)} — identical: "
          f"{set(frequent) == set(central)})")
    pair = frozenset(["metformin", "statin"])
    print(f"   {{metformin, statin}} support: {frequent[pair]:.2f}")
    print(f"   ciphertexts exchanged for the union: "
          f"{miner.union_wire_messages}; secure sums run: "
          f"{miner.secure_sums_run}")
    print("   (no site learned which itemsets the other contributed)")


if __name__ == "__main__":
    main()
