"""Quickstart: a two-source PRIVATE-IYE deployment in ~60 lines.

Builds two clinical sources with privacy policies, integrates them through
the mediation engine, and shows the three behaviours that make the system
*privacy preserving*: policy-gated disclosure, form downgrading
(exact → range → aggregate), and refusal with an explanation.

Run:  python examples/quickstart.py
"""

from repro import PrivateIye, PrivacyViolation
from repro.relational import Table

POLICIES = """
VIEW clinic_private {
    PRIVATE //patient/ssn;
    PRIVATE //patient/age FORM range;
    PRIVATE //patient/hba1c FORM aggregate;
}
VIEW lab_private {
    PRIVATE //patient/ssn;
    PRIVATE //patient/hba1c FORM aggregate;
}

POLICY clinic DEFAULT deny {
    DENY //patient/ssn FOR *;
    ALLOW //patient/age FOR research FORM range;
    ALLOW //patient/hba1c FOR public-health-research FORM aggregate MAXLOSS 0.6;
    ALLOW //patient/city FOR research;
}

POLICY lab DEFAULT deny {
    DENY //patient/ssn FOR *;
    ALLOW //patient/hba1c FOR public-health-research FORM aggregate MAXLOSS 0.6;
    ALLOW //patient/city FOR research;
}
"""


def build_tables():
    clinic_rows = [
        {"ssn": f"111-{i:03d}", "age": 25 + i % 50, "hba1c": 60.0 + i % 25,
         "city": ["pittsburgh", "butler"][i % 2]}
        for i in range(40)
    ]
    lab_rows = [
        {"ssn": f"222-{i:03d}", "hba1c": 65.0 + i % 20,
         "city": ["pittsburgh", "erie"][i % 2]}
        for i in range(30)
    ]
    return (Table.from_dicts("patients", clinic_rows),
            Table.from_dicts("patients", lab_rows))


def main():
    system = PrivateIye()
    system.load_policies(
        POLICIES, view_source={"clinic_private": "clinic",
                               "lab_private": "lab"},
    )
    clinic_table, lab_table = build_tables()
    system.add_relational_source("clinic", clinic_table)
    system.add_relational_source("lab", lab_table)

    print("mediated vocabulary:", system.vocabulary())
    print("(note: ssn is absent — every source suppresses it)\n")

    print("1) cross-source aggregate (allowed for public-health research):")
    result = system.query(
        "SELECT AVG(//patient/hba1c) AS mean_hba1c "
        "PURPOSE outbreak-surveillance MAXLOSS 0.6",
        requester="epidemiologist",
    )
    for row in result.rows:
        print(f"   {row['_source']}: mean HbA1c = {row['mean_hba1c']:.2f}")
    print(f"   aggregated privacy loss: {result.aggregated_loss:.3f}\n")

    print("2) record-level ages come back generalized (RANGE form):")
    result = system.query(
        "SELECT //patient/age, //patient/city PURPOSE research",
        requester="researcher",
    )
    for row in result.rows[:3]:
        print(f"   age={row['age']}  city={row['city']}  from {row['_source']}")
    print(f"   ... {len(result.rows)} rows total\n")

    print("3) disallowed purposes are refused with an explanation:")
    try:
        system.query(
            "SELECT AVG(//patient/hba1c) PURPOSE marketing",
            requester="advertiser",
        )
    except PrivacyViolation as refusal:
        print(f"   refused: {refusal}")


if __name__ == "__main__":
    main()
