"""Example 1 of the paper: clinical data integration and the Figure-1 breach.

Reconstructs the paper's scenario exactly:

1. four HMOs hold confidential test-compliance rates (synthetic microdata
   calibrated to the paper's 2001 aggregates);
2. the integrator publishes Figure 1(a) and 1(b) — per-test means/std-devs
   and per-HMO average performance;
3. HMO1 snoops: combining the published tables with its own column, it
   infers intervals on every other HMO's confidential rates via non-linear
   programming (Figure 1(d));
4. PRIVATE-IYE's inference guard runs the same attack defensively and
   blocks the release, then finds a coarser release that is safe.

Run:  python examples/clinical_integration.py
"""

from repro.data import FIGURE1, HealthcareGenerator
from repro.inference import InferenceGuard, PublishedAggregates, SnoopingSource
from repro.metrics import interval_shrink_loss


def print_tables(published):
    print("Figure 1(a) — published test compliance:")
    for measure, (mean, std) in published.table_a().items():
        print(f"   {measure:15s} mean={mean:5.1f}%  sigma={std:4.1f}%")
    print("Figure 1(b) — published HMO performance:")
    for source, mean in published.table_b().items():
        print(f"   {source}: {mean:5.1f}%")
    print()


def main():
    print("=== generating synthetic per-HMO microdata (Example 1) ===")
    generator = HealthcareGenerator(patients_per_hmo=400, seed=2006)
    matrix = generator.compliance_matrix()
    for i, measure in enumerate(generator.measures):
        cells = "  ".join(f"{v:5.1f}" for v in matrix[i])
        print(f"   {measure:15s} {cells}   (confidential!)")
    print()

    print("=== the integrator publishes aggregates ===")
    published = PublishedAggregates.from_matrix(
        generator.measures, generator.sources, matrix, precision=1
    )
    print_tables(published)

    print("=== HMO1 snoops (Figure 1(c)/(d)) ===")
    own_column = [matrix[i][0] for i in range(len(generator.measures))]
    snooper = SnoopingSource(published, "HMO1", own_column)
    inferred = snooper.infer(starts=4, seed=0)
    print("   inferred intervals (vs. the paper's, for the paper's data):")
    for (measure, source), (low, high) in sorted(inferred.items()):
        loss = interval_shrink_loss((0, 100), (low, high))
        paper = FIGURE1.paper_intervals.get((measure, source))
        paper_note = f"   paper: [{paper[0]}, {paper[1]}]" if paper else ""
        print(f"   {measure:15s} {source}: [{low:5.1f}, {high:5.1f}] "
              f"privacy lost: {loss:4.0%}{paper_note}")
    print()

    print("=== PRIVATE-IYE's privacy control blocks the release ===")
    guard = InferenceGuard(min_interval_width=5.0, starts=2)
    decision = guard.check(published, matrix)
    print(f"   decision: {decision}")
    print(f"   narrowest inferable interval: "
          f"{decision.narrowest_width():.1f} percentage points")
    for source, measure, target, width in decision.violations[:3]:
        print(f"   e.g. {source} could pin {target}'s {measure} "
              f"to a {width:.1f}-point interval")
    print()

    print("=== a coarser, sigma-free release passes the guard ===")
    safe = PublishedAggregates(
        generator.measures, generator.sources,
        [round(m) for m in published.row_means],
        row_stds=None,  # withhold the sigmas entirely
        source_means=[round(m) for m in published.source_means],
        precision=0,
    )
    decision = guard.check(safe, matrix)
    print(f"   decision: {decision}")
    print(f"   narrowest inferable interval now: "
          f"{decision.narrowest_width():.1f} percentage points")


if __name__ == "__main__":
    main()
